//! The Domino URL-command grammar.
//!
//! Domino addresses everything in a database through URLs of the shape
//!
//! ```text
//! /<database>.nsf/<view-or-document>?<Command>&<Arg>=<value>&...
//! ```
//!
//! The first query token is the *command* (`OpenView`, `OpenDocument`,
//! `ReadViewEntries`, ...); the remaining `key=value` pairs are its
//! arguments. [`parse`] maps a request target onto a typed
//! [`UrlCommand`]; anything malformed is an
//! [`InvalidArgument`](DominoError::InvalidArgument), which the executor
//! answers with `400 Bad Request`.
//!
//! Documents are addressed by their 32-hex-digit UNID (the form
//! [`Unid`] displays as), optionally below a view segment which is
//! accepted and ignored, exactly like Domino's
//! `/db.nsf/<view>/<unid>?OpenDocument`.

use domino_types::{DominoError, Result, Unid};

/// Rows per view page when `Count=` is absent (Domino's default).
pub const DEFAULT_COUNT: usize = 30;

/// A parsed Domino URL command. `start` is 1-based, as in Domino URLs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UrlCommand {
    /// `/db.nsf/<view>?OpenView&Start=..&Count=..` — an HTML view page.
    OpenView {
        /// Database path element (without `.nsf`, lowercased).
        db: String,
        /// View name (percent-decoded).
        view: String,
        /// 1-based first row.
        start: usize,
        /// Rows per page.
        count: usize,
    },
    /// `/db.nsf/<view>?ReadViewEntries&Start=..&Count=..` — the same page
    /// as structured JSON (Domino returns XML/JSON for programmatic use).
    ReadViewEntries {
        /// Database path element.
        db: String,
        /// View name.
        view: String,
        /// 1-based first row.
        start: usize,
        /// Rows per page.
        count: usize,
    },
    /// `/db.nsf/[<view>/]<unid>?OpenDocument` — render one document.
    OpenDocument {
        /// Database path element.
        db: String,
        /// Document UNID from the path.
        unid: Unid,
    },
    /// `/db.nsf/[<view>/]<unid>?EditDocument` — render an edit form.
    EditDocument {
        /// Database path element.
        db: String,
        /// Document UNID from the path.
        unid: Unid,
    },
    /// `/db.nsf/[<view>/]<unid>?SaveDocument` — write the request body's
    /// form fields back to the document.
    SaveDocument {
        /// Database path element.
        db: String,
        /// Document UNID from the path.
        unid: Unid,
    },
    /// `/db.nsf/<form>?CreateDocument` — create a document of the named
    /// form from the request body's fields.
    CreateDocument {
        /// Database path element.
        db: String,
        /// Form name from the path.
        form: String,
    },
    /// `/db.nsf/[<view>/]<unid>?DeleteDocument` — delete a document.
    DeleteDocument {
        /// Database path element.
        db: String,
        /// Document UNID from the path.
        unid: Unid,
    },
    /// `/db.nsf/<view>?SearchView&Query=..&Count=..` — full-text search
    /// scoped to a view.
    SearchView {
        /// Database path element.
        db: String,
        /// View name.
        view: String,
        /// Full-text query (AND/OR/NOT/phrase syntax of `domino-ftindex`).
        query: String,
        /// Maximum hits returned.
        count: usize,
    },
}

impl UrlCommand {
    /// The database path element the command addresses.
    pub fn db(&self) -> &str {
        match self {
            UrlCommand::OpenView { db, .. }
            | UrlCommand::ReadViewEntries { db, .. }
            | UrlCommand::OpenDocument { db, .. }
            | UrlCommand::EditDocument { db, .. }
            | UrlCommand::SaveDocument { db, .. }
            | UrlCommand::CreateDocument { db, .. }
            | UrlCommand::DeleteDocument { db, .. }
            | UrlCommand::SearchView { db, .. } => db,
        }
    }
}

fn invalid(msg: impl Into<String>) -> DominoError {
    DominoError::InvalidArgument(msg.into())
}

/// Percent-decode one URL component (`%41` → `A`, `+` → space).
pub fn percent_decode(s: &str) -> Result<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| invalid(format!("bad percent escape in {s:?}")))?;
                out.push(hex);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| invalid(format!("non-UTF-8 escape in {s:?}")))
}

/// Parse `a=1&b=two+words` into decoded `(key, value)` pairs — the format
/// of both query-argument tails and POSTed form bodies.
pub fn parse_form(s: &str) -> Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    for pair in s.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        let k = percent_decode(k)?;
        if k.is_empty() {
            continue;
        }
        out.push((k, percent_decode(v)?));
    }
    Ok(out)
}

/// Parse a UNID path segment: up to 32 hex digits (the form `Unid`
/// displays as).
pub fn parse_unid(s: &str) -> Result<Unid> {
    if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(invalid(format!("{s:?} is not a document UNID")));
    }
    u128::from_str_radix(s, 16)
        .map(Unid)
        .map_err(|_| invalid(format!("{s:?} is not a document UNID")))
}

fn arg_usize(args: &[(String, String)], key: &str, default: usize) -> Result<usize> {
    for (k, v) in args {
        if k.eq_ignore_ascii_case(key) {
            return v
                .parse::<usize>()
                .map_err(|_| invalid(format!("{key}={v:?} is not a number")));
        }
    }
    Ok(default)
}

fn arg_text(args: &[(String, String)], key: &str) -> Option<String> {
    args.iter()
        .find(|(k, _)| k.eq_ignore_ascii_case(key))
        .map(|(_, v)| v.clone())
}

/// The last path segment as a UNID (document commands accept an optional
/// leading view segment, which Domino uses for navigation context only).
fn path_unid(segs: &[String]) -> Result<Unid> {
    match segs {
        [unid] | [_, unid] => parse_unid(unid),
        _ => Err(invalid("document commands take /db.nsf/[view/]<unid>")),
    }
}

fn one_segment<'a>(segs: &'a [String], what: &str) -> Result<&'a str> {
    match segs {
        [s] => Ok(s),
        _ => Err(invalid(format!("expected /db.nsf/<{what}> in URL path"))),
    }
}

/// Parse a request target (`/db.nsf/byauthor?OpenView&Start=1&Count=30`)
/// into a [`UrlCommand`].
pub fn parse(target: &str) -> Result<UrlCommand> {
    let rest = target
        .strip_prefix('/')
        .ok_or_else(|| invalid("request target must start with /"))?;
    let (path, query) = rest.split_once('?').unwrap_or((rest, ""));
    let segs: Vec<String> = path
        .split('/')
        .filter(|s| !s.is_empty())
        .map(percent_decode)
        .collect::<Result<_>>()?;
    let (db_seg, rest_segs) = segs
        .split_first()
        .ok_or_else(|| invalid("URL path names no database"))?;
    let lower = db_seg.to_lowercase();
    let db = lower
        .strip_suffix(".nsf")
        .ok_or_else(|| invalid(format!("{db_seg:?}: database path must end in .nsf")))?
        .to_string();
    if db.is_empty() {
        return Err(invalid("empty database name"));
    }

    let mut tokens = query.split('&').filter(|s| !s.is_empty());
    let command = tokens
        .next()
        .ok_or_else(|| invalid("missing ?Command in URL"))?;
    if command.contains('=') {
        return Err(invalid(format!(
            "first query token {command:?} must be the command, not an argument"
        )));
    }
    let args = parse_form(&tokens.collect::<Vec<_>>().join("&"))?;

    match command.to_lowercase().as_str() {
        "openview" => Ok(UrlCommand::OpenView {
            db,
            view: one_segment(rest_segs, "view")?.to_string(),
            start: arg_usize(&args, "start", 1)?.max(1),
            count: arg_usize(&args, "count", DEFAULT_COUNT)?,
        }),
        "readviewentries" => Ok(UrlCommand::ReadViewEntries {
            db,
            view: one_segment(rest_segs, "view")?.to_string(),
            start: arg_usize(&args, "start", 1)?.max(1),
            count: arg_usize(&args, "count", DEFAULT_COUNT)?,
        }),
        "opendocument" => Ok(UrlCommand::OpenDocument {
            db,
            unid: path_unid(rest_segs)?,
        }),
        "editdocument" => Ok(UrlCommand::EditDocument {
            db,
            unid: path_unid(rest_segs)?,
        }),
        "savedocument" => Ok(UrlCommand::SaveDocument {
            db,
            unid: path_unid(rest_segs)?,
        }),
        "deletedocument" => Ok(UrlCommand::DeleteDocument {
            db,
            unid: path_unid(rest_segs)?,
        }),
        "createdocument" => Ok(UrlCommand::CreateDocument {
            db,
            form: one_segment(rest_segs, "form")?.to_string(),
        }),
        "searchview" => Ok(UrlCommand::SearchView {
            db,
            view: one_segment(rest_segs, "view")?.to_string(),
            query: arg_text(&args, "query")
                .ok_or_else(|| invalid("SearchView requires &Query="))?,
            count: arg_usize(&args, "count", DEFAULT_COUNT)?,
        }),
        other => Err(invalid(format!("unknown URL command {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_view_with_defaults_and_args() {
        assert_eq!(
            parse("/disc.nsf/By%20Author?OpenView").unwrap(),
            UrlCommand::OpenView {
                db: "disc".into(),
                view: "By Author".into(),
                start: 1,
                count: DEFAULT_COUNT,
            }
        );
        assert_eq!(
            parse("/Disc.NSF/topics?openview&Start=31&Count=10").unwrap(),
            UrlCommand::OpenView {
                db: "disc".into(),
                view: "topics".into(),
                start: 31,
                count: 10,
            }
        );
    }

    #[test]
    fn document_commands_parse_unids_with_optional_view() {
        let unid = Unid(0xAB);
        let hex = format!("{unid}");
        assert_eq!(
            parse(&format!("/d.nsf/{hex}?OpenDocument")).unwrap(),
            UrlCommand::OpenDocument {
                db: "d".into(),
                unid
            }
        );
        assert_eq!(
            parse(&format!("/d.nsf/topics/{hex}?EditDocument")).unwrap(),
            UrlCommand::EditDocument {
                db: "d".into(),
                unid
            }
        );
    }

    #[test]
    fn search_view_requires_query() {
        assert!(parse("/d.nsf/topics?SearchView").is_err());
        assert_eq!(
            parse("/d.nsf/topics?SearchView&Query=disk+%22full+text%22&Count=5").unwrap(),
            UrlCommand::SearchView {
                db: "d".into(),
                view: "topics".into(),
                query: "disk \"full text\"".into(),
                count: 5,
            }
        );
    }

    #[test]
    fn malformed_targets_are_invalid_argument() {
        for bad in [
            "db.nsf/v?OpenView",          // no leading slash
            "/db/v?OpenView",             // not an .nsf path
            "/db.nsf/v",                  // no command
            "/db.nsf/v?Start=1&OpenView", // argument before command
            "/db.nsf/v?FlushBuffers",     // unknown command
            "/db.nsf/nothex?OpenDocument",
            "/db.nsf/v?OpenView&Count=many",
            "/db.nsf/%zz?OpenView",
        ] {
            let err = parse(bad).unwrap_err();
            assert_eq!(err.kind(), "invalid_argument", "{bad}");
        }
    }

    #[test]
    fn start_is_clamped_to_one() {
        match parse("/d.nsf/v?OpenView&Start=0").unwrap() {
            UrlCommand::OpenView { start, .. } => assert_eq!(start, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn form_bodies_decode() {
        assert_eq!(
            parse_form("Subject=Hello+world&Body=a%26b&=skipme").unwrap(),
            vec![
                ("Subject".to_string(), "Hello world".to_string()),
                ("Body".to_string(), "a&b".to_string()),
            ]
        );
    }
}
