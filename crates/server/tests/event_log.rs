//! Integration tests for the `log.nsf` loop: events emitted anywhere in
//! the process are filed as documents in a real Notes database, which is
//! then browsed over HTTP under its own ACL like any application data.
//!
//! Every test drains the *global* event bus, so they serialize on one
//! mutex and clear the bus before starting.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use domino_core::{Database, DbConfig, Note};
use domino_obs as obs;
use domino_security::AccessLevel;
use domino_server::{
    Console, DominoServer, LoggerConfig, ProbeCondition, ProbeEngine, ProbeRule, Request,
    ServerConfig, ServerLog,
};
use domino_types::{LogicalClock, NoteClass, ReplicaId, Value};
use domino_views::{ColumnSpec, ViewDesign};

static BUS: Mutex<()> = Mutex::new(());

fn exclusive_bus() -> MutexGuard<'static, ()> {
    let guard = BUS.lock().unwrap_or_else(|e| e.into_inner());
    // Clear residue from earlier tests (and anything module setup emitted).
    obs::drain(usize::MAX);
    guard
}

fn quiet_logger_config() -> LoggerConfig {
    LoggerConfig {
        stats_every: 0,
        probe_every: 0,
        ..LoggerConfig::default()
    }
}

fn app_database() -> Arc<Database> {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("Discussion", ReplicaId(71), ReplicaId(72)),
            LogicalClock::new(),
        )
        .unwrap(),
    );
    let mut topic = Note::document("Topic");
    topic.set("Subject", Value::text("welcome"));
    db.save(&mut topic).unwrap();
    db
}

/// Find the first document in `db` whose `Code` item equals `code`.
fn doc_with_code(db: &Database, code: &str) -> Option<Note> {
    for id in db.note_ids(Some(NoteClass::Document)).unwrap() {
        let doc = db.open_summary(id).unwrap();
        if doc.get_text("Code").as_deref() == Some(code) {
            return Some(doc);
        }
    }
    None
}

#[test]
fn requests_become_domlog_documents_browsable_under_acl() {
    let _bus = exclusive_bus();

    let disc = app_database();
    let server = DominoServer::new(ServerConfig::default());
    server.register_database("disc", &disc).unwrap();
    let design = ViewDesign::new("topics", r#"SELECT Form = "Topic""#)
        .unwrap()
        .column(ColumnSpec::new("Subject", "Subject").unwrap());
    server.add_view("disc", design).unwrap();
    server.register_user("ada", "pw");
    server.register_user("bob", "pw");

    let log = ServerLog::with_config(quiet_logger_config()).unwrap();
    log.grant("ada", AccessLevel::Reader).unwrap();
    server.register_database("log", log.database()).unwrap();

    // Traffic: a successful authed read, and an anonymous attempt at a
    // NoAccess database (a security denial).
    let ok = server.handle(&Request::get("/disc.nsf/topics?OpenView").as_user("ada", "pw"));
    assert_eq!(ok.status.code(), 200);
    let denied = server.handle(&Request::get("/log.nsf/events?OpenView"));
    assert_eq!(denied.status.code(), 401);

    // A replication-kind event rides the same bus (the replicator emits
    // these itself; synthesized here to keep the test hermetic).
    obs::emit(
        obs::Event::new(obs::EventKind::Replica, obs::Severity::Info, "Replica.Pass")
            .with("src", "a")
            .with("dst", "b")
            .with("added", 3u64),
    );

    let report = log.drain();
    assert!(report.drained >= 3, "expected >= 3 events, got {report:?}");
    assert_eq!(report.suppressed, 0);

    // The 200 request was filed as an HttpRequest document with the
    // domlog items.
    let db = log.database();
    let mut found_ok = false;
    for id in db.note_ids(Some(NoteClass::Document)).unwrap() {
        let doc = db.open_summary(id).unwrap();
        if doc.get_text("Form").as_deref() == Some("HttpRequest")
            && doc.get_text("Command").as_deref() == Some("/disc.nsf/topics?OpenView")
        {
            assert_eq!(doc.get_text("Method").as_deref(), Some("GET"));
            assert_eq!(doc.get_text("User").as_deref(), Some("ada"));
            assert_eq!(
                doc.get("Status").and_then(|v| v.as_number().ok()),
                Some(200.0)
            );
            assert!(doc.get("DurationMicros").is_some());
            found_ok = true;
        }
    }
    assert!(found_ok, "no HttpRequest document for the 200 request");

    // The 401 produced a Security event document too.
    let denial = doc_with_code(db, "Http.Denied").expect("Http.Denied event document");
    assert_eq!(denial.get_text("Kind").as_deref(), Some("Security"));
    assert_eq!(denial.get_text("Severity").as_deref(), Some("Warning"));

    // And the replica event was filed under the Replication form.
    let pass = doc_with_code(db, "Replica.Pass").expect("Replica.Pass event document");
    assert_eq!(pass.get_text("Form").as_deref(), Some("Replication"));

    // Now browse the log itself over HTTP. Ada (Reader) sees the views
    // and documents; anonymous gets 401; bob (no ACL entry) gets 403.
    let page = server.handle(&Request::get("/log.nsf/requests?OpenView").as_user("ada", "pw"));
    assert_eq!(page.status.code(), 200);
    assert!(
        page.body.contains("disc.nsf"),
        "view page lists the request"
    );

    let unid = doc_with_code(db, "Http.Denied").unwrap().unid();
    let doc_page = server.handle(
        &Request::get(&format!("/log.nsf/events/{unid}?OpenDocument")).as_user("ada", "pw"),
    );
    assert_eq!(doc_page.status.code(), 200);
    assert!(doc_page.body.contains("Http.Denied"));

    assert_eq!(
        server
            .handle(&Request::get("/log.nsf/requests?OpenView"))
            .status
            .code(),
        401
    );
    assert_eq!(
        server
            .handle(&Request::get("/log.nsf/requests?OpenView").as_user("bob", "pw"))
            .status
            .code(),
        403
    );
}

/// PINNED: the logger must never log its own writes. An observer on
/// `log.nsf` emits an event from inside the drain's write path; the
/// re-entrancy guard must discard it (emit returns false, counted in
/// `Obs.Event.Suppressed`), and it must never surface as a document.
#[test]
fn log_writes_never_emit_events_about_themselves() {
    let _bus = exclusive_bus();

    let log = ServerLog::with_config(quiet_logger_config()).unwrap();
    let results: Arc<Mutex<Vec<bool>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = results.clone();
    log.database()
        .subscribe_batch(Arc::new(move |_events: &[domino_core::ChangeEvent]| {
            // This runs on the drainer thread, inside the write path — the
            // place a naive logger would recurse.
            let accepted = obs::emit(obs::Event::new(
                obs::EventKind::Misc,
                obs::Severity::Info,
                "Test.LogRecursion",
            ));
            sink.lock().unwrap().push(accepted);
        }));

    obs::emit(obs::Event::new(
        obs::EventKind::Misc,
        obs::Severity::Info,
        "Test.Outer",
    ));
    let report = log.drain();
    assert_eq!(report.drained, 1);
    assert_eq!(report.written, 1);

    let attempts = results.lock().unwrap().clone();
    assert!(!attempts.is_empty(), "observer never ran");
    assert!(
        attempts.iter().all(|accepted| !accepted),
        "an emit from inside the log write path was accepted: {attempts:?}"
    );
    assert!(report.suppressed >= 1, "guard did not count the recursion");
    assert_eq!(log.recursion_events(), report.suppressed);

    // The recursive event is gone: not on the bus, not in the log.
    assert!(obs::drain(usize::MAX).is_empty());
    assert!(doc_with_code(log.database(), "Test.LogRecursion").is_none());
    assert!(doc_with_code(log.database(), "Test.Outer").is_some());
}

#[test]
fn probe_verdicts_escalate_clear_and_reach_the_console() {
    let _bus = exclusive_bus();

    let counter = obs::counter("Http.Test.EventLogShed");
    let log = ServerLog::with_config(LoggerConfig {
        stats_every: 0,
        probe_every: 1,
        ..LoggerConfig::default()
    })
    .unwrap();
    log.set_probes(Some(ProbeEngine::new(vec![ProbeRule::new(
        "test.shed",
        ProbeCondition::CounterDeltaAtLeast {
            metric: "Http.Test.EventLogShed",
            threshold: 1,
        },
        obs::Severity::Warning,
    )
    .escalating_after(1)])));

    counter.add(5);
    log.drain(); // fires at Warning
    counter.add(5);
    log.drain(); // still firing: escalates to Failure
    log.drain(); // quiet: clears

    let db = log.database();
    let mut severities = Vec::new();
    for id in db.note_ids(Some(NoteClass::Document)).unwrap() {
        let doc = db.open_summary(id).unwrap();
        match doc.get_text("Code").as_deref() {
            Some("Ddm.Probe") => {
                assert_eq!(doc.get_text("Form").as_deref(), Some("Probe"));
                assert_eq!(doc.get_text("Probe").as_deref(), Some("test.shed"));
                severities.push(doc.get_text("Severity").unwrap());
            }
            Some("Ddm.Probe.Cleared") => {
                assert_eq!(doc.get_text("Probe").as_deref(), Some("test.shed"));
                severities.push("Cleared".to_string());
            }
            _ => {}
        }
    }
    let severities: Vec<&str> = severities.iter().map(String::as_str).collect();
    assert_eq!(
        severities,
        vec!["Warning", "Failure", "Cleared"],
        "probe lifecycle: fire, escalate, clear"
    );

    // The console surfaces the same story from the in-memory tail.
    let console = Console::new(log.clone());
    let shown = console.exec("show events warning");
    assert!(shown.contains("Ddm.Probe"), "{shown}");
    assert!(
        !shown.contains("Ddm.Probe.Cleared"),
        "the Normal clear is below the warning floor: {shown}"
    );
    let all = console.exec("show events");
    assert!(all.contains("Ddm.Probe.Cleared"), "{all}");
    assert!(console.exec("show tasks").contains("> show tasks"));
    assert!(console
        .exec("tell logger rotate")
        .contains("> tell logger rotate"));
    assert!(console.exec("show nonsense").contains("unknown command"));
}

#[test]
fn rotation_keeps_the_log_bounded_and_newest() {
    let _bus = exclusive_bus();

    let log = ServerLog::with_config(LoggerConfig {
        max_documents: 40,
        rotate_to: 20,
        stats_every: 0,
        probe_every: 0,
        tail: 8,
        ..LoggerConfig::default()
    })
    .unwrap();

    for round in 0..4 {
        for i in 0..15 {
            obs::emit(
                obs::Event::new(obs::EventKind::Misc, obs::Severity::Info, "Test.Fill")
                    .with("n", (round * 15 + i) as u64),
            );
        }
        log.drain();
    }
    // 60 events were filed; rotation kicked in past 40 and trimmed to 20,
    // so the count stays bounded.
    assert!(
        log.document_count() <= 40,
        "log grew past its ceiling: {}",
        log.document_count()
    );
    assert!(obs::counter("Logger.Rotations").get() >= 1);

    // Survivors are the newest events (highest LogSeq/fill numbers).
    let db = log.database();
    let mut max_n = 0u64;
    for id in db.note_ids(Some(NoteClass::Document)).unwrap() {
        let doc = db.open_summary(id).unwrap();
        if let Some(n) = doc.get("N").and_then(|v| v.as_number().ok()) {
            max_n = max_n.max(n as u64);
        }
    }
    assert_eq!(max_n, 59, "the newest event must survive rotation");
    // No deletion stubs linger — rotation purges them immediately.
    assert!(db.stubs().unwrap().is_empty());
}

#[test]
fn background_logger_task_files_events_and_shows_in_roster() {
    let _bus = exclusive_bus();

    let log = ServerLog::with_config(quiet_logger_config()).unwrap();
    let handle = log.start(Duration::from_millis(10));
    obs::emit(obs::Event::new(
        obs::EventKind::Server,
        obs::Severity::Info,
        "Test.Background",
    ));
    // The drainer files it within a few intervals.
    let mut waited = 0;
    while doc_with_code(log.database(), "Test.Background").is_none() && waited < 200 {
        std::thread::sleep(Duration::from_millis(10));
        waited += 1;
    }
    assert!(
        doc_with_code(log.database(), "Test.Background").is_some(),
        "background drainer never filed the event"
    );
    assert!(
        obs::show_tasks().contains("logger"),
        "logger missing from show tasks: {}",
        obs::show_tasks()
    );
    handle.stop();
}
