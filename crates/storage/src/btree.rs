//! Disk-resident B⁺-trees with `u128` keys and `u64` values.
//!
//! The note store keeps two of these per database: `NoteId → record
//! pointer` and `UNID → NoteId`. Keys are fixed-width so nodes pack
//! densely; values narrower than 16 bytes zero-extend.
//!
//! Layout (after the 16-byte page header; leaves use the header link field
//! as the right-sibling pointer):
//!
//! ```text
//! leaf:     @16 count:u16, then count × (key:u128, value:u64)
//! internal: @16 count:u16, @18 child0:u32, then count × (key:u128, child:u32)
//! ```
//!
//! An internal node with keys `k1..kn` and children `c0..cn` routes
//! `key < k1` to `c0` and `k_i <= key < k_{i+1}` to `c_i`.
//!
//! Deletion removes leaf entries but never unlinks pages ("free-at-empty,
//! deferred"): empty leaves stay chained until a compaction rebuilds the
//! tree — the same behaviour Notes databases exhibit until `compact` runs.
//! Inserts land in whatever leaf the separators route to, so space is
//! reused for nearby keys.

use crate::engine::{Engine, Tx};
use crate::page::{PageBuf, PageId, PageType, PAGE_HEADER, PAGE_SIZE};
use domino_types::{DominoError, Result};

const OFF_COUNT: usize = PAGE_HEADER; // u16
const LEAF_ENTRIES: usize = PAGE_HEADER + 2;
const ENTRY_SIZE: usize = 24; // key 16 + value 8
pub(crate) const LEAF_CAP: usize = (PAGE_SIZE - LEAF_ENTRIES) / ENTRY_SIZE;

const INT_CHILD0: usize = PAGE_HEADER + 2; // u32
const INT_ENTRIES: usize = INT_CHILD0 + 4;
const INT_ENTRY_SIZE: usize = 20; // key 16 + child 4
pub(crate) const INT_CAP: usize = (PAGE_SIZE - INT_ENTRIES) / INT_ENTRY_SIZE;

/// Result of one recursive insert: `(previous value, optional split as
/// (separator key, new right page))`.
type InsertOutcome = (Option<u64>, Option<(u128, PageId)>);

/// A handle to one named tree (root slot in the store header).
#[derive(Debug, Clone, Copy)]
pub struct BTree {
    slot: usize,
}

impl BTree {
    /// Open the tree in root `slot`, creating an empty root on first use.
    pub fn open(engine: &mut Engine, tx: &mut Tx, slot: usize) -> Result<BTree> {
        if engine.tree_root(slot)? == 0 {
            let root = engine.alloc_page(tx, PageType::BTreeLeaf)?;
            write_count(engine, tx, root, 0)?;
            engine.set_tree_root(tx, slot, root)?;
        }
        Ok(BTree { slot })
    }

    /// Open read-only (tree must already exist).
    pub fn open_existing(engine: &mut Engine, slot: usize) -> Result<BTree> {
        if engine.tree_root(slot)? == 0 {
            return Err(DominoError::NotFound(format!("no tree in slot {slot}")));
        }
        Ok(BTree { slot })
    }

    fn root(&self, engine: &mut Engine) -> Result<PageId> {
        engine.tree_root(self.slot)
    }

    /// Point lookup. Descends through the buffer pool without cloning
    /// pages (`Engine::with_page`).
    pub fn get(&self, engine: &mut Engine, key: u128) -> Result<Option<u64>> {
        let mut page_id = self.root(engine)?;
        loop {
            let step = engine.with_page(page_id, |page| match page.page_type() {
                PageType::BTreeInternal => Ok(Descent::Down(route(page, key))),
                PageType::BTreeLeaf => {
                    let n = count(page);
                    Ok(Descent::Found(match leaf_search(page, n, key) {
                        Ok(pos) => Some(leaf_value(page, pos)),
                        Err(_) => None,
                    }))
                }
                other => Err(DominoError::Corrupt(format!(
                    "b-tree descent hit a {other:?} page"
                ))),
            })??;
            match step {
                Descent::Down(id) => page_id = id,
                Descent::Found(v) => return Ok(v),
            }
        }
    }

    /// Upsert; returns the previous value if the key existed.
    pub fn insert(
        &self,
        engine: &mut Engine,
        tx: &mut Tx,
        key: u128,
        value: u64,
    ) -> Result<Option<u64>> {
        let root = self.root(engine)?;
        let (old, split) = insert_rec(engine, tx, root, key, value)?;
        if let Some((sep, right)) = split {
            // Grow the tree: new root with one separator.
            let new_root = engine.alloc_page(tx, PageType::BTreeInternal)?;
            let mut buf = [0u8; INT_ENTRIES + INT_ENTRY_SIZE - PAGE_HEADER];
            buf[0..2].copy_from_slice(&1u16.to_le_bytes());
            buf[2..6].copy_from_slice(&root.to_le_bytes());
            buf[6..22].copy_from_slice(&sep.to_le_bytes());
            buf[22..26].copy_from_slice(&right.to_le_bytes());
            engine.write(tx, new_root, PAGE_HEADER as u16, &buf)?;
            engine.set_tree_root(tx, self.slot, new_root)?;
        }
        Ok(old)
    }

    /// Remove a key; returns its value if present.
    pub fn delete(&self, engine: &mut Engine, tx: &mut Tx, key: u128) -> Result<Option<u64>> {
        let mut page_id = self.root(engine)?;
        loop {
            // Leaf hit yields (entry count, position, old value, tail bytes
            // to shift left); the copies happen inside the pool.
            let step = engine.with_page(page_id, |page| match page.page_type() {
                PageType::BTreeInternal => Ok(Descent::Down(route(page, key))),
                PageType::BTreeLeaf => {
                    let n = count(page);
                    let Ok(pos) = leaf_search(page, n, key) else {
                        return Ok(Descent::Found(None));
                    };
                    let old = leaf_value(page, pos);
                    let start = LEAF_ENTRIES + pos * ENTRY_SIZE;
                    let end = LEAF_ENTRIES + n * ENTRY_SIZE;
                    let tail = page
                        .bytes(start + ENTRY_SIZE, end - start - ENTRY_SIZE)
                        .to_vec();
                    Ok(Descent::Found(Some((n, start, old, tail))))
                }
                other => Err(DominoError::Corrupt(format!(
                    "b-tree descent hit a {other:?} page"
                ))),
            })??;
            match step {
                Descent::Down(id) => page_id = id,
                Descent::Found(None) => return Ok(None),
                Descent::Found(Some((n, start, old, tail))) => {
                    // Shift entries left over the removed slot.
                    if !tail.is_empty() {
                        engine.write(tx, page_id, start as u16, &tail)?;
                    }
                    write_count(engine, tx, page_id, (n - 1) as u16)?;
                    return Ok(Some(old));
                }
            }
        }
    }

    /// In-order scan of `[lo, hi]`, calling `f(key, value)`; stop early by
    /// returning `false`.
    pub fn scan(
        &self,
        engine: &mut Engine,
        lo: u128,
        hi: u128,
        mut f: impl FnMut(u128, u64) -> bool,
    ) -> Result<()> {
        if lo > hi {
            return Ok(());
        }
        // Descend to the leaf that would hold `lo`.
        let mut page_id = self.root(engine)?;
        loop {
            let step = engine.with_page(page_id, |page| match page.page_type() {
                PageType::BTreeInternal => Ok(Descent::Down(route(page, lo))),
                PageType::BTreeLeaf => Ok(Descent::Found(())),
                other => Err(DominoError::Corrupt(format!(
                    "b-tree descent hit a {other:?} page"
                ))),
            })??;
            match step {
                Descent::Down(id) => page_id = id,
                Descent::Found(()) => break,
            }
        }
        // Walk the leaf chain, invoking the callback inside the pool.
        loop {
            let next = engine.with_page(page_id, |page| {
                let n = count(page);
                let start = match leaf_search(page, n, lo) {
                    Ok(p) | Err(p) => p,
                };
                for pos in start..n {
                    let k = leaf_key(page, pos);
                    if k > hi || !f(k, leaf_value(page, pos)) {
                        return 0;
                    }
                }
                page.link()
            })?;
            if next == 0 {
                return Ok(());
            }
            page_id = next;
        }
    }

    /// Number of entries (full scan).
    pub fn len(&self, engine: &mut Engine) -> Result<u64> {
        let mut n = 0u64;
        self.scan(engine, 0, u128::MAX, |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    pub fn is_empty(&self, engine: &mut Engine) -> Result<bool> {
        let mut any = false;
        self.scan(engine, 0, u128::MAX, |_, _| {
            any = true;
            false
        })?;
        Ok(!any)
    }
}

/// One step of a root-to-leaf descent run inside `Engine::with_page`.
enum Descent<T> {
    Down(PageId),
    Found(T),
}

// ---------------------------------------------------------------------------
// node accessors
// ---------------------------------------------------------------------------

fn count(page: &PageBuf) -> usize {
    page.get_u16(OFF_COUNT) as usize
}

fn write_count(engine: &mut Engine, tx: &mut Tx, id: PageId, n: u16) -> Result<()> {
    engine.write(tx, id, OFF_COUNT as u16, &n.to_le_bytes())
}

fn leaf_key(page: &PageBuf, pos: usize) -> u128 {
    page.get_u128(LEAF_ENTRIES + pos * ENTRY_SIZE)
}

fn leaf_value(page: &PageBuf, pos: usize) -> u64 {
    page.get_u64(LEAF_ENTRIES + pos * ENTRY_SIZE + 16)
}

/// Binary search a leaf: Ok(pos) = found, Err(pos) = insertion point.
fn leaf_search(page: &PageBuf, n: usize, key: u128) -> std::result::Result<usize, usize> {
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        match leaf_key(page, mid).cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

fn int_key(page: &PageBuf, i: usize) -> u128 {
    page.get_u128(INT_ENTRIES + i * INT_ENTRY_SIZE)
}

fn int_child(page: &PageBuf, i: usize) -> PageId {
    // child index 0..=count; 0 lives at INT_CHILD0.
    if i == 0 {
        page.get_u32(INT_CHILD0)
    } else {
        page.get_u32(INT_ENTRIES + (i - 1) * INT_ENTRY_SIZE + 16)
    }
}

/// Which child should `key` descend into?
fn route(page: &PageBuf, key: u128) -> PageId {
    let n = count(page);
    // Find the last key <= `key` (its child), else child 0.
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if int_key(page, mid) <= key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    int_child(page, lo)
}

// ---------------------------------------------------------------------------
// insertion
// ---------------------------------------------------------------------------

/// Returns (old value, optional split (separator, new right page)).
fn insert_rec(
    engine: &mut Engine,
    tx: &mut Tx,
    page_id: PageId,
    key: u128,
    value: u64,
) -> Result<InsertOutcome> {
    let ptype = engine.with_page(page_id, |p| p.page_type())?;
    match ptype {
        PageType::BTreeLeaf => {
            let page = engine.fetch(page_id)?;
            leaf_insert(engine, tx, page, key, value)
        }
        PageType::BTreeInternal => {
            // Route without cloning the node.
            let (child_idx, child) = engine.with_page(page_id, |page| {
                let n = count(page);
                let (mut lo, mut hi) = (0usize, n);
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if int_key(page, mid) <= key {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                (lo, int_child(page, lo))
            })?;
            let (old, split) = insert_rec(engine, tx, child, key, value)?;
            let Some((sep, right)) = split else {
                return Ok((old, None));
            };
            // Insert (sep, right) after child_idx. Splits mutate this node,
            // so take a snapshot for the region arithmetic.
            let page = engine.fetch(page_id)?;
            Ok((old, int_insert(engine, tx, page, child_idx, sep, right)?))
        }
        other => Err(DominoError::Corrupt(format!(
            "b-tree insert hit a {other:?} page"
        ))),
    }
}

fn leaf_insert(
    engine: &mut Engine,
    tx: &mut Tx,
    page: PageBuf,
    key: u128,
    value: u64,
) -> Result<InsertOutcome> {
    let page_id = page.id;
    let n = count(&page);
    match leaf_search(&page, n, key) {
        Ok(pos) => {
            // Overwrite in place.
            let old = leaf_value(&page, pos);
            engine.write(
                tx,
                page_id,
                (LEAF_ENTRIES + pos * ENTRY_SIZE + 16) as u16,
                &value.to_le_bytes(),
            )?;
            Ok((Some(old), None))
        }
        Err(pos) if n < LEAF_CAP => {
            // Shift the tail right by one entry and place the new entry.
            let start = LEAF_ENTRIES + pos * ENTRY_SIZE;
            let end = LEAF_ENTRIES + n * ENTRY_SIZE;
            let mut region = Vec::with_capacity(end - start + ENTRY_SIZE);
            region.extend_from_slice(&key.to_le_bytes());
            region.extend_from_slice(&value.to_le_bytes());
            region.extend_from_slice(page.bytes(start, end - start));
            engine.write(tx, page_id, start as u16, &region)?;
            write_count(engine, tx, page_id, (n + 1) as u16)?;
            Ok((None, None))
        }
        Err(pos) => {
            // Split: upper half moves to a fresh right sibling.
            let mid = n / 2;
            let right_id = engine.alloc_page(tx, PageType::BTreeLeaf)?;
            let moved = page
                .bytes(LEAF_ENTRIES + mid * ENTRY_SIZE, (n - mid) * ENTRY_SIZE)
                .to_vec();
            let mut right_init = Vec::with_capacity(2 + moved.len());
            right_init.extend_from_slice(&((n - mid) as u16).to_le_bytes());
            right_init.extend_from_slice(&moved);
            engine.write(tx, right_id, OFF_COUNT as u16, &right_init)?;
            // Sibling chain: right inherits the old link; left points right.
            let old_link = page.link();
            engine.write(tx, right_id, 10, &old_link.to_le_bytes())?;
            engine.write(tx, page_id, 10, &right_id.to_le_bytes())?;
            write_count(engine, tx, page_id, mid as u16)?;

            let sep = page.get_u128(LEAF_ENTRIES + mid * ENTRY_SIZE);
            // Insert the pending key into whichever side owns it.
            let target = if pos < mid || key < sep {
                page_id
            } else {
                right_id
            };
            let tpage = engine.fetch(target)?;
            let (old, split2) = leaf_insert(engine, tx, tpage, key, value)?;
            debug_assert!(split2.is_none(), "freshly split leaf cannot split again");
            debug_assert!(old.is_none());
            Ok((old, Some((sep, right_id))))
        }
    }
}

/// Insert separator `sep` with right child `right` after child `child_idx`.
fn int_insert(
    engine: &mut Engine,
    tx: &mut Tx,
    page: PageBuf,
    child_idx: usize,
    sep: u128,
    right: PageId,
) -> Result<Option<(u128, PageId)>> {
    let page_id = page.id;
    let n = count(&page);
    if n < INT_CAP {
        let pos = child_idx; // new key goes at index child_idx
        let start = INT_ENTRIES + pos * INT_ENTRY_SIZE;
        let end = INT_ENTRIES + n * INT_ENTRY_SIZE;
        let mut region = Vec::with_capacity(end - start + INT_ENTRY_SIZE);
        region.extend_from_slice(&sep.to_le_bytes());
        region.extend_from_slice(&right.to_le_bytes());
        region.extend_from_slice(page.bytes(start, end - start));
        engine.write(tx, page_id, start as u16, &region)?;
        write_count(engine, tx, page_id, (n + 1) as u16)?;
        return Ok(None);
    }

    // Split the internal node. Keys: k0..k(n-1); promote k_mid.
    let mid = n / 2;
    let promoted = int_key(&page, mid);
    let right_id = engine.alloc_page(tx, PageType::BTreeInternal)?;

    // Right node gets keys mid+1..n and child(mid+1)..child(n).
    let rn = n - mid - 1;
    let mut right_init = Vec::with_capacity(6 + rn * INT_ENTRY_SIZE);
    right_init.extend_from_slice(&(rn as u16).to_le_bytes());
    right_init.extend_from_slice(&int_child(&page, mid + 1).to_le_bytes());
    right_init.extend_from_slice(page.bytes(
        INT_ENTRIES + (mid + 1) * INT_ENTRY_SIZE,
        rn * INT_ENTRY_SIZE,
    ));
    engine.write(tx, right_id, OFF_COUNT as u16, &right_init)?;
    write_count(engine, tx, page_id, mid as u16)?;

    // Now insert (sep, right) into the correct half.
    let target_id = if sep < promoted { page_id } else { right_id };
    let tpage = engine.fetch(target_id)?;
    // Recompute the child index in the target node by routing on `sep`.
    let tn = count(&tpage);
    let (mut lo, mut hi) = (0usize, tn);
    while lo < hi {
        let m = (lo + hi) / 2;
        if int_key(&tpage, m) <= sep {
            lo = m + 1;
        } else {
            hi = m;
        }
    }
    let split2 = int_insert(engine, tx, tpage, lo, sep, right)?;
    debug_assert!(
        split2.is_none(),
        "freshly split internal node cannot split again"
    );
    Ok(Some((promoted, right_id)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::engine::EngineConfig;
    use domino_wal::MemLogStore;

    fn engine() -> Engine {
        Engine::open(
            Box::new(MemDisk::new()),
            Some(Box::new(MemLogStore::new())),
            EngineConfig::default(),
        )
        .unwrap()
    }

    fn with_tree(f: impl FnOnce(&mut Engine, &mut Tx, BTree)) {
        let mut e = engine();
        let mut tx = e.begin().unwrap();
        let t = BTree::open(&mut e, &mut tx, 0).unwrap();
        f(&mut e, &mut tx, t);
        e.commit(tx).unwrap();
    }

    #[test]
    fn insert_get_roundtrip() {
        with_tree(|e, tx, t| {
            assert_eq!(t.insert(e, tx, 5, 50).unwrap(), None);
            assert_eq!(t.insert(e, tx, 1, 10).unwrap(), None);
            assert_eq!(t.insert(e, tx, 9, 90).unwrap(), None);
            assert_eq!(t.get(e, 5).unwrap(), Some(50));
            assert_eq!(t.get(e, 1).unwrap(), Some(10));
            assert_eq!(t.get(e, 9).unwrap(), Some(90));
            assert_eq!(t.get(e, 7).unwrap(), None);
        });
    }

    #[test]
    fn upsert_returns_old() {
        with_tree(|e, tx, t| {
            t.insert(e, tx, 5, 50).unwrap();
            assert_eq!(t.insert(e, tx, 5, 55).unwrap(), Some(50));
            assert_eq!(t.get(e, 5).unwrap(), Some(55));
        });
    }

    #[test]
    fn delete_removes() {
        with_tree(|e, tx, t| {
            t.insert(e, tx, 5, 50).unwrap();
            t.insert(e, tx, 6, 60).unwrap();
            assert_eq!(t.delete(e, tx, 5).unwrap(), Some(50));
            assert_eq!(t.get(e, 5).unwrap(), None);
            assert_eq!(t.get(e, 6).unwrap(), Some(60));
            assert_eq!(t.delete(e, tx, 5).unwrap(), None);
        });
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        with_tree(|e, tx, t| {
            // Enough to force multiple leaf and internal splits.
            let n = 5000u128;
            for i in 0..n {
                // Insert in a scrambled order.
                let k = (i * 2654435761) % n;
                t.insert(e, tx, k, (k * 10) as u64).unwrap();
            }
            assert_eq!(t.len(e).unwrap(), n as u64);
            for i in 0..n {
                assert_eq!(t.get(e, i).unwrap(), Some((i * 10) as u64), "key {i}");
            }
            // Full scan is sorted.
            let mut prev = None;
            t.scan(e, 0, u128::MAX, |k, _| {
                if let Some(p) = prev {
                    assert!(k > p);
                }
                prev = Some(k);
                true
            })
            .unwrap();
        });
    }

    #[test]
    fn range_scan_bounds() {
        with_tree(|e, tx, t| {
            for i in 0..100u128 {
                t.insert(e, tx, i, i as u64).unwrap();
            }
            let mut seen = Vec::new();
            t.scan(e, 10, 19, |k, v| {
                seen.push((k, v));
                true
            })
            .unwrap();
            assert_eq!(seen.len(), 10);
            assert_eq!(seen[0], (10, 10));
            assert_eq!(seen[9], (19, 19));
        });
    }

    #[test]
    fn scan_early_stop() {
        with_tree(|e, tx, t| {
            for i in 0..50u128 {
                t.insert(e, tx, i, i as u64).unwrap();
            }
            let mut n = 0;
            t.scan(e, 0, u128::MAX, |_, _| {
                n += 1;
                n < 5
            })
            .unwrap();
            assert_eq!(n, 5);
        });
    }

    #[test]
    fn delete_then_reinsert_across_splits() {
        with_tree(|e, tx, t| {
            for i in 0..1000u128 {
                t.insert(e, tx, i, i as u64).unwrap();
            }
            for i in (0..1000u128).step_by(2) {
                assert_eq!(t.delete(e, tx, i).unwrap(), Some(i as u64));
            }
            assert_eq!(t.len(e).unwrap(), 500);
            for i in (0..1000u128).step_by(2) {
                t.insert(e, tx, i, (i + 1) as u64).unwrap();
            }
            assert_eq!(t.len(e).unwrap(), 1000);
            assert_eq!(t.get(e, 4).unwrap(), Some(5));
            assert_eq!(t.get(e, 5).unwrap(), Some(5));
        });
    }

    #[test]
    fn persists_across_reopen() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        {
            let mut e = Engine::open(
                Box::new(disk.clone()),
                Some(Box::new(log.clone())),
                EngineConfig::default(),
            )
            .unwrap();
            let mut tx = e.begin().unwrap();
            let t = BTree::open(&mut e, &mut tx, 1).unwrap();
            for i in 0..500u128 {
                t.insert(&mut e, &mut tx, i, i as u64 + 7).unwrap();
            }
            e.commit(tx).unwrap();
            e.shutdown().unwrap();
        }
        let mut e =
            Engine::open(Box::new(disk), Some(Box::new(log)), EngineConfig::default()).unwrap();
        let t = BTree::open_existing(&mut e, 1).unwrap();
        for i in 0..500u128 {
            assert_eq!(t.get(&mut e, i).unwrap(), Some(i as u64 + 7));
        }
    }

    #[test]
    fn survives_crash_recovery() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let (tree_keys, _) = {
            let mut e = Engine::open(
                Box::new(disk.clone()),
                Some(Box::new(log.clone())),
                EngineConfig {
                    buffer_capacity: 16,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            let mut tx = e.begin().unwrap();
            let t = BTree::open(&mut e, &mut tx, 0).unwrap();
            for i in 0..800u128 {
                t.insert(&mut e, &mut tx, i, i as u64).unwrap();
            }
            e.commit(tx).unwrap();
            // Uncommitted extra inserts, then crash.
            let mut tx2 = e.begin().unwrap();
            for i in 800..900u128 {
                t.insert(&mut e, &mut tx2, i, i as u64).unwrap();
            }
            e.wal().unwrap().flush_all().unwrap();
            e.crash();
            log.crash();
            (800u128, ())
        };
        let mut e =
            Engine::open(Box::new(disk), Some(Box::new(log)), EngineConfig::default()).unwrap();
        assert!(e.recovery.is_some());
        let t = BTree::open_existing(&mut e, 0).unwrap();
        for i in 0..tree_keys {
            assert_eq!(
                t.get(&mut e, i).unwrap(),
                Some(i as u64),
                "committed key {i}"
            );
        }
        for i in tree_keys..900 {
            assert_eq!(t.get(&mut e, i).unwrap(), None, "uncommitted key {i}");
        }
    }

    #[test]
    fn u128_extremes() {
        with_tree(|e, tx, t| {
            t.insert(e, tx, 0, 1).unwrap();
            t.insert(e, tx, u128::MAX, 2).unwrap();
            assert_eq!(t.get(e, 0).unwrap(), Some(1));
            assert_eq!(t.get(e, u128::MAX).unwrap(), Some(2));
        });
    }
}
