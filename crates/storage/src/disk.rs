//! The page device.
//!
//! A [`Disk`] write makes a page *visible* to subsequent reads; it becomes
//! *durable* only at the next [`Disk::sync`] barrier (real files buffer
//! writes in the OS page cache). The buffer pool above decides *when* to
//! write; the WAL protocol decides *what must be logged first*; the engine
//! places the sync barriers (before log truncation, at clean shutdown) so
//! that any page write lost to a crash is always above the retained redo
//! point.
//!
//! [`MemDisk`] is shareable so a crashed engine can be reopened over the
//! same "disk" contents; the real single-file device is
//! [`crate::file::NsfFile`].

use std::sync::Arc;

use parking_lot::Mutex;

use crate::page::{PageBuf, PageId, PAGE_SIZE};
use domino_types::Result;

/// An array of pages with an explicit durability barrier.
pub trait Disk: Send {
    /// Read page `id` into `buf`. Reading past the end yields zeroes (the
    /// page has never been written).
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<()>;

    /// Write page `id`. Visible to reads immediately; durable after the
    /// next [`Disk::sync`].
    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<()>;

    /// Write page `id` bypassing any integrity stamping the device does
    /// (checksums). Fault-injection escape hatch: this is how a test
    /// plants a torn page that the device's own reads must then detect.
    fn write_page_raw(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        self.write_page(id, buf)
    }

    /// Durability barrier: all writes accepted so far survive a crash once
    /// this returns. In-memory devices are a no-op.
    fn sync(&self) -> Result<()> {
        Ok(())
    }

    /// Persist the recovery-start LSN in the device header (the NSF
    /// superblock mirror of the log's master record; 0 = cleanly closed).
    /// Durable when it returns. Devices without a header ignore it.
    fn set_recovery_lsn(&self, _lsn: u64) -> Result<()> {
        Ok(())
    }

    /// The recovery-start LSN last persisted via
    /// [`Disk::set_recovery_lsn`] (0 for devices without a header).
    fn recovery_lsn(&self) -> Result<u64> {
        Ok(0)
    }

    /// Number of pages ever written + 1 (i.e. one past the highest id).
    fn page_count(&self) -> Result<u32>;

    /// Bytes of backing storage in use (experiment accounting).
    fn size_bytes(&self) -> Result<u64> {
        Ok(self.page_count()? as u64 * PAGE_SIZE as u64)
    }
}

/// Every method takes `&self`, so a shared handle is itself a disk — this
/// is how a crash test keeps a `CrashDisk` reachable after handing the
/// engine its boxed copy.
impl<D: Disk + Sync + ?Sized> Disk for Arc<D> {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        (**self).read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        (**self).write_page(id, buf)
    }

    fn write_page_raw(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        (**self).write_page_raw(id, buf)
    }

    fn sync(&self) -> Result<()> {
        (**self).sync()
    }

    fn set_recovery_lsn(&self, lsn: u64) -> Result<()> {
        (**self).set_recovery_lsn(lsn)
    }

    fn recovery_lsn(&self) -> Result<u64> {
        (**self).recovery_lsn()
    }

    fn page_count(&self) -> Result<u32> {
        (**self).page_count()
    }

    fn size_bytes(&self) -> Result<u64> {
        (**self).size_bytes()
    }
}

/// In-memory disk, shareable across engine generations for crash tests.
#[derive(Clone, Default)]
pub struct MemDisk {
    pages: Arc<Mutex<Vec<Box<[u8; PAGE_SIZE]>>>>,
}

impl MemDisk {
    pub fn new() -> MemDisk {
        MemDisk::default()
    }
}

impl Disk for MemDisk {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        let pages = self.pages.lock();
        match pages.get(id as usize) {
            Some(data) => buf.data.copy_from_slice(&data[..]),
            None => buf.data.fill(0),
        }
        buf.id = id;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        let mut pages = self.pages.lock();
        let idx = id as usize;
        while pages.len() <= idx {
            pages.push(Box::new([0u8; PAGE_SIZE]));
        }
        pages[idx].copy_from_slice(&buf.data[..]);
        Ok(())
    }

    fn page_count(&self) -> Result<u32> {
        Ok(self.pages.lock().len() as u32)
    }
}

/// A disk that injects a failure after a budgeted number of page writes —
/// the storage-side half of crash-point testing (the log side is
/// `domino_wal::FaultLogStore`). Sharing one `FaultPlan` across both
/// lets a test kill the *whole* I/O stack at an exact global operation
/// count. Reads never fail: a crashed machine can still be read back.
pub struct FaultDisk<D: Disk> {
    disk: D,
    plan: domino_wal::FaultPlan,
}

impl<D: Disk> FaultDisk<D> {
    pub fn new(disk: D, plan: domino_wal::FaultPlan) -> FaultDisk<D> {
        FaultDisk { disk, plan }
    }

    pub fn plan(&self) -> &domino_wal::FaultPlan {
        &self.plan
    }
}

impl<D: Disk> Disk for FaultDisk<D> {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        self.disk.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        self.plan.tick("disk write_page")?;
        self.disk.write_page(id, buf)
    }

    fn write_page_raw(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        self.plan.tick("disk write_page_raw")?;
        self.disk.write_page_raw(id, buf)
    }

    fn sync(&self) -> Result<()> {
        self.plan.tick("disk sync")?;
        self.disk.sync()
    }

    fn set_recovery_lsn(&self, lsn: u64) -> Result<()> {
        self.plan.tick("disk set_recovery_lsn")?;
        self.disk.set_recovery_lsn(lsn)
    }

    fn recovery_lsn(&self) -> Result<u64> {
        self.disk.recovery_lsn()
    }

    fn page_count(&self) -> Result<u32> {
        self.disk.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn Disk) {
        let mut w = PageBuf::zeroed(3);
        w.put_bytes(100, b"page three");
        disk.write_page(3, &w).unwrap();

        let mut r = PageBuf::zeroed(0);
        disk.read_page(3, &mut r).unwrap();
        assert_eq!(r.bytes(100, 10), b"page three");
        assert_eq!(r.id, 3);

        // Never-written pages read as zeroes.
        disk.read_page(100, &mut r).unwrap();
        assert!(r.data.iter().all(|b| *b == 0));

        assert_eq!(disk.page_count().unwrap(), 4);
        assert_eq!(disk.size_bytes().unwrap(), 4 * PAGE_SIZE as u64);
        disk.sync().unwrap();
    }

    #[test]
    fn mem_disk_basics() {
        exercise(&MemDisk::new());
    }

    #[test]
    fn mem_disk_shared_across_clones() {
        let a = MemDisk::new();
        let b = a.clone();
        let mut w = PageBuf::zeroed(0);
        w.put_bytes(0, b"x");
        a.write_page(0, &w).unwrap();
        let mut r = PageBuf::zeroed(0);
        b.read_page(0, &mut r).unwrap();
        assert_eq!(r.bytes(0, 1), b"x");
    }
}
