//! The page device.
//!
//! [`Disk`] writes are durable when they return (the buffer pool above it
//! decides *when* to write; the WAL protocol decides *what must be logged
//! first*). [`MemDisk`] is shareable so a crashed engine can be reopened
//! over the same "disk" contents; [`FileDisk`] stores pages in a real file.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::page::{PageBuf, PageId, PAGE_SIZE};
use domino_types::{DominoError, Result};

/// A durable array of pages.
pub trait Disk: Send {
    /// Read page `id` into `buf`. Reading past the end yields zeroes (the
    /// page has never been written).
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<()>;

    /// Durably write page `id`.
    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<()>;

    /// Number of pages ever written + 1 (i.e. one past the highest id).
    fn page_count(&self) -> Result<u32>;

    /// Bytes of backing storage in use (experiment accounting).
    fn size_bytes(&self) -> Result<u64> {
        Ok(self.page_count()? as u64 * PAGE_SIZE as u64)
    }
}

/// In-memory disk, shareable across engine generations for crash tests.
#[derive(Clone, Default)]
pub struct MemDisk {
    pages: Arc<Mutex<Vec<Box<[u8; PAGE_SIZE]>>>>,
}

impl MemDisk {
    pub fn new() -> MemDisk {
        MemDisk::default()
    }
}

impl Disk for MemDisk {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        let pages = self.pages.lock();
        match pages.get(id as usize) {
            Some(data) => buf.data.copy_from_slice(&data[..]),
            None => buf.data.fill(0),
        }
        buf.id = id;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        let mut pages = self.pages.lock();
        let idx = id as usize;
        while pages.len() <= idx {
            pages.push(Box::new([0u8; PAGE_SIZE]));
        }
        pages[idx].copy_from_slice(&buf.data[..]);
        Ok(())
    }

    fn page_count(&self) -> Result<u32> {
        Ok(self.pages.lock().len() as u32)
    }
}

/// File-backed disk.
pub struct FileDisk {
    file: Mutex<File>,
}

impl FileDisk {
    pub fn open(path: &Path) -> Result<FileDisk> {
        // Intentionally no truncate: opening an existing store keeps it.
        #[allow(clippy::suspicious_open_options)]
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DominoError::Corrupt(format!(
                "store file length {len} is not a multiple of the page size"
            )));
        }
        Ok(FileDisk {
            file: Mutex::new(file),
        })
    }
}

impl Disk for FileDisk {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        let mut f = self.file.lock();
        let off = id as u64 * PAGE_SIZE as u64;
        if off >= f.metadata()?.len() {
            buf.data.fill(0);
        } else {
            f.seek(SeekFrom::Start(off))?;
            f.read_exact(&mut buf.data[..])?;
        }
        buf.id = id;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        let mut f = self.file.lock();
        f.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        f.write_all(&buf.data[..])?;
        f.sync_data()?;
        Ok(())
    }

    fn page_count(&self) -> Result<u32> {
        let len = self.file.lock().metadata()?.len();
        Ok((len / PAGE_SIZE as u64) as u32)
    }
}

/// A disk that injects a failure after a budgeted number of page writes —
/// the storage-side half of crash-point testing (the log side is
/// `domino_wal::FaultLogStore`). Sharing one `FaultPlan` across both
/// lets a test kill the *whole* I/O stack at an exact global operation
/// count. Reads never fail: a crashed machine can still be read back.
pub struct FaultDisk<D: Disk> {
    disk: D,
    plan: domino_wal::FaultPlan,
}

impl<D: Disk> FaultDisk<D> {
    pub fn new(disk: D, plan: domino_wal::FaultPlan) -> FaultDisk<D> {
        FaultDisk { disk, plan }
    }

    pub fn plan(&self) -> &domino_wal::FaultPlan {
        &self.plan
    }
}

impl<D: Disk> Disk for FaultDisk<D> {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        self.disk.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        self.plan.tick("disk write_page")?;
        self.disk.write_page(id, buf)
    }

    fn page_count(&self) -> Result<u32> {
        self.disk.page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn Disk) {
        let mut w = PageBuf::zeroed(3);
        w.put_bytes(100, b"page three");
        disk.write_page(3, &w).unwrap();

        let mut r = PageBuf::zeroed(0);
        disk.read_page(3, &mut r).unwrap();
        assert_eq!(r.bytes(100, 10), b"page three");
        assert_eq!(r.id, 3);

        // Never-written pages read as zeroes.
        disk.read_page(100, &mut r).unwrap();
        assert!(r.data.iter().all(|b| *b == 0));

        assert_eq!(disk.page_count().unwrap(), 4);
        assert_eq!(disk.size_bytes().unwrap(), 4 * PAGE_SIZE as u64);
    }

    #[test]
    fn mem_disk_basics() {
        exercise(&MemDisk::new());
    }

    #[test]
    fn mem_disk_shared_across_clones() {
        let a = MemDisk::new();
        let b = a.clone();
        let mut w = PageBuf::zeroed(0);
        w.put_bytes(0, b"x");
        a.write_page(0, &w).unwrap();
        let mut r = PageBuf::zeroed(0);
        b.read_page(0, &mut r).unwrap();
        assert_eq!(r.bytes(0, 1), b"x");
    }

    #[test]
    fn file_disk_basics() {
        let dir = std::env::temp_dir().join(format!("domino-disk-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.nsf");
        let _ = std::fs::remove_file(&path);
        let disk = FileDisk::open(&path).unwrap();
        exercise(&disk);
        drop(disk);
        // Reopen: contents persist.
        let disk2 = FileDisk::open(&path).unwrap();
        let mut r = PageBuf::zeroed(0);
        disk2.read_page(3, &mut r).unwrap();
        assert_eq!(r.bytes(100, 10), b"page three");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
