//! The transactional page engine: buffer pool + write-ahead logging.
//!
//! All mutation flows through [`Engine::write`], which captures the before
//! image, logs an update record, applies the bytes, and stamps the page
//! LSN. The buffer pool is *steal/no-force*: dirty pages may be evicted
//! before commit (after forcing the log up to their LSN — the write-ahead
//! rule) and are not forced at commit (redo recovers them). Commit forces
//! the log; [`Engine::checkpoint`] writes a fuzzy checkpoint so restart
//! reads only the log tail.
//!
//! The engine is single-writer: `domino_core::Database` serializes
//! transactions, which is what makes physical before-image undo sound.
//!
//! Page 0 is the store header:
//!
//! ```text
//! 16..20  magic "DNSF"
//! 20..22  format version
//! 22..26  next never-allocated page id
//! 26..30  head of the free-page chain
//! 30..34  reserved
//! 34..98  eight u64 slots for the layers above (replica id, counters...)
//! 98..130 eight u32 B-tree root slots
//! 130..134 heap free-space chain head
//! ```

use std::collections::HashMap;

use crate::disk::Disk;
use crate::page::{PageBuf, PageId, PageType, PAGE_SIZE};
use domino_types::{DominoError, Result};
use domino_wal::{recover, LogManager, LogRecord, LogStore, Lsn, RecoveryStats, RedoTarget, TxId};

/// The WAL type the engine uses (store chosen at runtime).
pub type Wal = LogManager<Box<dyn LogStore>>;

const MAGIC: u32 = 0x444E_5346; // "DNSF"
const VERSION: u16 = 1;
const OFF_MAGIC: usize = 16;
const OFF_VERSION: usize = 20;
const OFF_NEXT_PAGE: usize = 22;
const OFF_FREE_HEAD: usize = 26;
const OFF_USER_SLOTS: usize = 34; // 8 x u64
const OFF_TREE_ROOTS: usize = 98; // 8 x u32
const OFF_HEAP_AVAIL: usize = 130;

/// Number of u64 slots reserved for layers above the engine.
pub const USER_SLOTS: usize = 8;
/// Number of named B-tree root slots.
pub const TREE_ROOT_SLOTS: usize = 8;

/// Tuning and behaviour switches.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Buffer pool capacity in frames (pages).
    pub buffer_capacity: usize,
    /// Write-ahead logging on/off. Off reproduces the pre-R5 "no log"
    /// mode: fast, but a crash loses everything since the last page flush
    /// and requires a fixup-style scan to trust the file again.
    pub logging: bool,
    /// Force the log at commit. Turning this off models deferred group
    /// commit (commits become durable at the next flush/checkpoint).
    pub flush_on_commit: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig { buffer_capacity: 4096, logging: true, flush_on_commit: true }
    }
}

/// Counters for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub reads: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub evictions: u64,
    pub page_writes: u64,
    pub pages_allocated: u64,
    pub pages_freed: u64,
    pub txs_committed: u64,
    pub txs_aborted: u64,
}

/// An open transaction handle.
pub struct Tx {
    pub id: TxId,
    last_lsn: Lsn,
    /// In-memory undo, newest last: (page, offset, before image, and the
    /// transaction's previous LSN at the time of the update — i.e. what a
    /// CLR undoing this update must use as `undo_next`).
    undo: Vec<(PageId, u16, Vec<u8>, Lsn)>,
}

struct Frame {
    page: PageBuf,
    dirty: bool,
    last_used: u64,
}

/// LRU order: tick -> page id (ticks are unique).
type LruMap = std::collections::BTreeMap<u64, PageId>;

/// The page engine.
pub struct Engine {
    disk: Box<dyn Disk>,
    wal: Option<Wal>,
    config: EngineConfig,
    frames: HashMap<PageId, Frame>,
    lru: LruMap,
    tick: u64,
    /// Dirty-page table: page -> recovery LSN (first LSN that dirtied it).
    dirty_table: HashMap<PageId, Lsn>,
    next_tx: u64,
    active_tx: Option<TxId>,
    stats: EngineStats,
    /// Stats of the restart recovery performed at open, if any.
    pub recovery: Option<RecoveryStats>,
}

impl Engine {
    /// Open (and if empty, format) a store. If the log is non-empty,
    /// restart recovery runs before the engine is handed back.
    pub fn open(
        disk: Box<dyn Disk>,
        log_store: Option<Box<dyn LogStore>>,
        config: EngineConfig,
    ) -> Result<Engine> {
        let wal = match (config.logging, log_store) {
            (true, Some(s)) => Some(LogManager::open(s)?),
            (true, None) => {
                return Err(DominoError::InvalidArgument(
                    "logging enabled but no log store supplied".into(),
                ))
            }
            (false, _) => None,
        };
        let mut engine = Engine {
            disk,
            wal,
            config,
            frames: HashMap::new(),
            lru: LruMap::new(),
            tick: 0,
            dirty_table: HashMap::new(),
            next_tx: 1,
            active_tx: None,
            stats: EngineStats::default(),
            recovery: None,
        };

        // Restart recovery (repeating history) before anything else.
        if let Some(wal) = engine.wal.take() {
            if !wal.durable_len()?.eq(&0) {
                let mut target = EngineRedo { engine: &mut engine };
                let stats = recover(&wal, &mut target)?;
                engine.recovery = Some(stats);
                // Recovery rewrote frames; persist them and restart the log.
                engine.flush_all_pages_internal()?;
                wal.truncate_all()?;
            }
            engine.wal = Some(wal);
        }

        engine.format_if_needed()?;
        Ok(engine)
    }

    fn format_if_needed(&mut self) -> Result<()> {
        let header = self.fetch(0)?;
        let magic = header.get_u32(OFF_MAGIC);
        if magic == MAGIC {
            let version = header.get_u16(OFF_VERSION);
            if version != VERSION {
                return Err(DominoError::Corrupt(format!(
                    "unsupported store version {version}"
                )));
            }
            return Ok(());
        }
        if magic != 0 {
            return Err(DominoError::Corrupt("bad store magic".into()));
        }
        // Fresh store: format page 0 under a bootstrap transaction.
        let mut tx = self.begin()?;
        let mut init = [0u8; 18];
        init[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        init[4..6].copy_from_slice(&VERSION.to_le_bytes());
        init[6..10].copy_from_slice(&1u32.to_le_bytes()); // next_page
        self.write(&mut tx, 0, OFF_MAGIC as u16, &init)?;
        self.write(&mut tx, 0, 8, &[PageType::Header.code()])?;
        self.commit(tx)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // buffer pool
    // ------------------------------------------------------------------

    /// Load a page frame (from pool or disk), returning a mutable handle.
    fn frame(&mut self, id: PageId) -> Result<&mut Frame> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(f) = self.frames.get(&id) {
            self.stats.pool_hits += 1;
            self.lru.remove(&f.last_used);
        } else {
            self.stats.pool_misses += 1;
            let mut page = PageBuf::zeroed(id);
            self.disk.read_page(id, &mut page)?;
            self.evict_if_full()?;
            self.frames.insert(id, Frame { page, dirty: false, last_used: 0 });
        }
        self.lru.insert(tick, id);
        let f = self.frames.get_mut(&id).expect("just inserted");
        f.last_used = tick;
        Ok(f)
    }

    fn evict_if_full(&mut self) -> Result<()> {
        while self.frames.len() >= self.config.buffer_capacity.max(1) {
            let victim = self
                .lru
                .iter()
                .next()
                .map(|(_, id)| *id)
                .expect("pool not empty");
            self.evict(victim)?;
        }
        Ok(())
    }

    fn evict(&mut self, id: PageId) -> Result<()> {
        if let Some(frame) = self.frames.remove(&id) {
            self.lru.remove(&frame.last_used);
            if frame.dirty {
                // WAL rule: log up to the page LSN must be durable first.
                if let Some(wal) = &self.wal {
                    wal.flush(frame.page.lsn())?;
                }
                self.disk.write_page(id, &frame.page)?;
                self.stats.page_writes += 1;
                self.dirty_table.remove(&id);
            }
            self.stats.evictions += 1;
        }
        Ok(())
    }

    /// Read a copy of a page.
    pub fn fetch(&mut self, id: PageId) -> Result<PageBuf> {
        self.stats.reads += 1;
        Ok(self.frame(id)?.page.clone())
    }

    /// LSN stamped on a page (NIL for never-written pages).
    pub fn page_lsn(&mut self, id: PageId) -> Result<Lsn> {
        Ok(self.frame(id)?.page.lsn())
    }

    /// Flush every dirty page (and first the log). Used by checkpoints and
    /// clean shutdown.
    pub fn flush_all_pages(&mut self) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.flush_all()?;
        }
        self.flush_all_pages_internal()
    }

    fn flush_all_pages_internal(&mut self) -> Result<()> {
        let dirty: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(id, _)| *id)
            .collect();
        for id in dirty {
            let frame = self.frames.get_mut(&id).expect("listed");
            self.disk.write_page(id, &frame.page)?;
            frame.dirty = false;
            self.stats.page_writes += 1;
        }
        self.dirty_table.clear();
        Ok(())
    }

    /// Simulate a crash: all frames and the volatile log tail vanish.
    /// The engine is consumed; reopen from the same disk/log stores.
    pub fn crash(self) {
        // Dropping discards frames. MemLogStore::crash is the caller's job
        // (it owns a clone of the store).
    }

    // ------------------------------------------------------------------
    // transactions
    // ------------------------------------------------------------------

    /// Begin a transaction. Single-writer: beginning while another is
    /// active is a caller bug.
    pub fn begin(&mut self) -> Result<Tx> {
        if let Some(active) = self.active_tx {
            return Err(DominoError::InvalidArgument(format!(
                "transaction {active} still active (engine is single-writer)"
            )));
        }
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.active_tx = Some(id);
        if let Some(wal) = &self.wal {
            wal.append(&LogRecord::Begin { tx: id })?;
        }
        Ok(Tx { id, last_lsn: Lsn::NIL, undo: Vec::new() })
    }

    /// Logged write of `bytes` at `offset` in page `id`.
    pub fn write(&mut self, tx: &mut Tx, id: PageId, offset: u16, bytes: &[u8]) -> Result<()> {
        if self.active_tx != Some(tx.id) {
            return Err(DominoError::InvalidArgument(
                "write from a non-active transaction".into(),
            ));
        }
        let end = offset as usize + bytes.len();
        if end > PAGE_SIZE {
            return Err(DominoError::InvalidArgument(format!(
                "write past page end ({end} > {PAGE_SIZE})"
            )));
        }
        // Capture before image & log.
        let (lsn, before) = {
            let frame = self.frame(id)?;
            let before = frame.page.bytes(offset as usize, bytes.len()).to_vec();
            (None::<Lsn>, before)
        };
        let prev_lsn = tx.last_lsn;
        let lsn = match (&self.wal, lsn) {
            (Some(wal), _) => Some(wal.append(&LogRecord::Update {
                tx: tx.id,
                prev: prev_lsn,
                page: id,
                offset,
                before: before.clone(),
                after: bytes.to_vec(),
            })?),
            (None, l) => l,
        };
        let frame = self.frames.get_mut(&id).expect("loaded above");
        frame.page.put_bytes(offset as usize, bytes);
        if let Some(lsn) = lsn {
            frame.page.set_lsn(lsn);
            tx.last_lsn = lsn;
        }
        frame.dirty = true;
        if let Some(lsn) = lsn {
            self.dirty_table.entry(id).or_insert(lsn);
        }
        tx.undo.push((id, offset, before, prev_lsn));
        Ok(())
    }

    /// Commit: log the commit record and (by default) force the log.
    pub fn commit(&mut self, tx: Tx) -> Result<()> {
        if self.active_tx != Some(tx.id) {
            return Err(DominoError::InvalidArgument("commit of non-active tx".into()));
        }
        if let Some(wal) = &self.wal {
            let lsn = wal.append(&LogRecord::Commit { tx: tx.id })?;
            if self.config.flush_on_commit {
                wal.flush(lsn)?;
            }
        }
        self.active_tx = None;
        self.stats.txs_committed += 1;
        Ok(())
    }

    /// Roll back: re-apply before images newest-first, logging CLRs.
    pub fn abort(&mut self, tx: Tx) -> Result<()> {
        if self.active_tx != Some(tx.id) {
            return Err(DominoError::InvalidArgument("abort of non-active tx".into()));
        }
        for (page, offset, before, prev_lsn) in tx.undo.iter().rev() {
            let lsn = match &self.wal {
                Some(wal) => {
                    // `undo_next` points at the update's predecessor, so a
                    // crash between CLRs resumes exactly where this abort
                    // stopped.
                    let lsn = wal.append(&LogRecord::Clr {
                        tx: tx.id,
                        page: *page,
                        offset: *offset,
                        after: before.clone(),
                        undo_next: *prev_lsn,
                    })?;
                    Some(lsn)
                }
                None => None,
            };
            let frame = self.frame(*page)?;
            frame.page.put_bytes(*offset as usize, before);
            if let Some(lsn) = lsn {
                frame.page.set_lsn(lsn);
            }
            frame.dirty = true;
            if let Some(lsn) = lsn {
                self.dirty_table.entry(*page).or_insert(lsn);
            }
        }
        if let Some(wal) = &self.wal {
            let lsn = wal.append(&LogRecord::Abort { tx: tx.id })?;
            if self.config.flush_on_commit {
                wal.flush(lsn)?;
            }
        }
        self.active_tx = None;
        self.stats.txs_aborted += 1;
        Ok(())
    }

    /// Checkpoint: flush dirty pages, then log a checkpoint record and
    /// update the master record, so restart recovery reads only the log
    /// tail that follows. (The recovery machinery also handles fuzzy
    /// checkpoints with a non-empty dirty-page table — see
    /// `domino_wal::recover` — but flushing here keeps restart cost
    /// strictly proportional to post-checkpoint work.) Call between
    /// transactions.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.active_tx.is_some() {
            return Err(DominoError::InvalidArgument(
                "checkpoint with an active transaction".into(),
            ));
        }
        self.flush_all_pages()?;
        let Some(wal) = &self.wal else { return Ok(()) };
        let dirty: Vec<(u32, Lsn)> =
            self.dirty_table.iter().map(|(p, l)| (*p, *l)).collect();
        let lsn = wal.append(&LogRecord::Checkpoint { active: vec![], dirty })?;
        wal.flush(lsn)?;
        wal.set_master(lsn)?;
        Ok(())
    }

    /// Clean shutdown: flush pages, then truncate the log.
    pub fn shutdown(&mut self) -> Result<()> {
        self.flush_all_pages()?;
        if let Some(wal) = &self.wal {
            wal.truncate_all()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // page allocation (header-page bookkeeping, all logged)
    // ------------------------------------------------------------------

    /// Allocate a page: pop the free chain or extend the file.
    pub fn alloc_page(&mut self, tx: &mut Tx, ptype: PageType) -> Result<PageId> {
        let header = self.fetch(0)?;
        let free_head = header.get_u32(OFF_FREE_HEAD);
        let id = if free_head != 0 {
            let free_page = self.fetch(free_head)?;
            let next = free_page.link();
            self.write(tx, 0, OFF_FREE_HEAD as u16, &next.to_le_bytes())?;
            free_head
        } else {
            let next = header.get_u32(OFF_NEXT_PAGE).max(1);
            self.write(tx, 0, OFF_NEXT_PAGE as u16, &(next + 1).to_le_bytes())?;
            next
        };
        // Re-initialize the page header (type + cleared link). Structures
        // initialize their own fields; stale bytes beyond logged ranges are
        // never interpreted because counts are always written.
        self.write(tx, id, 8, &[ptype.code(), 0])?;
        self.write(tx, id, 10, &0u32.to_le_bytes())?;
        self.stats.pages_allocated += 1;
        Ok(id)
    }

    /// Return a page to the free chain.
    pub fn free_page(&mut self, tx: &mut Tx, id: PageId) -> Result<()> {
        if id == 0 {
            return Err(DominoError::InvalidArgument("cannot free the header page".into()));
        }
        let header = self.fetch(0)?;
        let old_head = header.get_u32(OFF_FREE_HEAD);
        self.write(tx, id, 8, &[PageType::Free.code(), 0])?;
        self.write(tx, id, 10, &old_head.to_le_bytes())?;
        self.write(tx, 0, OFF_FREE_HEAD as u16, &id.to_le_bytes())?;
        self.stats.pages_freed += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // header slots for the layers above
    // ------------------------------------------------------------------

    /// Read user slot `i` (0..8).
    pub fn user_slot(&mut self, i: usize) -> Result<u64> {
        assert!(i < USER_SLOTS);
        Ok(self.fetch(0)?.get_u64(OFF_USER_SLOTS + 8 * i))
    }

    /// Write user slot `i` under `tx`.
    pub fn set_user_slot(&mut self, tx: &mut Tx, i: usize, v: u64) -> Result<()> {
        assert!(i < USER_SLOTS);
        self.write(tx, 0, (OFF_USER_SLOTS + 8 * i) as u16, &v.to_le_bytes())
    }

    /// Read tree-root slot `i` (0..8); 0 = tree not created.
    pub fn tree_root(&mut self, i: usize) -> Result<PageId> {
        assert!(i < TREE_ROOT_SLOTS);
        Ok(self.fetch(0)?.get_u32(OFF_TREE_ROOTS + 4 * i))
    }

    pub fn set_tree_root(&mut self, tx: &mut Tx, i: usize, root: PageId) -> Result<()> {
        assert!(i < TREE_ROOT_SLOTS);
        self.write(tx, 0, (OFF_TREE_ROOTS + 4 * i) as u16, &root.to_le_bytes())
    }

    /// Head of the heap free-space chain.
    pub fn heap_avail(&mut self) -> Result<PageId> {
        Ok(self.fetch(0)?.get_u32(OFF_HEAP_AVAIL))
    }

    pub fn set_heap_avail(&mut self, tx: &mut Tx, id: PageId) -> Result<()> {
        self.write(tx, 0, OFF_HEAP_AVAIL as u16, &id.to_le_bytes())
    }

    // ------------------------------------------------------------------

    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Bytes on disk (experiment accounting).
    pub fn disk_bytes(&self) -> Result<u64> {
        self.disk.size_bytes()
    }

    /// Logical store size: every page ever allocated (whether or not it
    /// has reached disk yet), in bytes. This is the number compaction
    /// shrinks.
    pub fn logical_bytes(&mut self) -> Result<u64> {
        let header = self.fetch(0)?;
        Ok(header.get_u32(OFF_NEXT_PAGE).max(1) as u64 * PAGE_SIZE as u64)
    }
}

/// Adapter running restart recovery against the engine's pool.
struct EngineRedo<'a> {
    engine: &'a mut Engine,
}

impl RedoTarget for EngineRedo<'_> {
    fn page_lsn(&mut self, page: u32) -> Result<Lsn> {
        self.engine.page_lsn(page)
    }

    fn apply(&mut self, page: u32, offset: u16, bytes: &[u8], lsn: Lsn) -> Result<()> {
        let frame = self.engine.frame(page)?;
        frame.page.put_bytes(offset as usize, bytes);
        frame.page.set_lsn(lsn);
        frame.dirty = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use domino_wal::MemLogStore;

    fn open(disk: MemDisk, log: MemLogStore, cap: usize) -> Engine {
        Engine::open(
            Box::new(disk),
            Some(Box::new(log)),
            EngineConfig { buffer_capacity: cap, ..EngineConfig::default() },
        )
        .unwrap()
    }

    #[test]
    fn format_and_reopen() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        e.shutdown().unwrap();
        drop(e);
        let mut e2 = open(disk, log, 64);
        // Header fields preserved.
        assert_eq!(e2.tree_root(0).unwrap(), 0);
        assert!(e2.recovery.is_none());
    }

    #[test]
    fn committed_write_survives_crash() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        let mut tx = e.begin().unwrap();
        let page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, page, 100, b"persist me").unwrap();
        e.commit(tx).unwrap();
        e.crash();
        log.crash();

        let mut e2 = open(disk, log, 64);
        assert!(e2.recovery.is_some());
        let p = e2.fetch(page).unwrap();
        assert_eq!(p.bytes(100, 10), b"persist me");
    }

    #[test]
    fn uncommitted_write_rolled_back_on_recovery() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        let mut tx = e.begin().unwrap();
        let page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, page, 100, b"ghost").unwrap();
        // Force the partial work to the log, then "crash" mid-transaction.
        e.wal().unwrap().flush_all().unwrap();
        e.crash();
        log.crash();

        let mut e2 = open(disk.clone(), log, 64);
        let stats = e2.recovery.expect("recovery ran");
        assert_eq!(stats.loser_txs, 1);
        let p = e2.fetch(page).unwrap();
        assert_eq!(p.bytes(100, 5), &[0u8; 5]);
        // The allocation was undone too: next_page counter restored.
        let header = e2.fetch(0).unwrap();
        assert_eq!(header.get_u32(OFF_NEXT_PAGE), 1);
    }

    #[test]
    fn abort_restores_before_images() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 64);
        let mut tx = e.begin().unwrap();
        let page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, page, 50, b"AAAA").unwrap();
        e.commit(tx).unwrap();

        let mut tx2 = e.begin().unwrap();
        e.write(&mut tx2, page, 50, b"BBBB").unwrap();
        assert_eq!(e.fetch(page).unwrap().bytes(50, 4), b"BBBB");
        e.abort(tx2).unwrap();
        assert_eq!(e.fetch(page).unwrap().bytes(50, 4), b"AAAA");
        assert_eq!(e.stats().txs_aborted, 1);
    }

    #[test]
    fn single_writer_enforced() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 64);
        let _tx = e.begin().unwrap();
        assert!(e.begin().is_err());
    }

    #[test]
    fn eviction_respects_wal_rule_and_preserves_data() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        // Tiny pool: 4 frames forces constant eviction.
        let mut e = open(disk.clone(), log.clone(), 4);
        let mut pages = Vec::new();
        let mut tx = e.begin().unwrap();
        for i in 0..20u8 {
            let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
            e.write(&mut tx, p, 200, &[i; 8]).unwrap();
            pages.push(p);
        }
        e.commit(tx).unwrap();
        for (i, p) in pages.iter().enumerate() {
            let buf = e.fetch(*p).unwrap();
            assert_eq!(buf.bytes(200, 8), &[i as u8; 8]);
        }
        assert!(e.stats().evictions > 0);
    }

    #[test]
    fn checkpoint_bounds_recovery_work() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        let mut tx = e.begin().unwrap();
        let p1 = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, p1, 64, b"old").unwrap();
        e.commit(tx).unwrap();
        e.flush_all_pages().unwrap();
        e.checkpoint().unwrap();

        let mut tx = e.begin().unwrap();
        let p2 = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, p2, 64, b"new").unwrap();
        e.commit(tx).unwrap();
        e.crash();
        log.crash();

        let mut e2 = open(disk, log, 64);
        let stats = e2.recovery.expect("recovery ran");
        // Analysis started at the checkpoint, not LSN 0.
        assert!(!stats.start_lsn.is_nil());
        assert_eq!(e2.fetch(p1).unwrap().bytes(64, 3), b"old");
        assert_eq!(e2.fetch(p2).unwrap().bytes(64, 3), b"new");
    }

    #[test]
    fn alloc_reuses_freed_pages() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 64);
        let mut tx = e.begin().unwrap();
        let a = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        let b = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.free_page(&mut tx, a).unwrap();
        let c = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        assert_eq!(c, a, "freed page recycled");
        let d = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        assert!(d > b, "fresh page extends the file");
        e.commit(tx).unwrap();
    }

    #[test]
    fn user_slots_and_tree_roots_persist() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        let mut tx = e.begin().unwrap();
        e.set_user_slot(&mut tx, 3, 0xABCD).unwrap();
        e.set_tree_root(&mut tx, 2, 77).unwrap();
        e.commit(tx).unwrap();
        e.shutdown().unwrap();
        drop(e);
        let mut e2 = open(disk, log, 64);
        assert_eq!(e2.user_slot(3).unwrap(), 0xABCD);
        assert_eq!(e2.tree_root(2).unwrap(), 77);
    }

    #[test]
    fn no_logging_mode_works_without_durability() {
        let disk = MemDisk::new();
        let mut e = Engine::open(
            Box::new(disk),
            None,
            EngineConfig { logging: false, ..EngineConfig::default() },
        )
        .unwrap();
        let mut tx = e.begin().unwrap();
        let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, p, 10, b"fast").unwrap();
        e.commit(tx).unwrap();
        assert_eq!(e.fetch(p).unwrap().bytes(10, 4), b"fast");
        // Abort still works via in-memory undo.
        let mut tx = e.begin().unwrap();
        e.write(&mut tx, p, 10, b"oops").unwrap();
        e.abort(tx).unwrap();
        assert_eq!(e.fetch(p).unwrap().bytes(10, 4), b"fast");
    }

    #[test]
    fn logical_bytes_grow_with_allocation() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 64);
        let before = e.logical_bytes().unwrap();
        let mut tx = e.begin().unwrap();
        for _ in 0..10 {
            e.alloc_page(&mut tx, PageType::Heap).unwrap();
        }
        e.commit(tx).unwrap();
        let after = e.logical_bytes().unwrap();
        assert_eq!(after - before, 10 * PAGE_SIZE as u64);
    }

    #[test]
    fn write_past_page_end_rejected() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 64);
        let mut tx = e.begin().unwrap();
        let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        assert!(e.write(&mut tx, p, (PAGE_SIZE - 2) as u16, b"xxxx").is_err());
        e.commit(tx).unwrap();
    }
}
