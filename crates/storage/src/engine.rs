//! The transactional page engine: buffer pool + write-ahead logging.
//!
//! All mutation flows through [`Engine::write`], which captures the before
//! image, logs an update record, applies the bytes, and stamps the page
//! LSN. The buffer pool is *steal/no-force*: dirty pages may be evicted
//! before commit (after forcing the log up to their LSN — the write-ahead
//! rule) and are not forced at commit (redo recovers them). Frames live in
//! a slotted [`BufferPool`] with clock-sweep replacement, so a page hit is
//! a hash probe and a reference-bit store.
//!
//! Commit durability is governed by [`CommitMode`]: force the log, defer
//! it, or group-commit (one device sync shared across concurrent
//! committers — see `domino_wal::LogManager::commit_group`).
//!
//! Checkpoints are fuzzy and incremental: [`Engine::begin_checkpoint`]
//! snapshots the dirty-page table, [`Engine::checkpoint_step`] writes a
//! few pages back (oldest recovery-LSN first) between transactions without
//! blocking writers, and [`Engine::complete_checkpoint`] logs the
//! checkpoint record, advances the master record, and truncates the log
//! prefix below the new checkpoint's redo point.
//!
//! The engine is single-writer: `domino_core::Database` serializes
//! transactions, which is what makes physical before-image undo sound.
//!
//! Durability barriers: page writes (evictions, checkpoint writeback) land
//! in the device's cache and are *not* individually synced. The engine
//! calls [`Disk::sync`] at exactly the points where losing an unsynced
//! page write would otherwise lose data — before the log prefix is
//! truncated at checkpoint completion, after restart recovery's writeback,
//! and at clean shutdown. Between barriers, any lost page write is
//! re-created by redo because its updates sit above the retained redo
//! point. After each barrier the on-disk recovery-start LSN mirror
//! ([`Disk::set_recovery_lsn`]) is updated (0 = cleanly closed).
//!
//! Page 0 is the store header (the engine *catalog* page — the file-level
//! superblock is `crate::file`'s concern; byte spec in FORMAT.md):
//!
//! ```text
//! 16..20  magic "DNSF"
//! 20..22  format version
//! 22..26  next never-allocated page id
//! 26..30  free-map root page (head of the FreeMap page chain)
//! 30..34  count of free (reusable) pages tracked by the map
//! 34..98  eight u64 slots for the layers above (replica id, counters...)
//! 98..130 eight u32 B-tree root slots
//! 130..134 heap free-space chain head
//! ```
//!
//! Free pages are tracked by a bitmap, not a chain: each [`PageType::FreeMap`]
//! page covers 32640 pages (one bit per page, set = in use), chained via
//! the header link field. All map mutations go through [`Engine::write`],
//! so allocation state is logged, undoable, and crash-consistent.

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Duration;

use crate::disk::Disk;
use crate::page::{PageBuf, PageId, PageType, PAGE_HEADER, PAGE_SIZE};
use crate::pool::{BufferPool, Frame};
use domino_obs as obs;
use domino_types::{DominoError, Result};
use domino_wal::{recover, LogManager, LogRecord, LogStore, Lsn, RecoveryStats, RedoTarget, TxId};

/// Registry handles for the engine's process-wide telemetry. Per-instance
/// [`EngineStats`] stay exact for tests; these mirror every event into the
/// `show statistics` surface. Cached once — hot paths reach them with one
/// atomic load and record with relaxed atomics only.
struct Metrics {
    pool_hits: &'static obs::Counter,
    pool_misses: &'static obs::Counter,
    evictions: &'static obs::Counter,
    page_reads: &'static obs::Counter,
    page_writes: &'static obs::Counter,
    pages_allocated: &'static obs::Counter,
    pages_freed: &'static obs::Counter,
    commits: &'static obs::Counter,
    aborts: &'static obs::Counter,
    checkpoints: &'static obs::Counter,
    checkpoint_pages: &'static obs::Counter,
    commit_nanos: &'static obs::Histogram,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        pool_hits: obs::counter("Database.Pool.Hits"),
        pool_misses: obs::counter("Database.Pool.Misses"),
        evictions: obs::counter("Database.Pool.Evictions"),
        page_reads: obs::counter("Database.Pages.Reads"),
        page_writes: obs::counter("Database.Pages.Writes"),
        pages_allocated: obs::counter("Database.Pages.Allocated"),
        pages_freed: obs::counter("Database.Pages.Freed"),
        commits: obs::counter("Database.Txn.Commits"),
        aborts: obs::counter("Database.Txn.Aborts"),
        checkpoints: obs::counter("Database.Checkpoint.Completed"),
        checkpoint_pages: obs::counter("Database.Checkpoint.PagesWritten"),
        commit_nanos: obs::histogram("Database.Txn.Commit.Nanos"),
    })
}

/// The WAL type the engine uses (store chosen at runtime).
pub type Wal = LogManager<Box<dyn LogStore>>;

pub(crate) const MAGIC: u32 = 0x444E_5346; // "DNSF"
pub(crate) const VERSION: u16 = 1;
pub(crate) const OFF_MAGIC: usize = 16;
pub(crate) const OFF_VERSION: usize = 20;
pub(crate) const OFF_NEXT_PAGE: usize = 22;
pub(crate) const OFF_FREE_MAP: usize = 26;
pub(crate) const OFF_FREE_COUNT: usize = 30;
pub(crate) const OFF_USER_SLOTS: usize = 34; // 8 x u64
pub(crate) const OFF_TREE_ROOTS: usize = 98; // 8 x u32
pub(crate) const OFF_HEAP_AVAIL: usize = 130;

/// Pages covered by one free-map page: one bit per page in the payload.
pub(crate) const BITS_PER_MAP: u32 = ((PAGE_SIZE - PAGE_HEADER) * 8) as u32;

/// Number of u64 slots reserved for layers above the engine.
pub const USER_SLOTS: usize = 8;
/// Number of named B-tree root slots.
pub const TREE_ROOT_SLOTS: usize = 8;

/// What "commit" means for durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitMode {
    /// Force the log at commit: durable when `commit` returns.
    Force,
    /// Don't force: commits become durable at the next flush or
    /// checkpoint. A crash can lose recently "committed" transactions.
    NoForce,
    /// Durable like [`CommitMode::Force`], but the sync is shared: the
    /// committer enters the log's group-commit protocol, where one leader
    /// drains the buffer and issues a single append+sync for every
    /// committer whose record it covers. `max_wait` lets the leader hold
    /// the door open for stragglers (zero = sync immediately; batching
    /// then comes from commits arriving while a sync is in flight);
    /// `max_batch` caps how many it waits for.
    GroupCommit {
        max_wait: Duration,
        max_batch: usize,
    },
}

/// Tuning and behaviour switches.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Buffer pool capacity in frames (pages).
    pub buffer_capacity: usize,
    /// Write-ahead logging on/off. Off reproduces the pre-R5 "no log"
    /// mode: fast, but a crash loses everything since the last page flush
    /// and requires a fixup-style scan to trust the file again.
    pub logging: bool,
    /// Commit durability mode.
    pub commit_mode: CommitMode,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            buffer_capacity: 4096,
            logging: true,
            commit_mode: CommitMode::Force,
        }
    }
}

/// Counters for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    pub reads: u64,
    pub pool_hits: u64,
    pub pool_misses: u64,
    pub evictions: u64,
    pub page_writes: u64,
    pub pages_allocated: u64,
    pub pages_freed: u64,
    pub txs_committed: u64,
    pub txs_aborted: u64,
    /// Completed checkpoints.
    pub checkpoints: u64,
    /// Pages written back by checkpoint steps.
    pub checkpoint_pages: u64,
}

/// An open transaction handle.
pub struct Tx {
    pub id: TxId,
    last_lsn: Lsn,
    /// In-memory undo, newest last: (page, offset, before image, and the
    /// transaction's previous LSN at the time of the update — i.e. what a
    /// CLR undoing this update must use as `undo_next`).
    undo: Vec<(PageId, u16, Vec<u8>, Lsn)>,
}

/// The page engine.
pub struct Engine {
    disk: Box<dyn Disk>,
    wal: Option<Wal>,
    config: EngineConfig,
    pool: BufferPool,
    /// Dirty-page table: page -> recovery LSN (first LSN that dirtied it).
    dirty_table: HashMap<PageId, Lsn>,
    /// In-flight fuzzy checkpoint: dirty snapshot queued for writeback,
    /// sorted so `pop()` yields the oldest recovery LSN first.
    ckpt_queue: Option<Vec<(PageId, Lsn)>>,
    next_tx: u64,
    active_tx: Option<TxId>,
    stats: EngineStats,
    /// Stats of the restart recovery performed at open, if any.
    pub recovery: Option<RecoveryStats>,
}

impl Engine {
    /// Open (and if empty, format) a store. If the log is non-empty,
    /// restart recovery runs before the engine is handed back.
    pub fn open(
        disk: Box<dyn Disk>,
        log_store: Option<Box<dyn LogStore>>,
        config: EngineConfig,
    ) -> Result<Engine> {
        let wal = match (config.logging, log_store) {
            (true, Some(s)) => Some(LogManager::open(s)?),
            (true, None) => {
                return Err(DominoError::InvalidArgument(
                    "logging enabled but no log store supplied".into(),
                ))
            }
            (false, _) => None,
        };
        let pool = BufferPool::new(config.buffer_capacity);
        let mut engine = Engine {
            disk,
            wal,
            config,
            pool,
            dirty_table: HashMap::new(),
            ckpt_queue: None,
            next_tx: 1,
            active_tx: None,
            stats: EngineStats::default(),
            recovery: None,
        };

        // Restart recovery (repeating history) before anything else.
        if let Some(wal) = engine.wal.take() {
            if !wal.durable_len()?.eq(&0) {
                let mut target = EngineRedo {
                    engine: &mut engine,
                };
                let stats = recover(&wal, &mut target)?;
                engine.recovery = Some(stats);
                // Recovery rewrote frames; persist them (through the sync
                // barrier — the log restarts below, so nothing would replay
                // a lost write after this point) and restart the log.
                engine.flush_all_pages_internal()?;
                engine.disk.sync()?;
                wal.truncate_all()?;
                engine.disk.set_recovery_lsn(0)?;
            }
            engine.wal = Some(wal);
        }

        engine.format_if_needed()?;
        Ok(engine)
    }

    fn format_if_needed(&mut self) -> Result<()> {
        let (magic, version) =
            self.with_page(0, |p| (p.get_u32(OFF_MAGIC), p.get_u16(OFF_VERSION)))?;
        if magic == MAGIC {
            if version != VERSION {
                return Err(DominoError::Corrupt(format!(
                    "unsupported store version {version}"
                )));
            }
            return Ok(());
        }
        if magic != 0 {
            return Err(DominoError::Corrupt("bad store magic".into()));
        }
        // Fresh store: format page 0 under a bootstrap transaction.
        let mut tx = self.begin()?;
        let mut init = [0u8; 18];
        init[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        init[4..6].copy_from_slice(&VERSION.to_le_bytes());
        init[6..10].copy_from_slice(&1u32.to_le_bytes()); // next_page
        self.write(&mut tx, 0, OFF_MAGIC as u16, &init)?;
        self.write(&mut tx, 0, 8, &[PageType::Header.code()])?;
        // Create the free map eagerly and account the header page in it
        // (the map root's own bit is set when the chain grows).
        self.write_map_bit(&mut tx, 0, true)?;
        self.commit(tx)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // buffer pool
    // ------------------------------------------------------------------

    /// Load a page frame (from pool or disk), returning a mutable handle.
    ///
    /// This is the *only* place hit/miss/eviction stats are counted, so
    /// read and write paths can't drift apart. The hit path is one hash
    /// probe plus a reference-bit store; a miss on a full pool runs the
    /// clock sweep and reuses the victim's buffer in place (the
    /// steady-state miss allocates nothing).
    fn frame(&mut self, id: PageId) -> Result<&mut Frame> {
        let Engine {
            disk,
            wal,
            pool,
            dirty_table,
            stats,
            ..
        } = self;
        if let Some(slot) = pool.lookup(id) {
            stats.pool_hits += 1;
            m().pool_hits.inc();
            return Ok(pool.frame_mut(slot));
        }
        stats.pool_misses += 1;
        m().pool_misses.inc();
        let slot = if pool.is_full() {
            let slot = pool.pick_victim();
            let f = pool.frame_mut(slot);
            if f.dirty {
                // WAL rule: log up to the page LSN must be durable first.
                if let Some(wal) = wal {
                    wal.flush(f.page.lsn())?;
                }
                disk.write_page(f.page.id, &f.page)?;
                dirty_table.remove(&f.page.id);
                f.dirty = false;
                stats.page_writes += 1;
                m().page_writes.inc();
            }
            stats.evictions += 1;
            m().evictions.inc();
            // Sustained eviction churn means the working set no longer
            // fits the pool. Sample the condition (every 1024th eviction)
            // so the event is rare even when the pressure is constant —
            // emission here sits on the page-fault path.
            if stats.evictions % 1024 == 0 {
                obs::emit(
                    obs::Event::new(
                        obs::EventKind::Checkpoint,
                        obs::Severity::Warning,
                        "Pool.Pressure",
                    )
                    .with("evictions", stats.evictions)
                    .with("capacity", pool.capacity()),
                );
            }
            pool.rebind(slot, id);
            slot
        } else {
            pool.push(PageBuf::zeroed(id))
        };
        let f = pool.frame_mut(slot);
        disk.read_page(id, &mut f.page)?;
        Ok(f)
    }

    /// Run a closure against a page without copying it out of the pool.
    /// The preferred read path — `fetch` clones all 4 KiB.
    pub fn with_page<R>(&mut self, id: PageId, f: impl FnOnce(&PageBuf) -> R) -> Result<R> {
        self.stats.reads += 1;
        m().page_reads.inc();
        let frame = self.frame(id)?;
        Ok(f(&frame.page))
    }

    /// Read a copy of a page.
    pub fn fetch(&mut self, id: PageId) -> Result<PageBuf> {
        self.with_page(id, |p| p.clone())
    }

    /// LSN stamped on a page (NIL for never-written pages).
    pub fn page_lsn(&mut self, id: PageId) -> Result<Lsn> {
        Ok(self.frame(id)?.page.lsn())
    }

    /// Flush every dirty page (and first the log). Used by clean shutdown
    /// and tests; checkpoints use the incremental path instead.
    pub fn flush_all_pages(&mut self) -> Result<()> {
        if let Some(wal) = &self.wal {
            wal.flush_all()?;
        }
        self.flush_all_pages_internal()?;
        self.disk.sync()
    }

    fn flush_all_pages_internal(&mut self) -> Result<()> {
        let Engine {
            disk,
            pool,
            dirty_table,
            stats,
            ..
        } = self;
        for f in pool.frames_mut() {
            if f.dirty {
                disk.write_page(f.page.id, &f.page)?;
                f.dirty = false;
                stats.page_writes += 1;
                m().page_writes.inc();
            }
        }
        dirty_table.clear();
        Ok(())
    }

    /// Simulate a crash: all frames and the volatile log tail vanish.
    /// The engine is consumed; reopen from the same disk/log stores.
    pub fn crash(self) {
        // Dropping discards frames. MemLogStore::crash is the caller's job
        // (it owns a clone of the store).
    }

    // ------------------------------------------------------------------
    // transactions
    // ------------------------------------------------------------------

    /// Begin a transaction. Single-writer: beginning while another is
    /// active is a caller bug.
    pub fn begin(&mut self) -> Result<Tx> {
        if let Some(active) = self.active_tx {
            return Err(DominoError::InvalidArgument(format!(
                "transaction {active} still active (engine is single-writer)"
            )));
        }
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.active_tx = Some(id);
        if let Some(wal) = &self.wal {
            wal.append(&LogRecord::Begin { tx: id })?;
        }
        Ok(Tx {
            id,
            last_lsn: Lsn::NIL,
            undo: Vec::new(),
        })
    }

    /// Logged write of `bytes` at `offset` in page `id`.
    pub fn write(&mut self, tx: &mut Tx, id: PageId, offset: u16, bytes: &[u8]) -> Result<()> {
        if self.active_tx != Some(tx.id) {
            return Err(DominoError::InvalidArgument(
                "write from a non-active transaction".into(),
            ));
        }
        let end = offset as usize + bytes.len();
        if end > PAGE_SIZE {
            return Err(DominoError::InvalidArgument(format!(
                "write past page end ({end} > {PAGE_SIZE})"
            )));
        }
        // Capture before image & log.
        let before = {
            let frame = self.frame(id)?;
            frame.page.bytes(offset as usize, bytes.len()).to_vec()
        };
        let prev_lsn = tx.last_lsn;
        let lsn = match &self.wal {
            Some(wal) => Some(wal.append(&LogRecord::Update {
                tx: tx.id,
                prev: prev_lsn,
                page: id,
                offset,
                before: before.clone(),
                after: bytes.to_vec(),
            })?),
            None => None,
        };
        let slot = self.pool.lookup(id).expect("resident: loaded above");
        let frame = self.pool.frame_mut(slot);
        frame.page.put_bytes(offset as usize, bytes);
        if let Some(lsn) = lsn {
            frame.page.set_lsn(lsn);
            tx.last_lsn = lsn;
        }
        frame.dirty = true;
        if let Some(lsn) = lsn {
            self.dirty_table.entry(id).or_insert(lsn);
        }
        tx.undo.push((id, offset, before, prev_lsn));
        Ok(())
    }

    /// Make the record at `lsn` durable per the configured commit mode.
    fn force_commit_record(&self, lsn: Lsn) -> Result<()> {
        let Some(wal) = &self.wal else { return Ok(()) };
        match self.config.commit_mode {
            CommitMode::Force => wal.flush(lsn),
            CommitMode::NoForce => Ok(()),
            CommitMode::GroupCommit {
                max_wait,
                max_batch,
            } => wal.commit_group(lsn, max_wait, max_batch),
        }
    }

    /// Commit: log the commit record, then force/group-force it per
    /// [`CommitMode`].
    pub fn commit(&mut self, tx: Tx) -> Result<()> {
        if self.active_tx != Some(tx.id) {
            return Err(DominoError::InvalidArgument(
                "commit of non-active tx".into(),
            ));
        }
        let _commit_time = m().commit_nanos.time();
        if let Some(wal) = &self.wal {
            let lsn = wal.append(&LogRecord::Commit { tx: tx.id })?;
            self.force_commit_record(lsn)?;
        }
        self.active_tx = None;
        self.stats.txs_committed += 1;
        m().commits.inc();
        Ok(())
    }

    /// Roll back: re-apply before images newest-first, logging CLRs.
    pub fn abort(&mut self, tx: Tx) -> Result<()> {
        if self.active_tx != Some(tx.id) {
            return Err(DominoError::InvalidArgument(
                "abort of non-active tx".into(),
            ));
        }
        for (page, offset, before, prev_lsn) in tx.undo.iter().rev() {
            let lsn = match &self.wal {
                Some(wal) => {
                    // `undo_next` points at the update's predecessor, so a
                    // crash between CLRs resumes exactly where this abort
                    // stopped.
                    let lsn = wal.append(&LogRecord::Clr {
                        tx: tx.id,
                        page: *page,
                        offset: *offset,
                        after: before.clone(),
                        undo_next: *prev_lsn,
                    })?;
                    Some(lsn)
                }
                None => None,
            };
            let frame = self.frame(*page)?;
            frame.page.put_bytes(*offset as usize, before);
            if let Some(lsn) = lsn {
                frame.page.set_lsn(lsn);
            }
            frame.dirty = true;
            if let Some(lsn) = lsn {
                self.dirty_table.entry(*page).or_insert(lsn);
            }
        }
        if let Some(wal) = &self.wal {
            let lsn = wal.append(&LogRecord::Abort { tx: tx.id })?;
            self.force_commit_record(lsn)?;
        }
        self.active_tx = None;
        self.stats.txs_aborted += 1;
        m().aborts.inc();
        Ok(())
    }

    // ------------------------------------------------------------------
    // checkpointing
    // ------------------------------------------------------------------

    /// Start a fuzzy checkpoint: snapshot the dirty-page table as a
    /// writeback queue ordered oldest recovery-LSN first (flushing those
    /// pages moves the redo point the furthest). Returns the number of
    /// pages queued. Writes may continue between steps.
    pub fn begin_checkpoint(&mut self) -> Result<usize> {
        if self.ckpt_queue.is_some() {
            return Err(DominoError::InvalidArgument(
                "checkpoint already in progress".into(),
            ));
        }
        let mut snap: Vec<(PageId, Lsn)> = self.dirty_table.iter().map(|(p, l)| (*p, *l)).collect();
        // pop() takes from the back, so sort newest recLSN first.
        snap.sort_by_key(|e| std::cmp::Reverse(e.1));
        let n = snap.len();
        self.ckpt_queue = Some(snap);
        Ok(n)
    }

    /// Write back up to `max_pages` snapshot pages. Returns `true` while
    /// the queue is non-empty. Safe to call with a transaction active:
    /// steal semantics make uncommitted writeback sound (the WAL rule is
    /// honored per page).
    pub fn checkpoint_step(&mut self, max_pages: usize) -> Result<bool> {
        let Some(mut queue) = self.ckpt_queue.take() else {
            return Err(DominoError::InvalidArgument(
                "no checkpoint in progress".into(),
            ));
        };
        let mut done = 0usize;
        while done < max_pages {
            let Some((page, _rec_lsn)) = queue.pop() else {
                break;
            };
            if self.write_back(page)? {
                self.stats.checkpoint_pages += 1;
                m().checkpoint_pages.inc();
                done += 1;
            }
        }
        let more = !queue.is_empty();
        self.ckpt_queue = Some(queue);
        Ok(more)
    }

    /// Write one page back if it is still dirty; returns whether a disk
    /// write happened. Does not promote the page in the pool (background
    /// writeback is not a use).
    fn write_back(&mut self, page: PageId) -> Result<bool> {
        let Engine {
            disk,
            wal,
            pool,
            dirty_table,
            stats,
            ..
        } = self;
        if !dirty_table.contains_key(&page) {
            return Ok(false); // cleaned (e.g. evicted) since the snapshot
        }
        let Some(slot) = pool.slot_of(page) else {
            // Dirty-table entries always have a resident frame (eviction
            // cleans the entry), but stay permissive.
            dirty_table.remove(&page);
            return Ok(false);
        };
        let f = pool.frame_mut(slot);
        if !f.dirty {
            dirty_table.remove(&page);
            return Ok(false);
        }
        if let Some(wal) = wal {
            wal.flush(f.page.lsn())?;
        }
        disk.write_page(f.page.id, &f.page)?;
        f.dirty = false;
        dirty_table.remove(&page);
        stats.page_writes += 1;
        m().page_writes.inc();
        Ok(true)
    }

    /// Finish the checkpoint: drain any remaining queued writeback, log a
    /// checkpoint record carrying the (fuzzy) current dirty-page table,
    /// advance the master record, and truncate the log prefix below the
    /// new redo point. Call between transactions.
    pub fn complete_checkpoint(&mut self) -> Result<()> {
        if self.active_tx.is_some() {
            return Err(DominoError::InvalidArgument(
                "checkpoint completion with an active transaction".into(),
            ));
        }
        if self.ckpt_queue.is_none() {
            return Err(DominoError::InvalidArgument(
                "no checkpoint in progress".into(),
            ));
        }
        while self.checkpoint_step(64)? {}
        // Durability barrier *before* the redo point moves: everything the
        // checkpoint wrote back — and any earlier eviction write still in
        // the device cache — must be on the platter before the log below
        // their updates is allowed to disappear.
        self.disk.sync()?;
        self.ckpt_queue = None;
        self.stats.checkpoints += 1;
        m().checkpoints.inc();
        obs::emit(
            obs::Event::new(
                obs::EventKind::Checkpoint,
                obs::Severity::Info,
                "Checkpoint.Completed",
            )
            .with("checkpoints", self.stats.checkpoints)
            .with("pages_written", self.stats.page_writes)
            .with("dirty_remaining", self.dirty_table.len()),
        );
        let Some(wal) = &self.wal else { return Ok(()) };
        // Pages dirtied since begin_checkpoint ride along fuzzily: their
        // recovery LSNs bound where redo must start.
        let dirty: Vec<(u32, Lsn)> = self.dirty_table.iter().map(|(p, l)| (*p, *l)).collect();
        let lsn = wal.append(&LogRecord::Checkpoint {
            active: vec![],
            dirty: dirty.clone(),
        })?;
        wal.flush(lsn)?;
        wal.set_master(lsn)?;
        // Nothing below min(dirty recLSNs, checkpoint LSN) is ever read
        // again: redo starts there, and no transaction needing undo spans
        // the checkpoint (none is active).
        let redo_point = dirty.iter().map(|(_, l)| *l).min().unwrap_or(lsn).min(lsn);
        wal.truncate_prefix(redo_point)?;
        // Mirror the redo point into the device header (the NSF
        // superblock): where replay starts if we crash from here.
        self.disk.set_recovery_lsn(redo_point.0)?;
        Ok(())
    }

    /// Checkpoint in one call: snapshot, drain, complete (with log
    /// truncation). Call between transactions; long-running stores should
    /// prefer the begin/step/complete form driven from a background
    /// thread.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.active_tx.is_some() {
            return Err(DominoError::InvalidArgument(
                "checkpoint with an active transaction".into(),
            ));
        }
        self.begin_checkpoint()?;
        self.complete_checkpoint()
    }

    /// Whether a begin/step checkpoint is mid-flight.
    pub fn checkpoint_in_progress(&self) -> bool {
        self.ckpt_queue.is_some()
    }

    /// Clean shutdown: flush pages (through the sync barrier), truncate
    /// the log, and mark the device header cleanly closed.
    pub fn shutdown(&mut self) -> Result<()> {
        self.ckpt_queue = None;
        self.flush_all_pages()?;
        if let Some(wal) = &self.wal {
            wal.truncate_all()?;
        }
        self.disk.set_recovery_lsn(0)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // page allocation (free-page bitmap, all logged)
    // ------------------------------------------------------------------

    /// Allocate a page: take the lowest free bit from the map (first-fit,
    /// keeps files dense after churn) or extend the file.
    pub fn alloc_page(&mut self, tx: &mut Tx, ptype: PageType) -> Result<PageId> {
        let id = match self.take_free_bit(tx)? {
            Some(id) => id,
            None => {
                let next = self.with_page(0, |h| h.get_u32(OFF_NEXT_PAGE))?.max(1);
                self.write(tx, 0, OFF_NEXT_PAGE as u16, &(next + 1).to_le_bytes())?;
                self.write_map_bit(tx, next, true)?;
                next
            }
        };
        // Re-initialize the page header (type + cleared link). Structures
        // initialize their own fields; stale bytes beyond logged ranges are
        // never interpreted because counts are always written.
        self.write(tx, id, 8, &[ptype.code(), 0])?;
        self.write(tx, id, 10, &0u32.to_le_bytes())?;
        self.stats.pages_allocated += 1;
        m().pages_allocated.inc();
        Ok(id)
    }

    /// Return a page to the free map.
    pub fn free_page(&mut self, tx: &mut Tx, id: PageId) -> Result<()> {
        if id == 0 {
            return Err(DominoError::InvalidArgument(
                "cannot free the header page".into(),
            ));
        }
        if self.with_page(id, |p| p.page_type())? == PageType::FreeMap {
            return Err(DominoError::InvalidArgument(
                "cannot free a free-map page".into(),
            ));
        }
        self.write(tx, id, 8, &[PageType::Free.code(), 0])?;
        self.write(tx, id, 10, &0u32.to_le_bytes())?;
        self.write_map_bit(tx, id, false)?;
        let count = self.with_page(0, |h| h.get_u32(OFF_FREE_COUNT))?;
        self.write(tx, 0, OFF_FREE_COUNT as u16, &(count + 1).to_le_bytes())?;
        self.stats.pages_freed += 1;
        m().pages_freed.inc();
        Ok(())
    }

    /// The map page whose bits cover `range` (pages `range * BITS_PER_MAP`
    /// up), growing the chain with fresh map pages as needed.
    fn map_page_for(&mut self, tx: &mut Tx, range: u32) -> Result<PageId> {
        let mut created: Vec<PageId> = Vec::new();
        let mut cur = self.with_page(0, |h| h.get_u32(OFF_FREE_MAP))?;
        if cur == 0 {
            cur = self.grow_map(tx, 0, &mut created)?;
        }
        for _ in 0..range {
            let next = self.with_page(cur, |p| p.link())?;
            cur = if next == 0 {
                self.grow_map(tx, cur, &mut created)?
            } else {
                next
            };
        }
        // Mark the new map pages' own bits. Their ranges are already
        // covered by the chain we just grew, so this cannot recurse into
        // another grow.
        for id in created {
            self.write_map_bit(tx, id, true)?;
        }
        Ok(cur)
    }

    /// Append one fresh map page after `prev` (0 = install as root).
    fn grow_map(&mut self, tx: &mut Tx, prev: PageId, created: &mut Vec<PageId>) -> Result<PageId> {
        let next = self.with_page(0, |h| h.get_u32(OFF_NEXT_PAGE))?.max(1);
        self.write(tx, 0, OFF_NEXT_PAGE as u16, &(next + 1).to_le_bytes())?;
        self.write(tx, next, 8, &[PageType::FreeMap.code(), 0])?;
        self.write(tx, next, 10, &0u32.to_le_bytes())?;
        if prev == 0 {
            self.write(tx, 0, OFF_FREE_MAP as u16, &next.to_le_bytes())?;
        } else {
            self.write(tx, prev, 10, &next.to_le_bytes())?;
        }
        created.push(next);
        Ok(next)
    }

    /// Set or clear page `id`'s bit in the map.
    fn write_map_bit(&mut self, tx: &mut Tx, id: PageId, used: bool) -> Result<()> {
        let map = self.map_page_for(tx, id / BITS_PER_MAP)?;
        let bit = (id % BITS_PER_MAP) as usize;
        let off = PAGE_HEADER + bit / 8;
        let mask = 1u8 << (bit % 8);
        let byte = self.with_page(map, |p| p.data[off])?;
        let new = if used { byte | mask } else { byte & !mask };
        if new != byte {
            self.write(tx, map, off as u16, &[new])?;
        }
        Ok(())
    }

    /// Find, claim, and return the lowest free page, or `None` if the map
    /// tracks no free page (O(1) via the header count).
    fn take_free_bit(&mut self, tx: &mut Tx) -> Result<Option<PageId>> {
        let (root, count, next_page) = self.with_page(0, |h| {
            (
                h.get_u32(OFF_FREE_MAP),
                h.get_u32(OFF_FREE_COUNT),
                h.get_u32(OFF_NEXT_PAGE),
            )
        })?;
        if count == 0 || root == 0 {
            return Ok(None);
        }
        let mut map = root;
        let mut base = 0u32;
        while map != 0 && base < next_page {
            // Bits at or past next_page are clear but cover pages that
            // were never allocated — not free pages. Bound the scan.
            let limit = (next_page - base).min(BITS_PER_MAP);
            let found = self.with_page(map, |p| {
                for i in 0..(limit as usize).div_ceil(8) {
                    let b = p.data[PAGE_HEADER + i];
                    if b != 0xFF {
                        let idx = i * 8 + (!b).trailing_zeros() as usize;
                        if (idx as u32) < limit {
                            return Some(idx as u32);
                        }
                    }
                }
                None
            })?;
            if let Some(idx) = found {
                let id = base + idx;
                self.write_map_bit(tx, id, true)?;
                self.write(tx, 0, OFF_FREE_COUNT as u16, &(count - 1).to_le_bytes())?;
                return Ok(Some(id));
            }
            base += BITS_PER_MAP;
            map = self.with_page(map, |p| p.link())?;
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // header slots for the layers above
    // ------------------------------------------------------------------

    /// Read user slot `i` (0..8).
    pub fn user_slot(&mut self, i: usize) -> Result<u64> {
        assert!(i < USER_SLOTS);
        self.with_page(0, |h| h.get_u64(OFF_USER_SLOTS + 8 * i))
    }

    /// Write user slot `i` under `tx`.
    pub fn set_user_slot(&mut self, tx: &mut Tx, i: usize, v: u64) -> Result<()> {
        assert!(i < USER_SLOTS);
        self.write(tx, 0, (OFF_USER_SLOTS + 8 * i) as u16, &v.to_le_bytes())
    }

    /// Read tree-root slot `i` (0..8); 0 = tree not created.
    pub fn tree_root(&mut self, i: usize) -> Result<PageId> {
        assert!(i < TREE_ROOT_SLOTS);
        self.with_page(0, |h| h.get_u32(OFF_TREE_ROOTS + 4 * i))
    }

    pub fn set_tree_root(&mut self, tx: &mut Tx, i: usize, root: PageId) -> Result<()> {
        assert!(i < TREE_ROOT_SLOTS);
        self.write(tx, 0, (OFF_TREE_ROOTS + 4 * i) as u16, &root.to_le_bytes())
    }

    /// Head of the heap free-space chain.
    pub fn heap_avail(&mut self) -> Result<PageId> {
        self.with_page(0, |h| h.get_u32(OFF_HEAP_AVAIL))
    }

    pub fn set_heap_avail(&mut self, tx: &mut Tx, id: PageId) -> Result<()> {
        self.write(tx, 0, OFF_HEAP_AVAIL as u16, &id.to_le_bytes())
    }

    // ------------------------------------------------------------------

    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    pub fn wal(&self) -> Option<&Wal> {
        self.wal.as_ref()
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Bytes on disk (experiment accounting).
    pub fn disk_bytes(&self) -> Result<u64> {
        self.disk.size_bytes()
    }

    /// Logical store size: every page ever allocated (whether or not it
    /// has reached disk yet), in bytes. This is the number compaction
    /// shrinks.
    pub fn logical_bytes(&mut self) -> Result<u64> {
        self.with_page(0, |h| {
            h.get_u32(OFF_NEXT_PAGE).max(1) as u64 * PAGE_SIZE as u64
        })
    }
}

/// Adapter running restart recovery against the engine's pool.
struct EngineRedo<'a> {
    engine: &'a mut Engine,
}

impl RedoTarget for EngineRedo<'_> {
    fn page_lsn(&mut self, page: u32) -> Result<Lsn> {
        self.engine.page_lsn(page)
    }

    fn apply(&mut self, page: u32, offset: u16, bytes: &[u8], lsn: Lsn) -> Result<()> {
        let frame = self.engine.frame(page)?;
        frame.page.put_bytes(offset as usize, bytes);
        frame.page.set_lsn(lsn);
        frame.dirty = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use domino_wal::MemLogStore;

    fn open(disk: MemDisk, log: MemLogStore, cap: usize) -> Engine {
        Engine::open(
            Box::new(disk),
            Some(Box::new(log)),
            EngineConfig {
                buffer_capacity: cap,
                ..EngineConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn format_and_reopen() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        e.shutdown().unwrap();
        drop(e);
        let mut e2 = open(disk, log, 64);
        // Header fields preserved.
        assert_eq!(e2.tree_root(0).unwrap(), 0);
        assert!(e2.recovery.is_none());
    }

    #[test]
    fn committed_write_survives_crash() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        let mut tx = e.begin().unwrap();
        let page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, page, 100, b"persist me").unwrap();
        e.commit(tx).unwrap();
        e.crash();
        log.crash();

        let mut e2 = open(disk, log, 64);
        assert!(e2.recovery.is_some());
        let p = e2.fetch(page).unwrap();
        assert_eq!(p.bytes(100, 10), b"persist me");
    }

    #[test]
    fn uncommitted_write_rolled_back_on_recovery() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        let mut tx = e.begin().unwrap();
        let page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, page, 100, b"ghost").unwrap();
        // Force the partial work to the log, then "crash" mid-transaction.
        e.wal().unwrap().flush_all().unwrap();
        e.crash();
        log.crash();

        let mut e2 = open(disk.clone(), log, 64);
        let stats = e2.recovery.expect("recovery ran");
        assert_eq!(stats.loser_txs, 1);
        let p = e2.fetch(page).unwrap();
        assert_eq!(p.bytes(100, 5), &[0u8; 5]);
        // The allocation was undone too: next_page counter restored to the
        // post-format value (header page 0 + free-map root page 1).
        let header = e2.fetch(0).unwrap();
        assert_eq!(header.get_u32(OFF_NEXT_PAGE), 2);
    }

    #[test]
    fn abort_restores_before_images() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 64);
        let mut tx = e.begin().unwrap();
        let page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, page, 50, b"AAAA").unwrap();
        e.commit(tx).unwrap();

        let mut tx2 = e.begin().unwrap();
        e.write(&mut tx2, page, 50, b"BBBB").unwrap();
        assert_eq!(e.fetch(page).unwrap().bytes(50, 4), b"BBBB");
        e.abort(tx2).unwrap();
        assert_eq!(e.fetch(page).unwrap().bytes(50, 4), b"AAAA");
        assert_eq!(e.stats().txs_aborted, 1);
    }

    #[test]
    fn single_writer_enforced() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 64);
        let _tx = e.begin().unwrap();
        assert!(e.begin().is_err());
    }

    #[test]
    fn eviction_respects_wal_rule_and_preserves_data() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        // Tiny pool: 4 frames forces constant eviction.
        let mut e = open(disk.clone(), log.clone(), 4);
        let mut pages = Vec::new();
        let mut tx = e.begin().unwrap();
        for i in 0..20u8 {
            let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
            e.write(&mut tx, p, 200, &[i; 8]).unwrap();
            pages.push(p);
        }
        e.commit(tx).unwrap();
        for (i, p) in pages.iter().enumerate() {
            let buf = e.fetch(*p).unwrap();
            assert_eq!(buf.bytes(200, 8), &[i as u8; 8]);
        }
        assert!(e.stats().evictions > 0);
    }

    #[test]
    fn pinned_hit_miss_eviction_counts() {
        // Scripted access pattern against a 2-frame pool; pins the exact
        // clock-sweep accounting so read/write stat drift is caught.
        let mut e = open(MemDisk::new(), MemLogStore::new(), 2);
        let s0 = e.stats();
        // Pool holds pages 0 and 1 (header + free-map root, both
        // referenced by formatting) — already full. Touch never-seen
        // pages; the engine reads zeroes for them, which is fine for
        // stats purposes.
        e.fetch(5).unwrap(); // miss; sweep clears 0,1 then evicts 0
        e.fetch(5).unwrap(); // hit
        e.fetch(6).unwrap(); // miss; slot 1 unreferenced, evicts 1
        e.fetch(5).unwrap(); // hit
        e.fetch(6).unwrap(); // hit
        e.fetch(0).unwrap(); // miss; sweep clears 5,6 then evicts 5
        let s = e.stats();
        assert_eq!(s.pool_hits - s0.pool_hits, 3);
        assert_eq!(s.pool_misses - s0.pool_misses, 3);
        assert_eq!(s.evictions - s0.evictions, 3);
        assert_eq!(s.reads - s0.reads, 6);
    }

    #[test]
    fn writes_and_reads_count_pool_stats_uniformly() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 8);
        let mut tx = e.begin().unwrap();
        let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.commit(tx).unwrap();
        let s0 = e.stats();
        let mut tx = e.begin().unwrap();
        e.write(&mut tx, p, 64, b"counted").unwrap(); // resident: one hit
        e.commit(tx).unwrap();
        let s = e.stats();
        assert_eq!(s.pool_hits - s0.pool_hits, 1);
        assert_eq!(s.pool_misses, s0.pool_misses);
    }

    #[test]
    fn checkpoint_bounds_recovery_work() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        let mut tx = e.begin().unwrap();
        let p1 = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, p1, 64, b"old").unwrap();
        e.commit(tx).unwrap();
        e.flush_all_pages().unwrap();
        e.checkpoint().unwrap();

        let mut tx = e.begin().unwrap();
        let p2 = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, p2, 64, b"new").unwrap();
        e.commit(tx).unwrap();
        e.crash();
        log.crash();

        let mut e2 = open(disk, log, 64);
        let stats = e2.recovery.expect("recovery ran");
        // Analysis started at the checkpoint, not LSN 0.
        assert!(!stats.start_lsn.is_nil());
        assert_eq!(e2.fetch(p1).unwrap().bytes(64, 3), b"old");
        assert_eq!(e2.fetch(p2).unwrap().bytes(64, 3), b"new");
    }

    #[test]
    fn checkpoint_truncates_log_after_churn() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        for round in 0..50u8 {
            let mut tx = e.begin().unwrap();
            let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
            e.write(&mut tx, p, 128, &[round; 64]).unwrap();
            e.commit(tx).unwrap();
        }
        let wal = e.wal().unwrap();
        let before = wal.durable_len().unwrap();
        assert!(before > 0);
        e.checkpoint().unwrap();
        let after = e.wal().unwrap().durable_len().unwrap();
        assert!(
            after < before / 10,
            "checkpoint should shrink the durable log: {before} -> {after}"
        );
        assert_eq!(e.stats().checkpoints, 1);
        // The truncated store still recovers.
        e.crash();
        log.crash();
        let mut e2 = open(disk, log, 64);
        // Round 9 allocated page 11 (pages 0/1 are header + map root).
        assert_eq!(e2.fetch(11).unwrap().bytes(128, 4), &[9u8; 4][..]);
    }

    #[test]
    fn incremental_checkpoint_interleaves_with_writes() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        let mut pages = Vec::new();
        for i in 0..10u8 {
            let mut tx = e.begin().unwrap();
            let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
            e.write(&mut tx, p, 100, &[i; 16]).unwrap();
            e.commit(tx).unwrap();
            pages.push(p);
        }
        let queued = e.begin_checkpoint().unwrap();
        assert!(queued > 0);
        // Write *during* the checkpoint (between steps): must not block,
        // and the new page rides along fuzzily.
        let mut steps = 0;
        loop {
            let more = e.checkpoint_step(2).unwrap();
            let mut tx = e.begin().unwrap();
            let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
            e.write(&mut tx, p, 100, b"mid-checkpoint").unwrap();
            e.commit(tx).unwrap();
            pages.push(p);
            steps += 1;
            if !more {
                break;
            }
        }
        assert!(steps > 1, "checkpoint actually ran incrementally");
        e.complete_checkpoint().unwrap();
        assert!(e.stats().checkpoint_pages > 0);
        // Crash + recover: everything committed survives.
        e.crash();
        log.crash();
        let mut e2 = open(disk, log, 64);
        for (i, p) in pages.iter().enumerate().take(10) {
            assert_eq!(e2.fetch(*p).unwrap().bytes(100, 16), &[i as u8; 16][..]);
        }
        let last = *pages.last().unwrap();
        assert_eq!(e2.fetch(last).unwrap().bytes(100, 14), b"mid-checkpoint");
    }

    #[test]
    fn alloc_reuses_freed_pages() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 64);
        let mut tx = e.begin().unwrap();
        let a = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        let b = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.free_page(&mut tx, a).unwrap();
        let c = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        assert_eq!(c, a, "freed page recycled");
        let d = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        assert!(d > b, "fresh page extends the file");
        e.commit(tx).unwrap();
    }

    #[test]
    fn free_map_survives_reopen() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        let mut tx = e.begin().unwrap();
        let _a = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        let b = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        let c = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.free_page(&mut tx, b).unwrap();
        e.commit(tx).unwrap();
        e.shutdown().unwrap();
        drop(e);

        let mut e2 = open(disk, log, 64);
        let mut tx = e2.begin().unwrap();
        let d = e2.alloc_page(&mut tx, PageType::Heap).unwrap();
        assert_eq!(d, b, "free bit survived the reopen");
        let fresh = e2.alloc_page(&mut tx, PageType::Heap).unwrap();
        assert!(fresh > c, "no double-allocation of live pages");
        e2.commit(tx).unwrap();
    }

    #[test]
    fn user_slots_and_tree_roots_persist() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = open(disk.clone(), log.clone(), 64);
        let mut tx = e.begin().unwrap();
        e.set_user_slot(&mut tx, 3, 0xABCD).unwrap();
        e.set_tree_root(&mut tx, 2, 77).unwrap();
        e.commit(tx).unwrap();
        e.shutdown().unwrap();
        drop(e);
        let mut e2 = open(disk, log, 64);
        assert_eq!(e2.user_slot(3).unwrap(), 0xABCD);
        assert_eq!(e2.tree_root(2).unwrap(), 77);
    }

    #[test]
    fn no_logging_mode_works_without_durability() {
        let disk = MemDisk::new();
        let mut e = Engine::open(
            Box::new(disk),
            None,
            EngineConfig {
                logging: false,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let mut tx = e.begin().unwrap();
        let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, p, 10, b"fast").unwrap();
        e.commit(tx).unwrap();
        assert_eq!(e.fetch(p).unwrap().bytes(10, 4), b"fast");
        // Abort still works via in-memory undo.
        let mut tx = e.begin().unwrap();
        e.write(&mut tx, p, 10, b"oops").unwrap();
        e.abort(tx).unwrap();
        assert_eq!(e.fetch(p).unwrap().bytes(10, 4), b"fast");
    }

    #[test]
    fn group_commit_mode_is_durable() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut e = Engine::open(
            Box::new(disk.clone()),
            Some(Box::new(log.clone())),
            EngineConfig {
                commit_mode: CommitMode::GroupCommit {
                    max_wait: Duration::ZERO,
                    max_batch: 8,
                },
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let mut tx = e.begin().unwrap();
        let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, p, 100, b"grouped").unwrap();
        e.commit(tx).unwrap();
        e.crash();
        log.crash();
        let mut e2 = open(disk, log, 64);
        assert_eq!(e2.fetch(p).unwrap().bytes(100, 7), b"grouped");
    }

    #[test]
    fn logical_bytes_grow_with_allocation() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 64);
        let before = e.logical_bytes().unwrap();
        let mut tx = e.begin().unwrap();
        for _ in 0..10 {
            e.alloc_page(&mut tx, PageType::Heap).unwrap();
        }
        e.commit(tx).unwrap();
        let after = e.logical_bytes().unwrap();
        assert_eq!(after - before, 10 * PAGE_SIZE as u64);
    }

    #[test]
    fn write_past_page_end_rejected() {
        let mut e = open(MemDisk::new(), MemLogStore::new(), 64);
        let mut tx = e.begin().unwrap();
        let p = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        assert!(e
            .write(&mut tx, p, (PAGE_SIZE - 2) as u16, b"xxxx")
            .is_err());
        e.commit(tx).unwrap();
    }
}
