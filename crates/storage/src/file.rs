//! The single-file NSF device: one real file, positioned I/O, checksums.
//!
//! [`NsfFile`] is the on-disk [`Disk`]: a fixed superblock at file offset 0
//! (magic, format version, page size, recovery-start LSN, header checksum)
//! followed by the engine's page space, with engine page `i` at file offset
//! `(i + 1) * PAGE_SIZE`. All I/O is `pread`/`pwrite`-style positioned I/O
//! (`FileExt::read_at` / `write_at`), so concurrent readers never contend
//! on a seek cursor. The byte-level layout is specified in `FORMAT.md`; the
//! layout test in this module pins the spec to these constants.
//!
//! Durability contract: `write_page` lands in the OS page cache and is
//! *not* individually fsynced — a crash may lose or reorder recent page
//! writes. [`NsfFile::sync`] is the barrier (`fdatasync`). The engine calls
//! it before truncating the log and at clean shutdown, so any page write a
//! crash can lose is always at-or-above the retained redo point and gets
//! replayed. Torn *intra-page* writes are a different failure: those are
//! detected (not repaired) by a per-page 16-bit checksum stamped into
//! header bytes 14..16 on every file write and verified on every file
//! read. A mismatch reads as [`DominoError::Corrupt`] — in the paper's
//! world you restore such a database from a cluster replica.
//!
//! [`CrashDisk`] models the OS page cache explicitly for crash tests:
//! writes buffer in memory until `sync`, and [`CrashDisk::crash`] applies
//! none, an arbitrary subset (fsync reorder), or a subset plus one torn
//! page, before the test reopens the file underneath.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::disk::Disk;
use crate::page::{PageBuf, PageId, PAGE_CHECKSUM_OFFSET, PAGE_SIZE};
use domino_obs as obs;
use domino_types::{DominoError, Result};

/// Registry handles for file-device telemetry (`Nsf.File.*`).
struct Metrics {
    opens: &'static obs::Counter,
    reads: &'static obs::Counter,
    writes: &'static obs::Counter,
    syncs: &'static obs::Counter,
    torn_detected: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        opens: obs::counter("Nsf.File.Opens"),
        reads: obs::counter("Nsf.File.Reads"),
        writes: obs::counter("Nsf.File.Writes"),
        syncs: obs::counter("Nsf.File.Syncs"),
        torn_detected: obs::counter("Nsf.File.TornDetected"),
    })
}

// ---------------------------------------------------------------------
// superblock layout (see FORMAT.md §2 — the layout test pins these)
// ---------------------------------------------------------------------

/// File magic: high-bit byte + "NSF" + CRLF/EOF/LF transfer guards
/// (the PNG trick — catches 7-bit stripping and newline translation).
pub const NSF_MAGIC: [u8; 8] = *b"\x89NSF\r\n\x1a\n";
/// On-disk format version this build reads and writes.
pub const NSF_VERSION: u16 = 1;

/// Superblock field offsets within file page 0.
pub const SB_MAGIC: usize = 0; // 8 bytes
pub const SB_VERSION: usize = 8; // u16
pub const SB_FLAGS: usize = 10; // u16, reserved (zero)
pub const SB_PAGE_SIZE: usize = 12; // u32
pub const SB_RECOVERY_LSN: usize = 16; // u64, 0 = cleanly closed
pub const SB_RESERVED: usize = 24; // 32 bytes, zero
pub const SB_CHECKSUM: usize = 56; // u64 FNV-1a over bytes 0..56
/// Bytes of the superblock that carry meaning (the rest of page 0 is zero).
pub const SB_LEN: usize = 64;

/// FNV-1a 64-bit over a list of byte slices.
fn fnv64(chunks: &[&[u8]]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for chunk in chunks {
        for &b in *chunk {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Per-page checksum: FNV-1a over the page minus its own checksum field,
/// folded to 16 bits. Never returns 0 — 0 is the "never stamped" marker a
/// fresh (all-zero) page carries.
pub fn page_checksum(data: &[u8; PAGE_SIZE]) -> u16 {
    let h = fnv64(&[
        &data[..PAGE_CHECKSUM_OFFSET],
        &data[PAGE_CHECKSUM_OFFSET + 2..],
    ]);
    let folded = (h ^ (h >> 16) ^ (h >> 32) ^ (h >> 48)) as u16;
    if folded == 0 {
        0xFFFF
    } else {
        folded
    }
}

/// The decoded superblock of an NSF file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperBlock {
    pub version: u16,
    pub flags: u16,
    pub page_size: u32,
    /// Where redo must start on the next open; 0 = cleanly closed.
    pub recovery_lsn: u64,
}

impl SuperBlock {
    fn fresh() -> SuperBlock {
        SuperBlock {
            version: NSF_VERSION,
            flags: 0,
            page_size: PAGE_SIZE as u32,
            recovery_lsn: 0,
        }
    }

    /// Encode into a full file page (trailing bytes zero), checksummed.
    pub fn encode(&self) -> Box<[u8; PAGE_SIZE]> {
        let mut page = Box::new([0u8; PAGE_SIZE]);
        page[SB_MAGIC..SB_MAGIC + 8].copy_from_slice(&NSF_MAGIC);
        page[SB_VERSION..SB_VERSION + 2].copy_from_slice(&self.version.to_le_bytes());
        page[SB_FLAGS..SB_FLAGS + 2].copy_from_slice(&self.flags.to_le_bytes());
        page[SB_PAGE_SIZE..SB_PAGE_SIZE + 4].copy_from_slice(&self.page_size.to_le_bytes());
        page[SB_RECOVERY_LSN..SB_RECOVERY_LSN + 8]
            .copy_from_slice(&self.recovery_lsn.to_le_bytes());
        let sum = fnv64(&[&page[..SB_CHECKSUM]]);
        page[SB_CHECKSUM..SB_CHECKSUM + 8].copy_from_slice(&sum.to_le_bytes());
        page
    }

    /// Decode and validate a superblock page. Rejects bad magic, an
    /// unsupported version, a foreign page size, and checksum mismatches.
    pub fn decode(page: &[u8]) -> Result<SuperBlock> {
        if page.len() < SB_LEN {
            return Err(DominoError::Corrupt("superblock truncated".into()));
        }
        if page[SB_MAGIC..SB_MAGIC + 8] != NSF_MAGIC {
            return Err(DominoError::Corrupt("not an NSF file (bad magic)".into()));
        }
        let stored = u64::from_le_bytes(page[SB_CHECKSUM..SB_CHECKSUM + 8].try_into().expect("8"));
        let computed = fnv64(&[&page[..SB_CHECKSUM]]);
        if stored != computed {
            return Err(DominoError::Corrupt(format!(
                "superblock checksum mismatch (stored {stored:#x}, computed {computed:#x})"
            )));
        }
        let version = u16::from_le_bytes(page[SB_VERSION..SB_VERSION + 2].try_into().expect("2"));
        if version != NSF_VERSION {
            return Err(DominoError::Corrupt(format!(
                "unsupported NSF format version {version}"
            )));
        }
        let page_size =
            u32::from_le_bytes(page[SB_PAGE_SIZE..SB_PAGE_SIZE + 4].try_into().expect("4"));
        if page_size != PAGE_SIZE as u32 {
            return Err(DominoError::Corrupt(format!(
                "NSF page size {page_size} (this build uses {PAGE_SIZE})"
            )));
        }
        Ok(SuperBlock {
            version,
            flags: u16::from_le_bytes(page[SB_FLAGS..SB_FLAGS + 2].try_into().expect("2")),
            page_size,
            recovery_lsn: u64::from_le_bytes(
                page[SB_RECOVERY_LSN..SB_RECOVERY_LSN + 8]
                    .try_into()
                    .expect("8"),
            ),
        })
    }
}

/// Integrity report from [`NsfFile::verify`].
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// The superblock (already validated).
    pub recovery_lsn: u64,
    /// Engine pages present in the file.
    pub pages: u32,
    /// Pages carrying a (verified) checksum stamp.
    pub stamped: u32,
    /// Pages whose stored checksum does not match their contents.
    pub torn: Vec<PageId>,
}

/// The on-disk single-file page device.
pub struct NsfFile {
    file: File,
    path: PathBuf,
    recovery_lsn: AtomicU64,
    delete_on_drop: AtomicBool,
    /// Serializes superblock rewrites (page I/O itself needs no lock —
    /// positioned reads/writes are thread-safe on a shared `File`).
    sb_lock: Mutex<()>,
}

impl NsfFile {
    /// Open (creating and formatting the superblock if empty) an NSF file.
    pub fn open(path: &Path) -> Result<NsfFile> {
        // Intentionally no truncate: opening an existing store keeps it.
        #[allow(clippy::suspicious_open_options)]
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .open(path)?;
        let len = file.metadata()?.len();
        let sb = if len == 0 {
            let sb = SuperBlock::fresh();
            file.write_at(&sb.encode()[..], 0)?;
            file.sync_data()?;
            sb
        } else {
            let mut page0 = vec![0u8; PAGE_SIZE.min(len as usize)];
            file.read_exact_at(&mut page0, 0)?;
            SuperBlock::decode(&page0)?
        };
        m().opens.inc();
        Ok(NsfFile {
            file,
            path: path.to_path_buf(),
            recovery_lsn: AtomicU64::new(sb.recovery_lsn),
            delete_on_drop: AtomicBool::new(false),
            sb_lock: Mutex::new(()),
        })
    }

    /// Remove the file (and nothing else) when this handle drops —
    /// scratch-database lifecycle for tests and compaction targets.
    pub fn set_delete_on_drop(&self, yes: bool) {
        self.delete_on_drop.store(yes, Ordering::Relaxed);
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Re-read and validate the superblock straight from the file.
    pub fn superblock(&self) -> Result<SuperBlock> {
        let mut page0 = [0u8; PAGE_SIZE];
        self.file.read_exact_at(&mut page0, 0)?;
        SuperBlock::decode(&page0)
    }

    fn page_offset(id: PageId) -> u64 {
        (id as u64 + 1) * PAGE_SIZE as u64
    }

    /// Offline integrity check: validate the superblock, then recompute
    /// every stamped page checksum. This is the `fixup`-style scan the
    /// paper says transactional recovery exists to avoid — run it when you
    /// suspect the hardware, not on every open.
    pub fn verify(path: &Path) -> Result<VerifyReport> {
        let file = OpenOptions::new().read(true).open(path)?;
        let len = file.metadata()?.len();
        if len < PAGE_SIZE as u64 {
            return Err(DominoError::Corrupt(
                "file shorter than one page (no superblock)".into(),
            ));
        }
        let mut page0 = [0u8; PAGE_SIZE];
        file.read_exact_at(&mut page0, 0)?;
        let sb = SuperBlock::decode(&page0)?;
        let pages = (len / PAGE_SIZE as u64).saturating_sub(1) as u32;
        let mut report = VerifyReport {
            recovery_lsn: sb.recovery_lsn,
            pages,
            ..VerifyReport::default()
        };
        let mut data = [0u8; PAGE_SIZE];
        for id in 0..pages {
            data.fill(0);
            let off = Self::page_offset(id);
            let avail = (len - off).min(PAGE_SIZE as u64) as usize;
            file.read_exact_at(&mut data[..avail], off)?;
            let stored = u16::from_le_bytes(
                data[PAGE_CHECKSUM_OFFSET..PAGE_CHECKSUM_OFFSET + 2]
                    .try_into()
                    .expect("2"),
            );
            if stored == 0 {
                continue;
            }
            report.stamped += 1;
            if page_checksum(&data) != stored {
                report.stamped -= 1;
                report.torn.push(id);
            }
        }
        Ok(report)
    }
}

impl Disk for NsfFile {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        m().reads.inc();
        let off = Self::page_offset(id);
        let len = self.file.metadata()?.len();
        if off >= len {
            buf.data.fill(0);
        } else if off + PAGE_SIZE as u64 > len {
            // Torn file extension: a crash mid-append left a partial
            // trailing page. Read what exists, zero the rest; the checksum
            // below decides whether the stamped prefix is coherent.
            let avail = (len - off) as usize;
            buf.data.fill(0);
            self.file.read_exact_at(&mut buf.data[..avail], off)?;
        } else {
            self.file.read_exact_at(&mut buf.data[..], off)?;
        }
        buf.id = id;
        let stored = buf.get_u16(PAGE_CHECKSUM_OFFSET);
        if stored != 0 && page_checksum(&buf.data) != stored {
            m().torn_detected.inc();
            return Err(DominoError::Corrupt(format!(
                "torn page {id}: checksum mismatch (restore from a replica)"
            )));
        }
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        m().writes.inc();
        // Stamp the checksum into a copy (the field is excluded from the
        // hash, so the stamp never perturbs its own cover).
        let mut data = buf.data.clone();
        let sum = page_checksum(&data);
        data[PAGE_CHECKSUM_OFFSET..PAGE_CHECKSUM_OFFSET + 2].copy_from_slice(&sum.to_le_bytes());
        self.file.write_at(&data[..], Self::page_offset(id))?;
        Ok(())
    }

    fn write_page_raw(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        m().writes.inc();
        self.file.write_at(&buf.data[..], Self::page_offset(id))?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        m().syncs.inc();
        self.file.sync_data()?;
        Ok(())
    }

    fn set_recovery_lsn(&self, lsn: u64) -> Result<()> {
        let _g = self.sb_lock.lock();
        let mut sb = self.superblock()?;
        sb.recovery_lsn = lsn;
        self.file.write_at(&sb.encode()[..], 0)?;
        self.file.sync_data()?;
        self.recovery_lsn.store(lsn, Ordering::Relaxed);
        Ok(())
    }

    fn recovery_lsn(&self) -> Result<u64> {
        Ok(self.recovery_lsn.load(Ordering::Relaxed))
    }

    fn page_count(&self) -> Result<u32> {
        let len = self.file.metadata()?.len();
        Ok(len.div_ceil(PAGE_SIZE as u64).saturating_sub(1) as u32)
    }
}

impl Drop for NsfFile {
    fn drop(&mut self) {
        if self.delete_on_drop.load(Ordering::Relaxed) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

// ---------------------------------------------------------------------
// CrashDisk: an explicit OS-page-cache model for crash testing
// ---------------------------------------------------------------------

/// How a [`CrashDisk`] crash treats the unsynced write buffer.
#[derive(Debug, Clone, Copy)]
pub enum CrashMode {
    /// Every unsynced page write is lost (power cut with an honest disk).
    DropUnsynced,
    /// A seeded arbitrary subset of unsynced writes reached the platter
    /// before the cut — the observable effect of fsync reordering.
    Reorder { seed: u64 },
    /// Like [`CrashMode::Reorder`], plus one surviving write is torn at a
    /// seeded byte cut: new bytes up to the cut, old bytes after. The
    /// page checksum must catch this on the next read.
    Torn { seed: u64 },
}

/// Buffers every `write_page` in memory until [`Disk::sync`], like the OS
/// page cache under a real file. [`CrashDisk::crash`] then applies none,
/// some, or a torn subset of the buffered writes to the inner device —
/// after which the test reopens the underlying store and asserts recovery.
pub struct CrashDisk<D: Disk> {
    inner: D,
    pending: Mutex<BTreeMap<PageId, Box<[u8; PAGE_SIZE]>>>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<D: Disk> CrashDisk<D> {
    pub fn new(inner: D) -> CrashDisk<D> {
        CrashDisk {
            inner,
            pending: Mutex::new(BTreeMap::new()),
        }
    }

    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unsynced page writes currently buffered.
    pub fn pending_writes(&self) -> usize {
        self.pending.lock().len()
    }

    /// Crash: resolve the unsynced buffer per `mode` and discard it. The
    /// inner device is left as a post-crash platter image.
    pub fn crash(&self, mode: CrashMode) -> Result<()> {
        let mut pending = self.pending.lock();
        match mode {
            CrashMode::DropUnsynced => {}
            CrashMode::Reorder { seed } | CrashMode::Torn { seed } => {
                let mut rng = seed;
                let mut skipped: Vec<(PageId, Box<[u8; PAGE_SIZE]>)> = Vec::new();
                for (id, data) in pending.iter() {
                    if splitmix64(&mut rng) & 1 == 1 {
                        self.inner.write_page(
                            *id,
                            &PageBuf {
                                id: *id,
                                data: data.clone(),
                            },
                        )?;
                    } else {
                        skipped.push((*id, data.clone()));
                    }
                }
                if let (CrashMode::Torn { .. }, Some((id, new))) = (mode, skipped.first()) {
                    // Splice: the write made it part-way into the page. The
                    // on-platter form of the write is the *stamped* image,
                    // so write it fully, read that form back, and put the
                    // old bytes back after a seeded cut.
                    let mut old = PageBuf::zeroed(*id);
                    if self.inner.read_page(*id, &mut old).is_err() {
                        old = PageBuf::zeroed(*id); // already torn: treat as zeroes
                    }
                    self.inner.write_page(
                        *id,
                        &PageBuf {
                            id: *id,
                            data: new.clone(),
                        },
                    )?;
                    let mut torn = PageBuf::zeroed(*id);
                    self.inner.read_page(*id, &mut torn)?;
                    let cut = (splitmix64(&mut rng) as usize % (PAGE_SIZE - 1)) + 1;
                    torn.data[cut..].copy_from_slice(&old.data[cut..]);
                    self.inner.write_page_raw(*id, &torn)?;
                }
            }
        }
        pending.clear();
        Ok(())
    }
}

impl<D: Disk> Disk for CrashDisk<D> {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<()> {
        if let Some(data) = self.pending.lock().get(&id) {
            buf.data.copy_from_slice(&data[..]);
            buf.id = id;
            return Ok(());
        }
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        self.pending.lock().insert(id, buf.data.clone());
        Ok(())
    }

    fn write_page_raw(&self, id: PageId, buf: &PageBuf) -> Result<()> {
        self.inner.write_page_raw(id, buf)
    }

    fn sync(&self) -> Result<()> {
        let mut pending = self.pending.lock();
        for (id, data) in pending.iter() {
            self.inner.write_page(
                *id,
                &PageBuf {
                    id: *id,
                    data: data.clone(),
                },
            )?;
        }
        pending.clear();
        self.inner.sync()
    }

    fn set_recovery_lsn(&self, lsn: u64) -> Result<()> {
        self.inner.set_recovery_lsn(lsn)
    }

    fn recovery_lsn(&self) -> Result<u64> {
        self.inner.recovery_lsn()
    }

    fn page_count(&self) -> Result<u32> {
        let buffered = self
            .pending
            .lock()
            .keys()
            .next_back()
            .map(|id| id + 1)
            .unwrap_or(0);
        Ok(self.inner.page_count()?.max(buffered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("domino-nsf-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("store.nsf")
    }

    #[test]
    fn superblock_roundtrip_and_validation() {
        let sb = SuperBlock {
            version: NSF_VERSION,
            flags: 0,
            page_size: PAGE_SIZE as u32,
            recovery_lsn: 0xDEAD,
        };
        let page = sb.encode();
        assert_eq!(SuperBlock::decode(&page[..]).unwrap(), sb);

        // Any single-byte flip in the meaningful region must be rejected.
        for off in [
            0usize,
            5,
            SB_VERSION,
            SB_PAGE_SIZE,
            SB_RECOVERY_LSN,
            SB_CHECKSUM,
        ] {
            let mut bad = page.clone();
            bad[off] ^= 0x40;
            assert!(SuperBlock::decode(&bad[..]).is_err(), "flip at {off}");
        }
    }

    #[test]
    fn nsf_file_reopen_reads_back_identical_bytes() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut w = PageBuf::zeroed(3);
        w.put_bytes(100, b"page three");
        {
            let disk = NsfFile::open(&path).unwrap();
            disk.write_page(3, &w).unwrap();
            disk.sync().unwrap();
        }
        let disk = NsfFile::open(&path).unwrap();
        let mut r = PageBuf::zeroed(0);
        disk.read_page(3, &mut r).unwrap();
        assert_eq!(r.bytes(100, 10), b"page three");
        // Byte-identical outside the checksum field the device stamps.
        assert_eq!(
            r.bytes(
                PAGE_CHECKSUM_OFFSET + 2,
                PAGE_SIZE - PAGE_CHECKSUM_OFFSET - 2
            ),
            w.bytes(
                PAGE_CHECKSUM_OFFSET + 2,
                PAGE_SIZE - PAGE_CHECKSUM_OFFSET - 2
            )
        );
        assert_eq!(disk.page_count().unwrap(), 4);
        // Never-written pages still read as zeroes.
        disk.read_page(100, &mut r).unwrap();
        assert!(r.data.iter().all(|b| *b == 0));
        disk.set_delete_on_drop(true);
        drop(disk);
        assert!(!path.exists(), "delete_on_drop removed the file");
    }

    #[test]
    fn torn_page_detected_on_read() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let disk = NsfFile::open(&path).unwrap();
        disk.set_delete_on_drop(true);
        let mut w = PageBuf::zeroed(2);
        w.put_bytes(0, &3u64.to_le_bytes()); // fake LSN so the page is non-zero
        w.put_bytes(500, b"whole");
        disk.write_page(2, &w).unwrap();

        // Tear it: splice half of a different image over the stamped page.
        let mut stamped = PageBuf::zeroed(2);
        disk.read_page(2, &mut stamped).unwrap();
        let mut torn = stamped.clone();
        torn.put_bytes(500, b"TORNX");
        torn.put_bytes(0, &9u64.to_le_bytes());
        disk.write_page_raw(2, &torn).unwrap();

        let mut r = PageBuf::zeroed(0);
        let err = disk.read_page(2, &mut r).unwrap_err();
        assert!(matches!(err, DominoError::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn recovery_lsn_persists_in_superblock() {
        let path = temp_path("recovery-lsn");
        let _ = std::fs::remove_file(&path);
        {
            let disk = NsfFile::open(&path).unwrap();
            disk.set_recovery_lsn(777).unwrap();
        }
        let disk = NsfFile::open(&path).unwrap();
        assert_eq!(disk.recovery_lsn().unwrap(), 777);
        assert_eq!(disk.superblock().unwrap().recovery_lsn, 777);
        disk.set_delete_on_drop(true);
    }

    #[test]
    fn open_rejects_corrupted_header() {
        let path = temp_path("badheader");
        let _ = std::fs::remove_file(&path);
        drop(NsfFile::open(&path).unwrap());
        // Flip one superblock byte on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[SB_PAGE_SIZE] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(NsfFile::open(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verify_reports_torn_pages() {
        let path = temp_path("verify");
        let _ = std::fs::remove_file(&path);
        let disk = NsfFile::open(&path).unwrap();
        let mut w = PageBuf::zeroed(0);
        w.put_bytes(32, b"ok");
        for id in 0..4 {
            w.id = id;
            disk.write_page(id, &w).unwrap();
        }
        // Corrupt page 2 behind the checksum's back.
        let mut good = PageBuf::zeroed(2);
        disk.read_page(2, &mut good).unwrap();
        let mut bad = good.clone();
        bad.put_bytes(2000, b"scribble");
        disk.write_page_raw(2, &bad).unwrap();
        disk.sync().unwrap();
        drop(disk);

        let report = NsfFile::verify(&path).unwrap();
        assert_eq!(report.pages, 4);
        assert_eq!(report.stamped, 3);
        assert_eq!(report.torn, vec![2]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn crash_disk_drops_or_applies_unsynced_writes() {
        let inner = crate::disk::MemDisk::new();
        let cache = CrashDisk::new(inner.clone());
        let mut w = PageBuf::zeroed(1);
        w.put_bytes(64, b"buffered");
        cache.write_page(1, &w).unwrap();
        assert_eq!(cache.pending_writes(), 1);

        // Visible through the cache, absent from the platter.
        let mut r = PageBuf::zeroed(0);
        cache.read_page(1, &mut r).unwrap();
        assert_eq!(r.bytes(64, 8), b"buffered");
        inner.read_page(1, &mut r).unwrap();
        assert_eq!(r.bytes(64, 8), &[0u8; 8]);

        cache.crash(CrashMode::DropUnsynced).unwrap();
        assert_eq!(cache.pending_writes(), 0);
        inner.read_page(1, &mut r).unwrap();
        assert_eq!(r.bytes(64, 8), &[0u8; 8]);

        // Synced writes do reach the platter.
        cache.write_page(1, &w).unwrap();
        cache.sync().unwrap();
        inner.read_page(1, &mut r).unwrap();
        assert_eq!(r.bytes(64, 8), b"buffered");
    }

    /// Pins FORMAT.md to the code: every offset, size, and tag the spec
    /// names is asserted here, so a layout change that forgets the spec
    /// (or a spec edit that forgets the code) fails the build's tests.
    #[test]
    fn format_spec_layout_matches_constants() {
        use crate::engine;
        use crate::page::{PageType, PAGE_HEADER};
        use domino_wal::{LogRecord, TxId};

        // FORMAT.md §2 — superblock.
        assert_eq!(NSF_MAGIC, [0x89, b'N', b'S', b'F', 0x0D, 0x0A, 0x1A, 0x0A]);
        assert_eq!(NSF_VERSION, 1);
        assert_eq!(
            (SB_MAGIC, SB_VERSION, SB_FLAGS, SB_PAGE_SIZE),
            (0, 8, 10, 12)
        );
        assert_eq!((SB_RECOVERY_LSN, SB_RESERVED, SB_CHECKSUM), (16, 24, 56));
        assert_eq!(SB_LEN, 64);

        // §1/§3 — geometry and the common page header.
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(PAGE_HEADER, 16);
        assert_eq!(PAGE_CHECKSUM_OFFSET, 14);
        for (t, code) in [
            (PageType::Free, 0u8),
            (PageType::Header, 1),
            (PageType::BTreeInternal, 2),
            (PageType::BTreeLeaf, 3),
            (PageType::Heap, 4),
            (PageType::FreeMap, 5),
        ] {
            assert_eq!(t.code(), code);
        }

        // §4 — the engine catalog page.
        assert_eq!(engine::MAGIC, 0x444E_5346);
        assert_eq!(engine::MAGIC.to_le_bytes(), *b"FSND");
        assert_eq!(engine::VERSION, 1);
        assert_eq!(
            (
                engine::OFF_MAGIC,
                engine::OFF_VERSION,
                engine::OFF_NEXT_PAGE
            ),
            (16, 20, 22)
        );
        assert_eq!((engine::OFF_FREE_MAP, engine::OFF_FREE_COUNT), (26, 30));
        assert_eq!(
            (
                engine::OFF_USER_SLOTS,
                engine::OFF_TREE_ROOTS,
                engine::OFF_HEAP_AVAIL
            ),
            (34, 98, 130)
        );
        assert_eq!(engine::USER_SLOTS, 8);
        assert_eq!(engine::TREE_ROOT_SLOTS, 8);

        // §5 — one free-map page covers 32640 pages.
        assert_eq!(engine::BITS_PER_MAP, 32640);

        // §6.1 — largest single-chunk payload.
        assert_eq!(crate::heap::MAX_CHUNK, 4065);

        // §9 — log record framing: [len:u32][checksum:u32][tag:u8][payload].
        let bytes = LogRecord::Commit { tx: TxId(7) }.encode();
        assert_eq!(bytes.len(), 8 + 1 + 8);
        let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        assert_eq!(len as usize, bytes.len() - 8, "len covers tag+payload");
        assert_eq!(bytes[8], 4, "Commit tag");
        assert_eq!(u64::from_le_bytes(bytes[9..17].try_into().unwrap()), 7);
        for (rec, tag) in [
            (LogRecord::Begin { tx: TxId(1) }, 1u8),
            (LogRecord::Commit { tx: TxId(1) }, 4),
            (LogRecord::Abort { tx: TxId(1) }, 5),
            (
                LogRecord::Checkpoint {
                    active: vec![],
                    dirty: vec![],
                },
                6,
            ),
        ] {
            assert_eq!(rec.encode()[8], tag);
        }
    }

    #[test]
    fn crash_disk_torn_mode_produces_detectable_tear() {
        let path = temp_path("crash-torn");
        let _ = std::fs::remove_file(&path);
        let file = NsfFile::open(&path).unwrap();
        file.set_delete_on_drop(true);
        let cache = CrashDisk::new(file);
        let mut old = PageBuf::zeroed(5);
        old.put_bytes(300, &[0xAA; 1000]);
        let mut new = PageBuf::zeroed(5);
        new.put_bytes(300, &[0x55; 1000]);
        new.put_bytes(2000, &[0x77; 1000]);
        let mut torn_somewhere = false;
        for seed in 0..32u64 {
            // Re-establish the synced base image each round (a crash may
            // have let the new image through fully, which would make any
            // later tear invisible — old and new would be identical).
            cache.write_page(5, &old).unwrap();
            cache.sync().unwrap();
            cache.write_page(5, &new).unwrap();
            cache.crash(CrashMode::Torn { seed }).unwrap();
            let mut r = PageBuf::zeroed(0);
            if cache.inner().read_page(5, &mut r).is_err() {
                torn_somewhere = true;
                break;
            }
        }
        assert!(
            torn_somewhere,
            "32 seeds never produced a checksum-detectable tear"
        );
    }
}
