//! Slotted record pages with overflow chaining.
//!
//! Variable-length note records (summary buckets and non-summary bodies)
//! live in heap pages. A record larger than one page is chained across
//! chunks. Pages with free room hang off a free-space chain rooted in the
//! store header (`Engine::heap_avail`), so inserts find space without
//! scanning the file.
//!
//! Page layout after the 16-byte header (header link = free-space chain,
//! header flag bit 0 = "on the chain"):
//!
//! ```text
//! @16 slot_count:u16
//! @18 free_ptr:u16        start of the record data region (grows down)
//! @20 slots: slot_count × (offset:u16, len:u16)   (grows up)
//! ```
//!
//! A slot with `offset == 0` is a tombstone and may be reused. Deleted
//! record bytes are reclaimed lazily: when an insert needs room that exists
//! only as tombstone space, the page is compacted in place.

use crate::engine::{Engine, Tx};
use crate::page::{PageBuf, PageId, PageType, PAGE_HEADER, PAGE_SIZE};
use domino_types::{DominoError, Result};

const OFF_SLOT_COUNT: usize = PAGE_HEADER; // u16
const OFF_FREE_PTR: usize = PAGE_HEADER + 2; // u16
const SLOTS_START: usize = PAGE_HEADER + 4;
const SLOT_SIZE: usize = 4;
const FLAG_ON_CHAIN: u8 = 1;

/// Per-chunk header: flags(1) + next_page(4) + next_slot(2).
const CHUNK_HEADER: usize = 7;
const CHUNK_HAS_NEXT: u8 = 1;

/// Largest payload stored in one chunk.
pub const MAX_CHUNK: usize = PAGE_SIZE - SLOTS_START - SLOT_SIZE - CHUNK_HEADER;

/// Pages are dropped from the free-space chain once contiguous room falls
/// below this, and re-added by deletes that free at least this much.
const MIN_USEFUL: usize = 128;

/// How many chain pages an insert probes before extending the file.
const CHAIN_PROBES: usize = 8;

/// Location of a record (its first chunk).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordPtr {
    pub page: PageId,
    pub slot: u16,
}

impl RecordPtr {
    /// Pack into a u64 for storage as a B-tree value.
    pub fn to_u64(self) -> u64 {
        ((self.page as u64) << 16) | self.slot as u64
    }

    pub fn from_u64(v: u64) -> RecordPtr {
        RecordPtr {
            page: (v >> 16) as u32,
            slot: (v & 0xFFFF) as u16,
        }
    }
}

/// The record heap. Stateless: all state lives in pages + the store header.
#[derive(Debug, Clone, Copy, Default)]
pub struct Heap;

impl Heap {
    /// Store `data`, returning its pointer.
    pub fn insert(&self, engine: &mut Engine, tx: &mut Tx, data: &[u8]) -> Result<RecordPtr> {
        // Write chunks back-to-front so each knows its successor.
        let mut chunks: Vec<&[u8]> = data.chunks(MAX_CHUNK).collect();
        if chunks.is_empty() {
            chunks.push(&[]);
        }
        let mut next: Option<RecordPtr> = None;
        for chunk in chunks.iter().rev() {
            let mut bytes = Vec::with_capacity(CHUNK_HEADER + chunk.len());
            match next {
                Some(ptr) => {
                    bytes.push(CHUNK_HAS_NEXT);
                    bytes.extend_from_slice(&ptr.page.to_le_bytes());
                    bytes.extend_from_slice(&ptr.slot.to_le_bytes());
                }
                None => {
                    bytes.push(0);
                    bytes.extend_from_slice(&[0u8; 6]);
                }
            }
            bytes.extend_from_slice(chunk);
            next = Some(self.insert_raw(engine, tx, &bytes)?);
        }
        Ok(next.expect("at least one chunk"))
    }

    /// Read a whole record. Chunks are copied straight out of the buffer
    /// pool (`Engine::with_page`), never cloning whole pages.
    pub fn read(&self, engine: &mut Engine, ptr: RecordPtr) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        let mut cur = Some(ptr);
        while let Some(ptr) = cur {
            cur = engine.with_page(ptr.page, |page| -> Result<Option<RecordPtr>> {
                if page.page_type() != PageType::Heap {
                    return Err(DominoError::Corrupt(format!(
                        "record pointer into non-heap page {}",
                        ptr.page
                    )));
                }
                let (off, len) = slot(page, ptr.slot)?;
                let raw = page.bytes(off, len);
                if raw.len() < CHUNK_HEADER {
                    return Err(DominoError::Corrupt("short heap chunk".into()));
                }
                out.extend_from_slice(&raw[CHUNK_HEADER..]);
                Ok(chunk_next(raw))
            })??;
        }
        Ok(out)
    }

    /// Number of pages a record's chunks touch (experiment accounting for
    /// summary-vs-full reads).
    pub fn pages_of(&self, engine: &mut Engine, ptr: RecordPtr) -> Result<Vec<PageId>> {
        let mut pages = Vec::new();
        let mut cur = Some(ptr);
        while let Some(ptr) = cur {
            pages.push(ptr.page);
            cur = engine.with_page(ptr.page, |page| -> Result<Option<RecordPtr>> {
                let (off, len) = slot(page, ptr.slot)?;
                Ok(chunk_next(page.bytes(off, len)))
            })??;
        }
        Ok(pages)
    }

    /// Delete a record (all its chunks become tombstones).
    pub fn delete(&self, engine: &mut Engine, tx: &mut Tx, ptr: RecordPtr) -> Result<()> {
        let mut cur = Some(ptr);
        while let Some(ptr) = cur {
            cur = engine.with_page(ptr.page, |page| -> Result<Option<RecordPtr>> {
                let (off, len) = slot(page, ptr.slot)?;
                Ok(chunk_next(page.bytes(off, len)))
            })??;
            // Tombstone the slot.
            let slot_off = SLOTS_START + ptr.slot as usize * SLOT_SIZE;
            engine.write(tx, ptr.page, slot_off as u16, &[0u8; 4])?;
            // A page with reclaimable room goes back on the chain.
            let (chained, free) = engine.with_page(ptr.page, |p| (on_chain(p), total_free(p)))?;
            if !chained && free >= MIN_USEFUL {
                self.push_chain(engine, tx, ptr.page)?;
            }
        }
        Ok(())
    }

    /// Replace a record; the pointer may move.
    pub fn update(
        &self,
        engine: &mut Engine,
        tx: &mut Tx,
        ptr: RecordPtr,
        data: &[u8],
    ) -> Result<RecordPtr> {
        self.delete(engine, tx, ptr)?;
        self.insert(engine, tx, data)
    }

    // ------------------------------------------------------------------

    /// Store one pre-encoded chunk, finding or making a page with room.
    fn insert_raw(&self, engine: &mut Engine, tx: &mut Tx, bytes: &[u8]) -> Result<RecordPtr> {
        let need = bytes.len() + SLOT_SIZE;
        // Probe the free-space chain.
        let mut prev: Option<PageId> = None;
        let mut cur = engine.heap_avail()?;
        let mut probes = 0;
        while cur != 0 && probes < CHAIN_PROBES {
            let (total, contiguous, link) =
                engine.with_page(cur, |p| (total_free(p), contiguous_free(p), p.link()))?;
            if total >= need {
                if contiguous < need {
                    self.compact_page(engine, tx, cur)?;
                }
                let ptr = self.place(engine, tx, cur, bytes)?;
                // Drop exhausted pages from the chain.
                if engine.with_page(cur, total_free)? < MIN_USEFUL {
                    self.unlink_chain(engine, tx, prev, cur)?;
                }
                return Ok(ptr);
            }
            prev = Some(cur);
            cur = link;
            probes += 1;
        }
        // No room in the probed chain: extend the file.
        let id = engine.alloc_page(tx, PageType::Heap)?;
        let mut init = [0u8; 4];
        init[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        engine.write(tx, id, OFF_SLOT_COUNT as u16, &init)?;
        self.push_chain(engine, tx, id)?;
        self.place(engine, tx, id, bytes)
    }

    /// Put a chunk on a page known to have contiguous room.
    fn place(
        &self,
        engine: &mut Engine,
        tx: &mut Tx,
        id: PageId,
        bytes: &[u8],
    ) -> Result<RecordPtr> {
        let (n, free_ptr, slot_idx) = engine.with_page(id, |page| {
            let n = page.get_u16(OFF_SLOT_COUNT) as usize;
            let free_ptr = page.get_u16(OFF_FREE_PTR) as usize;
            // Reuse a tombstone slot if one exists.
            let mut slot_idx = None;
            for i in 0..n {
                if page.get_u16(SLOTS_START + i * SLOT_SIZE) == 0 {
                    slot_idx = Some(i);
                    break;
                }
            }
            (n, free_ptr, slot_idx)
        })?;
        let new_off = free_ptr - bytes.len();

        let (idx, grew) = match slot_idx {
            Some(i) => (i, false),
            None => (n, true),
        };
        debug_assert!(
            new_off >= SLOTS_START + (n + if grew { 1 } else { 0 }) * SLOT_SIZE,
            "place() on a page without room"
        );

        engine.write(tx, id, new_off as u16, bytes)?;
        let mut slot_bytes = [0u8; 4];
        slot_bytes[0..2].copy_from_slice(&(new_off as u16).to_le_bytes());
        slot_bytes[2..4].copy_from_slice(&(bytes.len() as u16).to_le_bytes());
        engine.write(tx, id, (SLOTS_START + idx * SLOT_SIZE) as u16, &slot_bytes)?;
        if grew {
            engine.write(
                tx,
                id,
                OFF_SLOT_COUNT as u16,
                &((n + 1) as u16).to_le_bytes(),
            )?;
        }
        engine.write(tx, id, OFF_FREE_PTR as u16, &(new_off as u16).to_le_bytes())?;
        Ok(RecordPtr {
            page: id,
            slot: idx as u16,
        })
    }

    /// Rewrite the data region dropping tombstoned bytes.
    fn compact_page(&self, engine: &mut Engine, tx: &mut Tx, id: PageId) -> Result<()> {
        // Gather live records.
        let (n, live) = engine.with_page(id, |page| {
            let n = page.get_u16(OFF_SLOT_COUNT) as usize;
            let mut live: Vec<(usize, Vec<u8>)> = Vec::new();
            for i in 0..n {
                let off = page.get_u16(SLOTS_START + i * SLOT_SIZE) as usize;
                let len = page.get_u16(SLOTS_START + i * SLOT_SIZE + 2) as usize;
                if off != 0 {
                    live.push((i, page.bytes(off, len).to_vec()));
                }
            }
            (n, live)
        })?;
        // Rebuild from the top down.
        let mut cursor = PAGE_SIZE;
        let mut data_start = PAGE_SIZE;
        let mut region = vec![0u8; 0];
        let mut new_slots = vec![[0u8; 4]; n];
        for (i, bytes) in &live {
            cursor -= bytes.len();
            data_start = cursor;
            new_slots[*i][0..2].copy_from_slice(&(cursor as u16).to_le_bytes());
            new_slots[*i][2..4].copy_from_slice(&(bytes.len() as u16).to_le_bytes());
        }
        // Build the contiguous data image in slot order of placement.
        let mut at = PAGE_SIZE;
        let mut placed: Vec<(usize, &Vec<u8>)> = live.iter().map(|(i, b)| (*i, b)).collect();
        region.resize(PAGE_SIZE - data_start, 0);
        for (_, bytes) in placed.iter_mut() {
            at -= bytes.len();
            region[at - data_start..at - data_start + bytes.len()].copy_from_slice(bytes);
        }
        if !region.is_empty() {
            engine.write(tx, id, data_start as u16, &region)?;
        }
        let mut slot_region = Vec::with_capacity(n * SLOT_SIZE);
        for s in &new_slots {
            slot_region.extend_from_slice(s);
        }
        if !slot_region.is_empty() {
            engine.write(tx, id, SLOTS_START as u16, &slot_region)?;
        }
        engine.write(
            tx,
            id,
            OFF_FREE_PTR as u16,
            &(data_start as u16).to_le_bytes(),
        )?;
        Ok(())
    }

    fn push_chain(&self, engine: &mut Engine, tx: &mut Tx, id: PageId) -> Result<()> {
        let head = engine.heap_avail()?;
        engine.write(tx, id, 10, &head.to_le_bytes())?;
        engine.write(tx, id, 9, &[FLAG_ON_CHAIN])?;
        engine.set_heap_avail(tx, id)
    }

    fn unlink_chain(
        &self,
        engine: &mut Engine,
        tx: &mut Tx,
        prev: Option<PageId>,
        id: PageId,
    ) -> Result<()> {
        let next = engine.with_page(id, |p| p.link())?;
        match prev {
            Some(p) => engine.write(tx, p, 10, &next.to_le_bytes())?,
            None => engine.set_heap_avail(tx, next)?,
        }
        engine.write(tx, id, 9, &[0u8])?;
        engine.write(tx, id, 10, &0u32.to_le_bytes())?;
        Ok(())
    }
}

fn on_chain(page: &PageBuf) -> bool {
    page.data[9] & FLAG_ON_CHAIN != 0
}

/// Contiguous bytes between the slot array and the data region.
fn contiguous_free(page: &PageBuf) -> usize {
    let n = page.get_u16(OFF_SLOT_COUNT) as usize;
    let free_ptr = page.get_u16(OFF_FREE_PTR) as usize;
    free_ptr.saturating_sub(SLOTS_START + n * SLOT_SIZE)
}

/// Payload bytes available after compaction. Conservative: the whole slot
/// array (including tombstoned slots, which compaction does not shrink) is
/// charged, so a successful check guarantees `place()` succeeds.
fn total_free(page: &PageBuf) -> usize {
    let n = page.get_u16(OFF_SLOT_COUNT) as usize;
    let mut live = 0usize;
    for i in 0..n {
        let off = page.get_u16(SLOTS_START + i * SLOT_SIZE) as usize;
        let len = page.get_u16(SLOTS_START + i * SLOT_SIZE + 2) as usize;
        if off != 0 {
            live += len;
        }
    }
    PAGE_SIZE
        .saturating_sub(SLOTS_START)
        .saturating_sub(live)
        .saturating_sub(n * SLOT_SIZE)
}

fn slot(page: &PageBuf, idx: u16) -> Result<(usize, usize)> {
    let n = page.get_u16(OFF_SLOT_COUNT);
    if idx >= n {
        return Err(DominoError::NotFound(format!(
            "slot {idx} out of range (page has {n})"
        )));
    }
    let off = page.get_u16(SLOTS_START + idx as usize * SLOT_SIZE) as usize;
    let len = page.get_u16(SLOTS_START + idx as usize * SLOT_SIZE + 2) as usize;
    if off == 0 {
        return Err(DominoError::NotFound(format!("slot {idx} is deleted")));
    }
    if off + len > PAGE_SIZE {
        return Err(DominoError::Corrupt("slot runs past page end".into()));
    }
    Ok((off, len))
}

fn chunk_next(raw: &[u8]) -> Option<RecordPtr> {
    if raw[0] & CHUNK_HAS_NEXT == 0 {
        return None;
    }
    let page = u32::from_le_bytes(raw[1..5].try_into().expect("4"));
    let slot = u16::from_le_bytes(raw[5..7].try_into().expect("2"));
    Some(RecordPtr { page, slot })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::engine::EngineConfig;
    use domino_wal::MemLogStore;

    fn engine() -> Engine {
        Engine::open(
            Box::new(MemDisk::new()),
            Some(Box::new(MemLogStore::new())),
            EngineConfig::default(),
        )
        .unwrap()
    }

    fn payload(i: usize, len: usize) -> Vec<u8> {
        (0..len).map(|j| ((i * 31 + j) % 251) as u8).collect()
    }

    #[test]
    fn insert_read_roundtrip_small() {
        let mut e = engine();
        let mut tx = e.begin().unwrap();
        let h = Heap;
        let ptr = h.insert(&mut e, &mut tx, b"hello heap").unwrap();
        e.commit(tx).unwrap();
        assert_eq!(h.read(&mut e, ptr).unwrap(), b"hello heap");
    }

    #[test]
    fn empty_record_ok() {
        let mut e = engine();
        let mut tx = e.begin().unwrap();
        let h = Heap;
        let ptr = h.insert(&mut e, &mut tx, b"").unwrap();
        e.commit(tx).unwrap();
        assert_eq!(h.read(&mut e, ptr).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn large_record_chains_across_pages() {
        let mut e = engine();
        let mut tx = e.begin().unwrap();
        let h = Heap;
        let data = payload(1, 20_000); // ~5 chunks
        let ptr = h.insert(&mut e, &mut tx, &data).unwrap();
        e.commit(tx).unwrap();
        assert_eq!(h.read(&mut e, ptr).unwrap(), data);
        assert!(h.pages_of(&mut e, ptr).unwrap().len() >= 5);
    }

    #[test]
    fn many_records_and_deletes_reuse_space() {
        let mut e = engine();
        let h = Heap;
        let mut tx = e.begin().unwrap();
        let mut ptrs = Vec::new();
        for i in 0..200 {
            ptrs.push((
                i,
                h.insert(&mut e, &mut tx, &payload(i, 100 + i % 300))
                    .unwrap(),
            ));
        }
        // Delete every other record.
        for (i, ptr) in &ptrs {
            if i % 2 == 0 {
                h.delete(&mut e, &mut tx, *ptr).unwrap();
            }
        }
        let pages_before = e.stats().pages_allocated;
        // Insert replacements; they should mostly reuse freed space.
        let mut new_ptrs = Vec::new();
        for i in 200..300 {
            new_ptrs.push((i, h.insert(&mut e, &mut tx, &payload(i, 120)).unwrap()));
        }
        let pages_after = e.stats().pages_allocated;
        assert!(
            pages_after - pages_before <= 2,
            "expected space reuse, allocated {} new pages",
            pages_after - pages_before
        );
        e.commit(tx).unwrap();
        // All survivors readable.
        for (i, ptr) in &ptrs {
            if i % 2 == 1 {
                assert_eq!(h.read(&mut e, *ptr).unwrap(), payload(*i, 100 + i % 300));
            }
        }
        for (i, ptr) in &new_ptrs {
            assert_eq!(h.read(&mut e, *ptr).unwrap(), payload(*i, 120));
        }
    }

    #[test]
    fn deleted_records_unreadable() {
        let mut e = engine();
        let h = Heap;
        let mut tx = e.begin().unwrap();
        let ptr = h.insert(&mut e, &mut tx, b"gone").unwrap();
        h.delete(&mut e, &mut tx, ptr).unwrap();
        e.commit(tx).unwrap();
        assert!(h.read(&mut e, ptr).is_err());
    }

    #[test]
    fn update_moves_and_preserves_content() {
        let mut e = engine();
        let h = Heap;
        let mut tx = e.begin().unwrap();
        let ptr = h.insert(&mut e, &mut tx, &payload(1, 50)).unwrap();
        let new = payload(2, 6000);
        let ptr2 = h.update(&mut e, &mut tx, ptr, &new).unwrap();
        e.commit(tx).unwrap();
        assert_eq!(h.read(&mut e, ptr2).unwrap(), new);
    }

    #[test]
    fn compaction_recovers_fragmented_space() {
        let mut e = engine();
        let h = Heap;
        let mut tx = e.begin().unwrap();
        // Fill one page with small records.
        let mut ptrs = Vec::new();
        for i in 0..30 {
            ptrs.push(h.insert(&mut e, &mut tx, &payload(i, 100)).unwrap());
        }
        let first_page = ptrs[0].page;
        // Free alternating records on the first page.
        for (i, ptr) in ptrs.iter().enumerate() {
            if ptr.page == first_page && i % 2 == 0 {
                h.delete(&mut e, &mut tx, *ptr).unwrap();
            }
        }
        // A record bigger than any single hole but smaller than the sum.
        let big = payload(99, 900);
        let ptr = h.insert(&mut e, &mut tx, &big).unwrap();
        e.commit(tx).unwrap();
        assert_eq!(h.read(&mut e, ptr).unwrap(), big);
        // Survivors intact after compaction.
        for (i, p) in ptrs.iter().enumerate() {
            if !(p.page == first_page && i % 2 == 0) {
                assert_eq!(h.read(&mut e, *p).unwrap(), payload(i, 100));
            }
        }
    }

    #[test]
    fn record_ptr_packs() {
        let p = RecordPtr {
            page: 0xABCDEF,
            slot: 0x1234,
        };
        assert_eq!(RecordPtr::from_u64(p.to_u64()), p);
    }

    #[test]
    fn survives_crash_recovery() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let h = Heap;
        let (committed, uncommitted) = {
            let mut e = Engine::open(
                Box::new(disk.clone()),
                Some(Box::new(log.clone())),
                EngineConfig::default(),
            )
            .unwrap();
            let mut tx = e.begin().unwrap();
            let a = h.insert(&mut e, &mut tx, &payload(1, 5000)).unwrap();
            e.commit(tx).unwrap();
            let mut tx2 = e.begin().unwrap();
            let b = h.insert(&mut e, &mut tx2, &payload(2, 100)).unwrap();
            e.wal().unwrap().flush_all().unwrap();
            e.crash();
            log.crash();
            (a, b)
        };
        let mut e =
            Engine::open(Box::new(disk), Some(Box::new(log)), EngineConfig::default()).unwrap();
        assert_eq!(h.read(&mut e, committed).unwrap(), payload(1, 5000));
        assert!(h.read(&mut e, uncommitted).is_err());
    }
}
