//! The NSF-style page store.
//!
//! A Notes database is a single file of fixed-size pages holding notes,
//! their items, and the indexes that find them. This crate rebuilds that
//! substrate with a modern database architecture (the byte layout is our
//! own; see DESIGN.md §2 for why that preserves the paper's semantics):
//!
//! * [`disk`] — the page device trait and the crash-simulating in-memory
//!   disk,
//! * [`mod@file`] — the real device: a single NSF file with a checksummed
//!   superblock, positioned I/O, per-page torn-write detection, and the
//!   `CrashDisk` OS-cache model for crash tests (byte layout: FORMAT.md),
//! * [`page`] — 4 KiB pages with an LSN-stamped header,
//! * [`engine`] — the transactional pager: buffer pool with WAL-coupled
//!   logged writes, steal/no-force eviction, fuzzy checkpoints, and restart
//!   recovery via `domino-wal`,
//! * [`btree`] — disk-resident B⁺-trees with fixed-width `u128` keys and
//!   `u64` values (note-id and UNID indexes),
//! * [`heap`] — slotted record pages with overflow chaining for
//!   variable-length note records,
//! * [`nsf`] — [`NoteStore`], the assembled NSF file: note-id allocation,
//!   summary and non-summary record segments, and the UNID index.
//!
//! Concurrency model: one writer at a time (enforced by the owning
//! `domino_core::Database`); physical before/after-image logging therefore
//! gives correct transaction rollback and ARIES restart semantics.

pub mod btree;
pub mod disk;
pub mod engine;
pub mod file;
pub mod heap;
pub mod nsf;
pub mod page;
pub mod pool;

pub use btree::BTree;
pub use disk::{Disk, FaultDisk, MemDisk};
pub use engine::{CommitMode, Engine, EngineConfig, EngineStats, Tx};
pub use file::{CrashDisk, CrashMode, NsfFile, SuperBlock, VerifyReport};
pub use heap::{Heap, RecordPtr};
pub use nsf::{NoteStore, Segment};
pub use page::{PageBuf, PageId, PageType, PAGE_SIZE};
pub use pool::BufferPool;
