//! [`NoteStore`]: the assembled NSF file.
//!
//! Each note is stored as up to two heap records: a *summary* segment (the
//! items views and selection formulas read) and a *body* segment
//! (non-summary items — rich text, attachments). Keeping them separate is
//! what makes summary access cheap: a view refresh touches only summary
//! pages.
//!
//! Indexes:
//! * record index (tree slot 0): `(note_id << 1) | segment → RecordPtr`
//! * UNID index (tree slot 1): `unid → note_id`
//!
//! Header slots: 0 = replica id, 1 = next note id, 2 = database-info bits
//! reserved for `domino-core`.

use crate::btree::BTree;
use crate::engine::{Engine, Tx};
use crate::heap::{Heap, RecordPtr};
use domino_types::{NoteId, ReplicaId, Result, Unid};

const TREE_RECORDS: usize = 0;
const TREE_UNIDS: usize = 1;
const SLOT_REPLICA_ID: usize = 0;
const SLOT_NEXT_NOTE: usize = 1;

/// Which half of a note a record holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Segment {
    /// Summary items: small, view-visible.
    Summary,
    /// Non-summary items: bodies, attachments.
    Body,
}

impl Segment {
    fn bit(self) -> u128 {
        match self {
            Segment::Summary => 0,
            Segment::Body => 1,
        }
    }
}

fn record_key(id: NoteId, seg: Segment) -> u128 {
    ((id.0 as u128) << 1) | seg.bit()
}

/// The note-record layer over engine + heap + B-trees.
#[derive(Debug, Clone, Copy)]
pub struct NoteStore {
    records: BTree,
    unids: BTree,
    heap: Heap,
}

impl NoteStore {
    /// Open (creating indexes on first use). `replica` seeds the stored
    /// replica id if the store is fresh.
    pub fn open(engine: &mut Engine, tx: &mut Tx, replica: ReplicaId) -> Result<NoteStore> {
        let records = BTree::open(engine, tx, TREE_RECORDS)?;
        let unids = BTree::open(engine, tx, TREE_UNIDS)?;
        if engine.user_slot(SLOT_REPLICA_ID)? == 0 {
            engine.set_user_slot(tx, SLOT_REPLICA_ID, replica.0)?;
            engine.set_user_slot(tx, SLOT_NEXT_NOTE, 1)?;
        }
        Ok(NoteStore {
            records,
            unids,
            heap: Heap,
        })
    }

    /// The id this replica was created with (stable across reopen).
    pub fn replica_id(&self, engine: &mut Engine) -> Result<ReplicaId> {
        Ok(ReplicaId(engine.user_slot(SLOT_REPLICA_ID)?))
    }

    /// Hand out the next note id.
    pub fn alloc_note_id(&self, engine: &mut Engine, tx: &mut Tx) -> Result<NoteId> {
        let next = engine.user_slot(SLOT_NEXT_NOTE)?.max(1);
        engine.set_user_slot(tx, SLOT_NEXT_NOTE, next + 1)?;
        Ok(NoteId(next as u32))
    }

    /// Write (insert or replace) one segment of a note.
    pub fn put(
        &self,
        engine: &mut Engine,
        tx: &mut Tx,
        id: NoteId,
        seg: Segment,
        bytes: &[u8],
    ) -> Result<()> {
        let key = record_key(id, seg);
        let ptr = match self.records.get(engine, key)? {
            Some(old) => self
                .heap
                .update(engine, tx, RecordPtr::from_u64(old), bytes)?,
            None => self.heap.insert(engine, tx, bytes)?,
        };
        self.records.insert(engine, tx, key, ptr.to_u64())?;
        Ok(())
    }

    /// Read one segment of a note.
    pub fn get(&self, engine: &mut Engine, id: NoteId, seg: Segment) -> Result<Option<Vec<u8>>> {
        match self.records.get(engine, record_key(id, seg))? {
            Some(v) => Ok(Some(self.heap.read(engine, RecordPtr::from_u64(v))?)),
            None => Ok(None),
        }
    }

    /// Delete one segment if present.
    pub fn remove_segment(
        &self,
        engine: &mut Engine,
        tx: &mut Tx,
        id: NoteId,
        seg: Segment,
    ) -> Result<bool> {
        let key = record_key(id, seg);
        match self.records.delete(engine, tx, key)? {
            Some(v) => {
                self.heap.delete(engine, tx, RecordPtr::from_u64(v))?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Delete both segments of a note. Returns whether anything existed.
    pub fn remove(&self, engine: &mut Engine, tx: &mut Tx, id: NoteId) -> Result<bool> {
        let a = self.remove_segment(engine, tx, id, Segment::Summary)?;
        let b = self.remove_segment(engine, tx, id, Segment::Body)?;
        Ok(a || b)
    }

    /// Does the note exist (has a summary segment)?
    pub fn exists(&self, engine: &mut Engine, id: NoteId) -> Result<bool> {
        self.has_segment(engine, id, Segment::Summary)
    }

    /// Does the note store this segment? A record-index probe only — no
    /// heap pages are read, which is what keeps summary-only database
    /// open cheap even for body-heavy notes.
    pub fn has_segment(&self, engine: &mut Engine, id: NoteId, seg: Segment) -> Result<bool> {
        Ok(self.records.get(engine, record_key(id, seg))?.is_some())
    }

    /// Number of distinct pages reading this segment would touch.
    pub fn pages_touched(&self, engine: &mut Engine, id: NoteId, seg: Segment) -> Result<usize> {
        match self.records.get(engine, record_key(id, seg))? {
            Some(v) => Ok(self.heap.pages_of(engine, RecordPtr::from_u64(v))?.len()),
            None => Ok(0),
        }
    }

    // ------------------------------------------------------------------
    // UNID index
    // ------------------------------------------------------------------

    pub fn bind_unid(
        &self,
        engine: &mut Engine,
        tx: &mut Tx,
        unid: Unid,
        id: NoteId,
    ) -> Result<()> {
        self.unids.insert(engine, tx, unid.0, id.0 as u64)?;
        Ok(())
    }

    pub fn unbind_unid(&self, engine: &mut Engine, tx: &mut Tx, unid: Unid) -> Result<()> {
        self.unids.delete(engine, tx, unid.0)?;
        Ok(())
    }

    pub fn lookup_unid(&self, engine: &mut Engine, unid: Unid) -> Result<Option<NoteId>> {
        Ok(self.unids.get(engine, unid.0)?.map(|v| NoteId(v as u32)))
    }

    /// Visit every note id with a summary segment, ascending.
    pub fn for_each_note(
        &self,
        engine: &mut Engine,
        mut f: impl FnMut(NoteId) -> bool,
    ) -> Result<()> {
        self.records.scan(engine, 0, u128::MAX, |k, _| {
            if k & 1 == 0 {
                f(NoteId((k >> 1) as u32))
            } else {
                true
            }
        })
    }

    /// Count of notes (summary segments).
    pub fn note_count(&self, engine: &mut Engine) -> Result<u64> {
        let mut n = 0;
        self.for_each_note(engine, |_| {
            n += 1;
            true
        })?;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::engine::EngineConfig;
    use domino_types::Timestamp;
    use domino_wal::MemLogStore;

    fn open_store() -> (Engine, NoteStore) {
        let mut e = Engine::open(
            Box::new(MemDisk::new()),
            Some(Box::new(MemLogStore::new())),
            EngineConfig::default(),
        )
        .unwrap();
        let mut tx = e.begin().unwrap();
        let s = NoteStore::open(&mut e, &mut tx, ReplicaId(42)).unwrap();
        e.commit(tx).unwrap();
        (e, s)
    }

    #[test]
    fn replica_id_stored() {
        let (mut e, s) = open_store();
        assert_eq!(s.replica_id(&mut e).unwrap(), ReplicaId(42));
    }

    #[test]
    fn note_ids_increase() {
        let (mut e, s) = open_store();
        let mut tx = e.begin().unwrap();
        let a = s.alloc_note_id(&mut e, &mut tx).unwrap();
        let b = s.alloc_note_id(&mut e, &mut tx).unwrap();
        e.commit(tx).unwrap();
        assert!(b > a);
        assert!(!a.is_none());
    }

    #[test]
    fn put_get_segments_independent() {
        let (mut e, s) = open_store();
        let mut tx = e.begin().unwrap();
        let id = s.alloc_note_id(&mut e, &mut tx).unwrap();
        s.put(&mut e, &mut tx, id, Segment::Summary, b"summary bytes")
            .unwrap();
        s.put(&mut e, &mut tx, id, Segment::Body, &vec![7u8; 9000])
            .unwrap();
        e.commit(tx).unwrap();

        assert_eq!(
            s.get(&mut e, id, Segment::Summary).unwrap().unwrap(),
            b"summary bytes"
        );
        assert_eq!(
            s.get(&mut e, id, Segment::Body).unwrap().unwrap(),
            vec![7u8; 9000]
        );
        // A big body spans pages; the summary fits in one.
        assert_eq!(s.pages_touched(&mut e, id, Segment::Summary).unwrap(), 1);
        assert!(s.pages_touched(&mut e, id, Segment::Body).unwrap() >= 3);
    }

    #[test]
    fn replace_segment() {
        let (mut e, s) = open_store();
        let mut tx = e.begin().unwrap();
        let id = s.alloc_note_id(&mut e, &mut tx).unwrap();
        s.put(&mut e, &mut tx, id, Segment::Summary, b"v1").unwrap();
        s.put(&mut e, &mut tx, id, Segment::Summary, b"version two")
            .unwrap();
        e.commit(tx).unwrap();
        assert_eq!(
            s.get(&mut e, id, Segment::Summary).unwrap().unwrap(),
            b"version two"
        );
    }

    #[test]
    fn remove_note() {
        let (mut e, s) = open_store();
        let mut tx = e.begin().unwrap();
        let id = s.alloc_note_id(&mut e, &mut tx).unwrap();
        s.put(&mut e, &mut tx, id, Segment::Summary, b"x").unwrap();
        assert!(s.exists(&mut e, id).unwrap());
        assert!(s.remove(&mut e, &mut tx, id).unwrap());
        assert!(!s.exists(&mut e, id).unwrap());
        assert!(!s.remove(&mut e, &mut tx, id).unwrap());
        e.commit(tx).unwrap();
        assert_eq!(s.get(&mut e, id, Segment::Summary).unwrap(), None);
    }

    #[test]
    fn unid_index() {
        let (mut e, s) = open_store();
        let mut tx = e.begin().unwrap();
        let id = s.alloc_note_id(&mut e, &mut tx).unwrap();
        let unid = Unid::generate(ReplicaId(42), Timestamp(5), 0);
        s.bind_unid(&mut e, &mut tx, unid, id).unwrap();
        e.commit(tx).unwrap();
        assert_eq!(s.lookup_unid(&mut e, unid).unwrap(), Some(id));
        let mut tx = e.begin().unwrap();
        s.unbind_unid(&mut e, &mut tx, unid).unwrap();
        e.commit(tx).unwrap();
        assert_eq!(s.lookup_unid(&mut e, unid).unwrap(), None);
    }

    #[test]
    fn iterate_notes_in_order() {
        let (mut e, s) = open_store();
        let mut tx = e.begin().unwrap();
        let mut ids = Vec::new();
        for i in 0..50 {
            let id = s.alloc_note_id(&mut e, &mut tx).unwrap();
            s.put(&mut e, &mut tx, id, Segment::Summary, &[i as u8])
                .unwrap();
            if i % 3 == 0 {
                s.put(&mut e, &mut tx, id, Segment::Body, &[0u8; 64])
                    .unwrap();
            }
            ids.push(id);
        }
        e.commit(tx).unwrap();
        let mut seen = Vec::new();
        s.for_each_note(&mut e, |id| {
            seen.push(id);
            true
        })
        .unwrap();
        assert_eq!(seen, ids);
        assert_eq!(s.note_count(&mut e).unwrap(), 50);
    }

    #[test]
    fn store_reopens_and_recovers() {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let id = {
            let mut e = Engine::open(
                Box::new(disk.clone()),
                Some(Box::new(log.clone())),
                EngineConfig::default(),
            )
            .unwrap();
            let mut tx = e.begin().unwrap();
            let s = NoteStore::open(&mut e, &mut tx, ReplicaId(1)).unwrap();
            let id = s.alloc_note_id(&mut e, &mut tx).unwrap();
            s.put(&mut e, &mut tx, id, Segment::Summary, b"durable note")
                .unwrap();
            e.commit(tx).unwrap();
            e.crash();
            log.crash();
            id
        };
        let mut e =
            Engine::open(Box::new(disk), Some(Box::new(log)), EngineConfig::default()).unwrap();
        let mut tx = e.begin().unwrap();
        let s = NoteStore::open(&mut e, &mut tx, ReplicaId(1)).unwrap();
        e.commit(tx).unwrap();
        assert_eq!(s.replica_id(&mut e).unwrap(), ReplicaId(1));
        assert_eq!(
            s.get(&mut e, id, Segment::Summary).unwrap().unwrap(),
            b"durable note"
        );
    }
}
