//! Pages: the unit of I/O, buffering, and logging.
//!
//! Every page begins with a 16-byte header:
//!
//! ```text
//! offset 0..8   page LSN (last log record applied to this page)
//! offset 8      page type tag
//! offset 9      flags (unused, reserved)
//! offset 10..14 next-available link (heap pages: free-space chain;
//!               free-map pages: next map page; B-tree leaves: right sibling)
//! offset 14..16 on-disk page checksum (stamped by `NsfFile` at write time;
//!               0 = never stamped, i.e. a page that has not been through a
//!               file write — in-memory disks leave it 0)
//! ```
//!
//! The rest of the page belongs to the structure named by the type tag.

use domino_wal::Lsn;

/// Page size in bytes. 4 KiB matches common OS page granularity.
pub const PAGE_SIZE: usize = 4096;

/// Size of the common page header.
pub const PAGE_HEADER: usize = 16;

/// Offset of the 2-byte on-disk page checksum within the header.
pub const PAGE_CHECKSUM_OFFSET: usize = 14;

/// Page number within a store file.
pub type PageId = u32;

/// What lives on a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    /// Unallocated / zeroed.
    Free,
    /// Page 0: store metadata (magic, counters, tree roots).
    Header,
    /// B-tree internal node.
    BTreeInternal,
    /// B-tree leaf node.
    BTreeLeaf,
    /// Slotted record page.
    Heap,
    /// Free-page bitmap page (one bit per page, chained via the link
    /// field).
    FreeMap,
}

impl PageType {
    pub fn code(self) -> u8 {
        match self {
            PageType::Free => 0,
            PageType::Header => 1,
            PageType::BTreeInternal => 2,
            PageType::BTreeLeaf => 3,
            PageType::Heap => 4,
            PageType::FreeMap => 5,
        }
    }

    pub fn from_code(c: u8) -> PageType {
        match c {
            1 => PageType::Header,
            2 => PageType::BTreeInternal,
            3 => PageType::BTreeLeaf,
            4 => PageType::Heap,
            5 => PageType::FreeMap,
            _ => PageType::Free,
        }
    }
}

/// An owned in-memory copy of one page. Structures read a page into a
/// `PageBuf`, compute, and write byte ranges back through the engine (which
/// logs them); the buffer pool itself holds the authoritative frames.
#[derive(Clone)]
pub struct PageBuf {
    pub id: PageId,
    pub data: Box<[u8; PAGE_SIZE]>,
}

impl PageBuf {
    pub fn zeroed(id: PageId) -> PageBuf {
        PageBuf {
            id,
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    pub fn lsn(&self) -> Lsn {
        Lsn(u64::from_le_bytes(self.data[0..8].try_into().expect("8")))
    }

    pub fn set_lsn(&mut self, lsn: Lsn) {
        self.data[0..8].copy_from_slice(&lsn.0.to_le_bytes());
    }

    pub fn page_type(&self) -> PageType {
        PageType::from_code(self.data[8])
    }

    pub fn set_page_type(&mut self, t: PageType) {
        self.data[8] = t.code();
    }

    /// The header's link field (free-list / sibling / free-space chain).
    pub fn link(&self) -> PageId {
        u32::from_le_bytes(self.data[10..14].try_into().expect("4"))
    }

    pub fn set_link(&mut self, link: PageId) {
        self.data[10..14].copy_from_slice(&link.to_le_bytes());
    }

    // -- typed little-endian accessors used by all page structures --------

    pub fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.data[off..off + 2].try_into().expect("2"))
    }

    pub fn put_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    pub fn get_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().expect("4"))
    }

    pub fn put_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    pub fn get_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.data[off..off + 8].try_into().expect("8"))
    }

    pub fn put_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    pub fn get_u128(&self, off: usize) -> u128 {
        u128::from_le_bytes(self.data[off..off + 16].try_into().expect("16"))
    }

    pub fn put_u128(&mut self, off: usize, v: u128) {
        self.data[off..off + 16].copy_from_slice(&v.to_le_bytes());
    }

    pub fn bytes(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }

    pub fn put_bytes(&mut self, off: usize, bytes: &[u8]) {
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageBuf")
            .field("id", &self.id)
            .field("lsn", &self.lsn())
            .field("type", &self.page_type())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fields_roundtrip() {
        let mut p = PageBuf::zeroed(7);
        assert_eq!(p.lsn(), Lsn::NIL);
        assert_eq!(p.page_type(), PageType::Free);
        p.set_lsn(Lsn(42));
        p.set_page_type(PageType::Heap);
        p.set_link(99);
        assert_eq!(p.lsn(), Lsn(42));
        assert_eq!(p.page_type(), PageType::Heap);
        assert_eq!(p.link(), 99);
    }

    #[test]
    fn typed_accessors_roundtrip() {
        let mut p = PageBuf::zeroed(0);
        p.put_u16(100, 0xBEEF);
        p.put_u32(102, 0xDEAD_BEEF);
        p.put_u64(106, u64::MAX - 3);
        p.put_u128(114, u128::MAX - 9);
        p.put_bytes(200, b"hello");
        assert_eq!(p.get_u16(100), 0xBEEF);
        assert_eq!(p.get_u32(102), 0xDEAD_BEEF);
        assert_eq!(p.get_u64(106), u64::MAX - 3);
        assert_eq!(p.get_u128(114), u128::MAX - 9);
        assert_eq!(p.bytes(200, 5), b"hello");
    }

    #[test]
    fn page_type_codes_roundtrip() {
        for t in [
            PageType::Free,
            PageType::Header,
            PageType::BTreeInternal,
            PageType::BTreeLeaf,
            PageType::Heap,
            PageType::FreeMap,
        ] {
            assert_eq!(PageType::from_code(t.code()), t);
        }
    }
}
