//! Slotted buffer pool with clock-sweep (second-chance) eviction.
//!
//! The seed engine kept frames in a `HashMap` and drove LRU through a
//! `BTreeMap<tick, PageId>`, paying two tree operations and an allocation
//! on *every* page touch. Here a page hit is one hash probe plus a
//! reference-bit store: frames live in a flat slot vector, recency is the
//! classic clock approximation (each touch sets a bit; the sweeping hand
//! clears bits and evicts the first frame found unreferenced), and an
//! evicted slot's 4 KiB buffer is reused in place for the incoming page —
//! the steady-state miss path allocates nothing.
//!
//! The pool is a passive structure: it picks victims but performs no I/O.
//! The engine owns the write-ahead rule (force the log up to the victim's
//! page LSN, write the page back) before calling [`BufferPool::rebind`].

use std::collections::HashMap;

use crate::page::{PageBuf, PageId};

/// One pool slot.
pub struct Frame {
    pub page: PageBuf,
    pub dirty: bool,
    /// Second-chance bit: set on every touch, cleared by the sweeping hand.
    referenced: bool,
}

impl Frame {
    pub fn id(&self) -> PageId {
        self.page.id
    }
}

/// Fixed-capacity frame table with clock-sweep replacement.
pub struct BufferPool {
    frames: Vec<Frame>,
    /// Page id -> slot index.
    map: HashMap<PageId, u32>,
    /// Clock hand: next slot the sweep examines.
    hand: usize,
    capacity: usize,
}

impl BufferPool {
    pub fn new(capacity: usize) -> BufferPool {
        let capacity = capacity.max(1);
        BufferPool {
            frames: Vec::with_capacity(capacity),
            map: HashMap::with_capacity(capacity),
            hand: 0,
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.frames.len()
    }

    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.frames.len() >= self.capacity
    }

    /// The hit path: find `id`'s slot and mark it recently used.
    /// One hash probe + one store; no allocation, no reordering.
    pub fn lookup(&mut self, id: PageId) -> Option<usize> {
        let slot = *self.map.get(&id)? as usize;
        self.frames[slot].referenced = true;
        Some(slot)
    }

    /// Whether `id` is resident, without touching its reference bit.
    pub fn contains(&self, id: PageId) -> bool {
        self.map.contains_key(&id)
    }

    /// `id`'s slot without promoting it (background writeback is not a
    /// use; it shouldn't shield a page from eviction).
    pub fn slot_of(&self, id: PageId) -> Option<usize> {
        self.map.get(&id).map(|s| *s as usize)
    }

    pub fn frame(&self, slot: usize) -> &Frame {
        &self.frames[slot]
    }

    pub fn frame_mut(&mut self, slot: usize) -> &mut Frame {
        &mut self.frames[slot]
    }

    /// Add a frame for `id` in a fresh slot. Caller must have checked
    /// [`BufferPool::is_full`]; when full, evict via [`BufferPool::pick_victim`] +
    /// [`BufferPool::rebind`] instead.
    pub fn push(&mut self, page: PageBuf) -> usize {
        debug_assert!(!self.is_full());
        debug_assert!(!self.map.contains_key(&page.id));
        let slot = self.frames.len();
        self.map.insert(page.id, slot as u32);
        self.frames.push(Frame {
            page,
            dirty: false,
            referenced: true,
        });
        slot
    }

    /// Clock sweep: advance the hand, giving referenced frames a second
    /// chance (clear the bit, move on) and returning the first slot found
    /// unreferenced. Terminates within two revolutions. Pool must be
    /// non-empty.
    pub fn pick_victim(&mut self) -> usize {
        debug_assert!(!self.frames.is_empty());
        loop {
            if self.hand >= self.frames.len() {
                self.hand = 0;
            }
            let slot = self.hand;
            self.hand += 1;
            let f = &mut self.frames[slot];
            if f.referenced {
                f.referenced = false;
            } else {
                return slot;
            }
        }
    }

    /// Repoint a victim slot at `new_id`, reusing its page buffer. The
    /// caller has already written back the old contents if dirty; the
    /// buffer is left stale for the caller to overwrite (a disk read fills
    /// every byte).
    pub fn rebind(&mut self, slot: usize, new_id: PageId) {
        let f = &mut self.frames[slot];
        debug_assert!(!f.dirty, "rebind of a dirty frame loses data");
        let old = f.page.id;
        f.page.id = new_id;
        f.referenced = true;
        self.map.remove(&old);
        self.map.insert(new_id, slot as u32);
    }

    /// All resident frames, for checkpoint/flush sweeps.
    pub fn frames_mut(&mut self) -> &mut [Frame] {
        &mut self.frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_with(ids: &[PageId], cap: usize) -> BufferPool {
        let mut p = BufferPool::new(cap);
        for id in ids {
            p.push(PageBuf::zeroed(*id));
        }
        p
    }

    #[test]
    fn lookup_sets_reference_bit() {
        let mut p = pool_with(&[1, 2, 3], 3);
        assert_eq!(p.lookup(2), Some(1));
        assert!(p.frame(1).referenced);
        assert_eq!(p.lookup(99), None);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut p = pool_with(&[1, 2, 3], 3);
        // All pushed frames start referenced: first sweep clears 1 and 2,
        // second chance order makes slot 0 (page 1) the victim after a
        // full revolution.
        let v = p.pick_victim();
        assert_eq!(p.frame(v).id(), 1);
        // Touching page 2 protects it; next victim is page 3.
        p.rebind(v, 10);
        p.lookup(2);
        let v2 = p.pick_victim();
        assert_eq!(p.frame(v2).id(), 3);
    }

    #[test]
    fn rebind_moves_the_mapping() {
        let mut p = pool_with(&[1, 2], 2);
        let slot = p.lookup(1).unwrap();
        p.frames_mut()[slot].referenced = false;
        p.frame_mut(slot).dirty = false;
        p.rebind(slot, 7);
        assert!(!p.contains(1));
        assert_eq!(p.lookup(7), Some(slot));
        assert_eq!(p.frame(slot).id(), 7);
    }

    #[test]
    fn capacity_clamped_to_one() {
        let p = BufferPool::new(0);
        assert_eq!(p.capacity(), 1);
    }
}
