//! Civil date/time arithmetic over [`DateTime`] ticks.
//!
//! For date-aware formulas (`@Date`, `@Year`, `@Adjust`...), a tick is
//! interpreted as **one second since 2000-01-01 00:00:00** (a "TIMEDATE
//! epoch" of our own, playing the role of Notes' 4713 BC Julian-day
//! epoch). The simulator's logical clocks stay unit-agnostic; only these
//! helpers assign calendar meaning.

use crate::value::DateTime;

pub const SECONDS_PER_DAY: i64 = 86_400;
/// Days from civil 1970-01-01 to civil 2000-01-01.
const EPOCH_2000_DAYS_FROM_1970: i64 = 10_957;

/// Days from 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: i64, d: i64) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m + 9) % 12; // Mar=0 ... Feb=11
    let doy = (153 * mp + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Civil date from days since 1970-01-01.
fn civil_from_days(z: i64) -> (i64, i64, i64) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = doy - (153 * mp + 2) / 5 + 1; // [1, 31]
    let m = (mp + 2) % 12 + 1; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Broken-down civil time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Civil {
    pub year: i64,
    pub month: u8,
    pub day: u8,
    pub hour: u8,
    pub minute: u8,
    pub second: u8,
}

impl DateTime {
    /// Build from civil components (month 1-12, day 1-31, 24h time).
    pub fn from_civil(year: i64, month: u8, day: u8, hour: u8, minute: u8, second: u8) -> DateTime {
        let days = days_from_civil(year, month as i64, day as i64) - EPOCH_2000_DAYS_FROM_1970;
        DateTime(days * SECONDS_PER_DAY + hour as i64 * 3600 + minute as i64 * 60 + second as i64)
    }

    /// Midnight of a civil date.
    pub fn from_ymd(year: i64, month: u8, day: u8) -> DateTime {
        DateTime::from_civil(year, month, day, 0, 0, 0)
    }

    /// Break down into civil components.
    pub fn civil(self) -> Civil {
        let days = self.0.div_euclid(SECONDS_PER_DAY);
        let secs = self.0.rem_euclid(SECONDS_PER_DAY);
        let (year, month, day) = civil_from_days(days + EPOCH_2000_DAYS_FROM_1970);
        Civil {
            year,
            month: month as u8,
            day: day as u8,
            hour: (secs / 3600) as u8,
            minute: (secs % 3600 / 60) as u8,
            second: (secs % 60) as u8,
        }
    }

    /// Day of week: 1 = Sunday ... 7 = Saturday (the `@Weekday` convention).
    pub fn weekday(self) -> u8 {
        let days = self.0.div_euclid(SECONDS_PER_DAY) + EPOCH_2000_DAYS_FROM_1970;
        // 1970-01-01 was a Thursday (weekday 5 in this convention).
        (((days % 7) + 7 + 4) % 7 + 1) as u8
    }

    /// `@Adjust`: shift by calendar years/months and exact days/h/m/s.
    /// Day-of-month overflow clamps to the target month's end (adding one
    /// month to Jan 31 yields Feb 28/29), as calendar arithmetic should.
    pub fn adjust(
        self,
        years: i64,
        months: i64,
        days: i64,
        hours: i64,
        minutes: i64,
        seconds: i64,
    ) -> DateTime {
        let c = self.civil();
        let total_months = (c.year * 12 + (c.month as i64 - 1)) + years * 12 + months;
        let y = total_months.div_euclid(12);
        let m = total_months.rem_euclid(12) + 1;
        let max_day = days_in_month(y, m as u8);
        let d = (c.day).min(max_day);
        let base = DateTime::from_civil(y, m as u8, d, c.hour, c.minute, c.second);
        DateTime(base.0 + days * SECONDS_PER_DAY + hours * 3600 + minutes * 60 + seconds)
    }
}

/// Number of days in a civil month.
pub fn days_in_month(year: i64, month: u8) -> u8 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (year % 4 == 0 && year % 100 != 0) || year % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_y2000() {
        let c = DateTime(0).civil();
        assert_eq!((c.year, c.month, c.day, c.hour), (2000, 1, 1, 0));
    }

    #[test]
    fn civil_roundtrip_across_leap_years() {
        for (y, m, d) in [
            (1999, 12, 31),
            (2000, 2, 29),
            (2001, 3, 1),
            (2024, 2, 29),
            (2100, 2, 28), // 2100 is not a leap year
            (1970, 1, 1),
            (2399, 12, 31),
        ] {
            let dt = DateTime::from_ymd(y, m, d);
            let c = dt.civil();
            assert_eq!(
                (c.year, c.month as i64, c.day as i64),
                (y, m as i64, d as i64)
            );
        }
    }

    #[test]
    fn time_of_day_roundtrip() {
        let dt = DateTime::from_civil(2026, 7, 4, 13, 45, 59);
        let c = dt.civil();
        assert_eq!((c.hour, c.minute, c.second), (13, 45, 59));
    }

    #[test]
    fn weekdays() {
        // 2000-01-01 was a Saturday (7); 2000-01-02 Sunday (1).
        assert_eq!(DateTime::from_ymd(2000, 1, 1).weekday(), 7);
        assert_eq!(DateTime::from_ymd(2000, 1, 2).weekday(), 1);
        // 2026-07-04 is a Saturday.
        assert_eq!(DateTime::from_ymd(2026, 7, 4).weekday(), 7);
    }

    #[test]
    fn ordering_matches_chronology() {
        assert!(DateTime::from_ymd(1999, 12, 31) < DateTime::from_ymd(2000, 1, 1));
        assert!(DateTime::from_ymd(2001, 1, 1) < DateTime::from_ymd(2001, 1, 2));
    }

    #[test]
    fn adjust_months_clamps_day() {
        let jan31 = DateTime::from_ymd(2001, 1, 31);
        let feb = jan31.adjust(0, 1, 0, 0, 0, 0).civil();
        assert_eq!((feb.month, feb.day), (2, 28));
        let leap = DateTime::from_ymd(2000, 1, 31)
            .adjust(0, 1, 0, 0, 0, 0)
            .civil();
        assert_eq!((leap.month, leap.day), (2, 29));
    }

    #[test]
    fn adjust_mixed_units() {
        let dt = DateTime::from_civil(2020, 6, 15, 10, 0, 0);
        let moved = dt.adjust(1, 2, 3, 4, 5, 6).civil();
        assert_eq!(
            (
                moved.year,
                moved.month,
                moved.day,
                moved.hour,
                moved.minute,
                moved.second
            ),
            (2021, 8, 18, 14, 5, 6)
        );
        // Negative adjustments too.
        let back = dt.adjust(0, -7, 0, 0, 0, 0).civil();
        assert_eq!((back.year, back.month), (2019, 11));
    }

    #[test]
    fn days_in_month_table() {
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
        assert_eq!(days_in_month(2023, 4), 30);
        assert_eq!(days_in_month(2023, 12), 31);
    }
}
