//! The workspace-wide error type.
//!
//! Every fallible public operation in domino-rs returns [`Result<T>`]. The
//! variants mirror the layers of the system: storage/IO faults, log and
//! recovery faults, formula compilation/evaluation faults, and logical
//! errors surfaced to applications (missing notes, access denial, conflicts).

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, DominoError>;

/// Errors produced anywhere in the domino-rs stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DominoError {
    /// An underlying I/O failure (message carries `std::io::Error` text).
    Io(String),
    /// On-disk state failed validation (bad magic, checksum, truncation...).
    Corrupt(String),
    /// The storage layer ran out of room in a fixed-size structure.
    Full(String),
    /// A note, item, view, or database that was asked for does not exist.
    NotFound(String),
    /// A name or id that must be unique already exists.
    AlreadyExists(String),
    /// Formula source failed to lex/parse.
    FormulaParse(String),
    /// Formula evaluation failed (type error, unknown @function, ...).
    FormulaEval(String),
    /// The caller's ACL access level (or reader/author fields) forbids this.
    AccessDenied(String),
    /// An update raced with another and was rejected (caller should retry
    /// from the current revision; replication instead materializes these as
    /// `$Conflict` documents).
    UpdateConflict(String),
    /// The write-ahead log or recovery machinery detected a problem.
    Wal(String),
    /// Replication protocol error (mismatched replica ids, bad cursor...).
    Replication(String),
    /// A transient transport failure: the peer, link, or message was lost
    /// in flight. Retryable — resumable replication passes keep their
    /// cursor and continue where they left off.
    Unavailable(String),
    /// A caller violated an API contract (bad argument, wrong state).
    InvalidArgument(String),
}

impl DominoError {
    /// Short machine-friendly category name, used in logs and bench reports.
    pub fn kind(&self) -> &'static str {
        match self {
            DominoError::Io(_) => "io",
            DominoError::Corrupt(_) => "corrupt",
            DominoError::Full(_) => "full",
            DominoError::NotFound(_) => "not_found",
            DominoError::AlreadyExists(_) => "already_exists",
            DominoError::FormulaParse(_) => "formula_parse",
            DominoError::FormulaEval(_) => "formula_eval",
            DominoError::AccessDenied(_) => "access_denied",
            DominoError::UpdateConflict(_) => "update_conflict",
            DominoError::Wal(_) => "wal",
            DominoError::Replication(_) => "replication",
            DominoError::Unavailable(_) => "unavailable",
            DominoError::InvalidArgument(_) => "invalid_argument",
        }
    }

    /// Is this a transient fault worth retrying (with backoff), as opposed
    /// to a deterministic failure that will recur on every attempt?
    pub fn is_transient(&self) -> bool {
        matches!(self, DominoError::Unavailable(_))
    }
}

impl fmt::Display for DominoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            DominoError::Io(m) => ("i/o error", m),
            DominoError::Corrupt(m) => ("corruption detected", m),
            DominoError::Full(m) => ("structure full", m),
            DominoError::NotFound(m) => ("not found", m),
            DominoError::AlreadyExists(m) => ("already exists", m),
            DominoError::FormulaParse(m) => ("formula parse error", m),
            DominoError::FormulaEval(m) => ("formula evaluation error", m),
            DominoError::AccessDenied(m) => ("access denied", m),
            DominoError::UpdateConflict(m) => ("update conflict", m),
            DominoError::Wal(m) => ("log/recovery error", m),
            DominoError::Replication(m) => ("replication error", m),
            DominoError::Unavailable(m) => ("temporarily unavailable", m),
            DominoError::InvalidArgument(m) => ("invalid argument", m),
        };
        write!(f, "{kind}: {msg}")
    }
}

impl std::error::Error for DominoError {}

impl From<std::io::Error> for DominoError {
    fn from(e: std::io::Error) -> Self {
        DominoError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = DominoError::NotFound("note 7".into());
        assert_eq!(e.to_string(), "not found: note 7");
        assert_eq!(e.kind(), "not_found");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::other("boom");
        let e: DominoError = io.into();
        assert_eq!(e.kind(), "io");
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            DominoError::Io(String::new()),
            DominoError::Corrupt(String::new()),
            DominoError::Full(String::new()),
            DominoError::NotFound(String::new()),
            DominoError::AlreadyExists(String::new()),
            DominoError::FormulaParse(String::new()),
            DominoError::FormulaEval(String::new()),
            DominoError::AccessDenied(String::new()),
            DominoError::UpdateConflict(String::new()),
            DominoError::Wal(String::new()),
            DominoError::Replication(String::new()),
            DominoError::Unavailable(String::new()),
            DominoError::InvalidArgument(String::new()),
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }
}
