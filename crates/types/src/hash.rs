//! Content hashing for the revision store.
//!
//! Every saved revision of a note is identified by a [`ContentHash`]: a
//! 128-bit digest over the note's canonical item encoding plus the hashes
//! of its parent revision(s). The hash is a pure function of *history* —
//! it mixes in nothing replica-local (no [`crate::NoteId`], no instance
//! state) — so two replicas holding the same copy of a note always agree
//! on its head hash, and identical edit schedules replayed against
//! identical clocks produce identical chains.
//!
//! The digest is FNV-1a widened to 128 bits. That is not a cryptographic
//! hash; it is the same family the engine already uses for revision
//! fingerprints and conflict UNIDs, it needs no external crates, and at
//! 128 bits accidental collisions are out of reach for any database this
//! engine can hold. Swapping in a cryptographic digest later only means
//! replacing [`ContentHasher`]'s mixing step.

use std::fmt;

/// 128-bit FNV-1a offset basis.
const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
/// 128-bit FNV-1a prime.
const FNV_PRIME: u128 = 0x0000000001000000000000000000013B;

/// A 128-bit content digest identifying one revision of a note (or one
/// Merkle summary node). The zero hash is reserved as "no revision".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// The reserved "no revision" value.
    pub const NONE: ContentHash = ContentHash(0);

    /// True if this is the reserved empty hash.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Render as fixed-width lowercase hex (32 chars).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the fixed-width hex form produced by [`ContentHash::to_hex`].
    pub fn from_hex(s: &str) -> Option<ContentHash> {
        u128::from_str_radix(s, 16).ok().map(ContentHash)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Incremental 128-bit FNV-1a hasher.
#[derive(Debug, Clone)]
pub struct ContentHasher {
    state: u128,
}

impl ContentHasher {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> ContentHasher {
        ContentHasher { state: FNV_OFFSET }
    }

    /// Mix raw bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for b in bytes {
            h ^= *b as u128;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.state = h;
    }

    /// Mix a u64 (little-endian).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Mix a u128 (little-endian) — e.g. a parent [`ContentHash`].
    pub fn update_u128(&mut self, v: u128) {
        self.update(&v.to_le_bytes());
    }

    /// Finish, yielding the digest. The hasher may keep being updated; this
    /// just snapshots the current state (never the reserved zero value).
    pub fn finish(&self) -> ContentHash {
        // Avoid ever emitting the reserved NONE value.
        ContentHash(if self.state == 0 { 1 } else { self.state })
    }
}

impl Default for ContentHasher {
    fn default() -> ContentHasher {
        ContentHasher::new()
    }
}

/// One-shot digest of a byte slice.
pub fn content_hash(bytes: &[u8]) -> ContentHash {
    let mut h = ContentHasher::new();
    h.update(bytes);
    h.finish()
}

/// Mix two 128-bit words into one — used by the Merkle summary tree to
/// bind an entry's key to its head hash (and a bucket index to its
/// digest) before XOR-combining entries order-independently.
pub fn mix128(a: u128, b: u128) -> u128 {
    let mut h = ContentHasher::new();
    h.update_u128(a);
    h.update_u128(b);
    h.finish().0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(content_hash(b"abc"), content_hash(b"abc"));
        assert_ne!(content_hash(b"abc"), content_hash(b"abd"));
        assert_ne!(content_hash(b""), ContentHash::NONE);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = ContentHasher::new();
        h.update(b"ab");
        h.update(b"c");
        assert_eq!(h.finish(), content_hash(b"abc"));
    }

    #[test]
    fn hex_roundtrip() {
        let h = content_hash(b"roundtrip");
        assert_eq!(ContentHash::from_hex(&h.to_hex()), Some(h));
        assert_eq!(h.to_hex().len(), 32);
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix128(1, 2), mix128(2, 1));
        assert_eq!(mix128(7, 9), mix128(7, 9));
    }
}
