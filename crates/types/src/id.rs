//! Identifiers: note ids, universal ids, originator ids, replica ids.

use crate::time::Timestamp;
use std::fmt;

/// A database-local note id.
///
/// In Domino this is the offset of the note's entry in the NSF record
/// relocation vector; it is *not* stable across replicas — two replicas of
/// the same database may give the same document different `NoteId`s. Code
/// that crosses replicas must use [`Unid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NoteId(pub u32);

impl NoteId {
    /// Reserved id meaning "no note" (parent of a top-level document, etc.).
    pub const NONE: NoteId = NoteId(0);

    pub fn is_none(self) -> bool {
        self == NoteId::NONE
    }
}

impl fmt::Display for NoteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NT{:08X}", self.0)
    }
}

/// Identifies one replica instance of a database (and doubles as the node
/// id that seeds UNID generation so ids never collide across replicas).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ReplicaId(pub u64);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RP{:016X}", self.0)
    }
}

/// A *universal* note id: identical for the same document in every replica.
///
/// Domino builds UNIDs from the creating replica's id plus the creation
/// timestamp; we do the same (64 bits of creator replica, 48 bits of
/// creation tick, 16 bits of per-tick counter), which keeps generation
/// deterministic under the simulated clock while guaranteeing uniqueness.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Unid(pub u128);

impl Unid {
    /// Construct the UNID for a note created on `replica` at `ts` with a
    /// per-timestamp disambiguation counter.
    pub fn generate(replica: ReplicaId, ts: Timestamp, counter: u16) -> Unid {
        let hi = (replica.0 as u128) << 64;
        let mid = ((ts.0 & 0xFFFF_FFFF_FFFF) as u128) << 16;
        Unid(hi | mid | counter as u128)
    }

    /// The replica that originally created the note.
    pub fn creator(self) -> ReplicaId {
        ReplicaId((self.0 >> 64) as u64)
    }

    pub fn to_bytes(self) -> [u8; 16] {
        self.0.to_be_bytes()
    }

    pub fn from_bytes(b: [u8; 16]) -> Unid {
        Unid(u128::from_be_bytes(b))
    }
}

impl fmt::Debug for Unid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Unid({:032X})", self.0)
    }
}

impl fmt::Display for Unid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032X}", self.0)
    }
}

/// The *originator id*: a UNID plus the version stamp replication compares.
///
/// Every successful update of a note bumps `seq` and records the update time
/// in `seq_time`. Two replicas compare `(seq, seq_time)` to decide which
/// copy of a note is newer and whether the histories diverged (a conflict).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Oid {
    /// The universal id of the note.
    pub unid: Unid,
    /// Update sequence number; 1 on creation, +1 per saved revision.
    pub seq: u32,
    /// Timestamp of the revision that produced `seq`.
    pub seq_time: Timestamp,
}

impl Oid {
    pub fn new(unid: Unid, ts: Timestamp) -> Oid {
        Oid {
            unid,
            seq: 1,
            seq_time: ts,
        }
    }

    /// Record another saved revision at time `ts`.
    pub fn bump(&mut self, ts: Timestamp) {
        self.seq += 1;
        self.seq_time = ts;
    }

    /// The total order replication uses to pick a conflict *winner*: higher
    /// sequence number wins; ties broken by later sequence time, then by
    /// UNID creator so the result is identical on both replicas.
    pub fn winner_key(&self) -> (u32, Timestamp, u128) {
        (self.seq, self.seq_time, self.unid.0)
    }
}

/// What kind of note this is. Domino stores *everything* — documents, forms,
/// views, the ACL, the icon — as notes of different classes in one NSF.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NoteClass {
    /// An ordinary data document.
    Document,
    /// A form design note (schema/template for documents).
    Form,
    /// A view design note (stored query + collation definition).
    View,
    /// The database access-control list.
    Acl,
    /// Database header/info note (title, replica id, purge interval...).
    Info,
    /// Agent/automation design note.
    Agent,
}

impl NoteClass {
    pub const ALL: [NoteClass; 6] = [
        NoteClass::Document,
        NoteClass::Form,
        NoteClass::View,
        NoteClass::Acl,
        NoteClass::Info,
        NoteClass::Agent,
    ];

    pub fn code(self) -> u8 {
        match self {
            NoteClass::Document => 1,
            NoteClass::Form => 2,
            NoteClass::View => 3,
            NoteClass::Acl => 4,
            NoteClass::Info => 5,
            NoteClass::Agent => 6,
        }
    }

    pub fn from_code(c: u8) -> Option<NoteClass> {
        Some(match c {
            1 => NoteClass::Document,
            2 => NoteClass::Form,
            3 => NoteClass::View,
            4 => NoteClass::Acl,
            5 => NoteClass::Info,
            6 => NoteClass::Agent,
            _ => return None,
        })
    }

    /// Design notes replicate like documents but are usually excluded from
    /// data views; documents are the "rows" of the database.
    pub fn is_design(self) -> bool {
        !matches!(self, NoteClass::Document)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unid_roundtrips_through_bytes() {
        let u = Unid::generate(ReplicaId(0xDEAD_BEEF), Timestamp(123_456), 7);
        assert_eq!(Unid::from_bytes(u.to_bytes()), u);
    }

    #[test]
    fn unid_embeds_creator() {
        let u = Unid::generate(ReplicaId(42), Timestamp(9), 0);
        assert_eq!(u.creator(), ReplicaId(42));
    }

    #[test]
    fn unids_distinct_across_counter_time_replica() {
        let a = Unid::generate(ReplicaId(1), Timestamp(5), 0);
        let b = Unid::generate(ReplicaId(1), Timestamp(5), 1);
        let c = Unid::generate(ReplicaId(1), Timestamp(6), 0);
        let d = Unid::generate(ReplicaId(2), Timestamp(5), 0);
        let all = [a, b, c, d];
        for i in 0..all.len() {
            for j in i + 1..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn oid_bump_increments_and_stamps() {
        let mut oid = Oid::new(Unid(1), Timestamp(10));
        assert_eq!(oid.seq, 1);
        oid.bump(Timestamp(20));
        assert_eq!(oid.seq, 2);
        assert_eq!(oid.seq_time, Timestamp(20));
    }

    #[test]
    fn winner_key_orders_by_seq_then_time() {
        let older = Oid {
            unid: Unid(9),
            seq: 2,
            seq_time: Timestamp(50),
        };
        let newer = Oid {
            unid: Unid(1),
            seq: 3,
            seq_time: Timestamp(10),
        };
        assert!(newer.winner_key() > older.winner_key());
        let tie_late = Oid {
            unid: Unid(1),
            seq: 2,
            seq_time: Timestamp(60),
        };
        assert!(tie_late.winner_key() > older.winner_key());
    }

    #[test]
    fn note_class_codes_roundtrip() {
        for c in NoteClass::ALL {
            assert_eq!(NoteClass::from_code(c.code()), Some(c));
        }
        assert_eq!(NoteClass::from_code(0), None);
        assert_eq!(NoteClass::from_code(99), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NoteId(0xAB).to_string(), "NT000000AB");
        assert_eq!(ReplicaId(1).to_string(), "RP0000000000000001");
        assert_eq!(Unid(0xF).to_string().len(), 32);
    }

    #[test]
    fn note_id_none() {
        assert!(NoteId::NONE.is_none());
        assert!(!NoteId(3).is_none());
    }
}
