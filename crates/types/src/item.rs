//! Items: named, flagged, revision-stamped fields of a note.

use crate::error::{DominoError, Result};
use crate::time::Timestamp;
use crate::value::Value;

/// Per-item flags, mirroring the Notes item flags that matter to a database
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ItemFlags(pub u8);

impl ItemFlags {
    /// Item participates in the note's *summary* — the compact record views
    /// and selection formulas can read without fetching the full note.
    pub const SUMMARY: ItemFlags = ItemFlags(1);
    /// Item is a `$Readers`-style list restricting who may see the note.
    pub const READERS: ItemFlags = ItemFlags(2);
    /// Item is an `$Authors`-style list extending who may edit the note.
    pub const AUTHORS: ItemFlags = ItemFlags(4);
    /// Item may not be modified by Author-level users (protected field).
    pub const PROTECTED: ItemFlags = ItemFlags(8);
    /// Tombstone for a removed item: kept (with empty value) so field-level
    /// replication can propagate the removal, hidden from readers.
    pub const DELETED: ItemFlags = ItemFlags(16);

    pub const NONE: ItemFlags = ItemFlags(0);

    pub fn contains(self, other: ItemFlags) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn union(self, other: ItemFlags) -> ItemFlags {
        ItemFlags(self.0 | other.0)
    }
}

impl std::ops::BitOr for ItemFlags {
    type Output = ItemFlags;
    fn bitor(self, rhs: ItemFlags) -> ItemFlags {
        self.union(rhs)
    }
}

/// One field of a note.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    /// Field name. Names beginning with `$` are reserved for the system
    /// (`$REF`, `$Readers`, `$Conflict`, ...).
    pub name: String,
    /// The typed value.
    pub value: Value,
    /// Summary/readers/authors/protected flags.
    pub flags: ItemFlags,
    /// When this item last changed — the per-field stamp that makes
    /// field-level (R4-style) replication possible: only items whose
    /// `revised` exceeds the other replica's knowledge need to ship.
    pub revised: Timestamp,
}

impl Item {
    pub fn new(name: impl Into<String>, value: Value) -> Item {
        Item {
            name: name.into(),
            value,
            flags: ItemFlags::SUMMARY,
            revised: Timestamp::ZERO,
        }
    }

    /// Builder-style: mark non-summary (large bodies, attachments).
    pub fn non_summary(mut self) -> Item {
        self.flags = ItemFlags(self.flags.0 & !ItemFlags::SUMMARY.0);
        self
    }

    pub fn with_flags(mut self, flags: ItemFlags) -> Item {
        self.flags = flags;
        self
    }

    pub fn is_summary(&self) -> bool {
        self.flags.contains(ItemFlags::SUMMARY)
    }

    pub fn is_system(&self) -> bool {
        self.name.starts_with('$')
    }

    /// Encoded size plus header overhead; used for page budgeting and
    /// replication bandwidth accounting.
    pub fn byte_size(&self) -> usize {
        self.name.len() + self.value.byte_size() + 1 /*flags*/ + 8 /*revised*/ + 4
    }

    /// Append the canonical binary encoding to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(self.name.len() as u16).to_le_bytes());
        buf.extend_from_slice(self.name.as_bytes());
        buf.push(self.flags.0);
        buf.extend_from_slice(&self.revised.0.to_le_bytes());
        self.value.encode(buf);
    }

    /// Decode from `buf` at `*pos`, advancing `*pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Item> {
        if *pos + 2 > buf.len() {
            return Err(DominoError::Corrupt("truncated item header".into()));
        }
        let name_len = u16::from_le_bytes(buf[*pos..*pos + 2].try_into().expect("len 2")) as usize;
        *pos += 2;
        if *pos + name_len + 9 > buf.len() {
            return Err(DominoError::Corrupt("truncated item".into()));
        }
        let name = String::from_utf8(buf[*pos..*pos + name_len].to_vec())
            .map_err(|_| DominoError::Corrupt("invalid utf-8 in item name".into()))?;
        *pos += name_len;
        let flags = ItemFlags(buf[*pos]);
        *pos += 1;
        let revised = Timestamp(u64::from_le_bytes(
            buf[*pos..*pos + 8].try_into().expect("len 8"),
        ));
        *pos += 8;
        let value = Value::decode(buf, pos)?;
        Ok(Item {
            name,
            value,
            flags,
            revised,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_compose() {
        let f = ItemFlags::SUMMARY | ItemFlags::READERS;
        assert!(f.contains(ItemFlags::SUMMARY));
        assert!(f.contains(ItemFlags::READERS));
        assert!(!f.contains(ItemFlags::AUTHORS));
    }

    #[test]
    fn new_items_are_summary_by_default() {
        let it = Item::new("Subject", Value::text("hi"));
        assert!(it.is_summary());
        assert!(!it.non_summary().is_summary());
    }

    #[test]
    fn system_items_detected() {
        assert!(Item::new("$REF", Value::text("x")).is_system());
        assert!(!Item::new("Subject", Value::text("x")).is_system());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut it = Item::new("Body", Value::RichText(vec![1, 2, 3])).non_summary();
        it.revised = Timestamp(42);
        it.flags = it.flags | ItemFlags::PROTECTED;
        let mut buf = Vec::new();
        it.encode(&mut buf);
        let mut pos = 0;
        let back = Item::decode(&buf, &mut pos).unwrap();
        assert_eq!(back, it);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn decode_rejects_truncation() {
        let it = Item::new("Subject", Value::text("hello"));
        let mut buf = Vec::new();
        it.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(Item::decode(&buf[..cut], &mut pos).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn byte_size_positive_and_monotone_in_name() {
        let a = Item::new("A", Value::Number(0.0)).byte_size();
        let b = Item::new("LongerName", Value::Number(0.0)).byte_size();
        assert!(b > a);
    }
}
