//! Core types shared by every crate in the `domino-rs` workspace.
//!
//! Lotus Notes addresses every document ("note") three ways:
//!
//! * a [`NoteId`] — a small integer valid only inside one database replica,
//! * a [`Unid`] — a 128-bit *universal* id identical across all replicas of a
//!   database, and
//! * an [`Oid`] — the UNID plus a *sequence number* and *sequence time*,
//!   which together version the note for replication.
//!
//! Items (fields) of a note carry typed [`Value`]s and per-item metadata
//! ([`Item`]) such as the *summary* flag (may appear in views) and the
//! per-item revision timestamp used by field-level replication.
//!
//! Time is modelled by a [`Timestamp`] issued from a [`Clock`]. Production
//! Domino uses wall-clock time; for deterministic tests and the network
//! simulator we use hybrid logical clocks ([`LogicalClock`]) that only move
//! forward when asked and can be merged with remote observations.

pub mod datetime;
pub mod error;
pub mod hash;
pub mod id;
pub mod item;
pub mod time;
pub mod value;
pub mod wire;

pub use datetime::{days_in_month, Civil, SECONDS_PER_DAY};
pub use error::{DominoError, Result};
pub use hash::{content_hash, mix128, ContentHash, ContentHasher};
pub use id::{NoteClass, NoteId, Oid, ReplicaId, Unid};
pub use item::{Item, ItemFlags};
pub use time::{Clock, LogicalClock, Timestamp};
pub use value::{DateTime, Value, ValueType};
pub use wire::{Frame, FrameDecoder, Opcode, MAX_FRAME_LEN, WIRE_MAGIC, WIRE_VERSION};
