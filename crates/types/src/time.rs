//! Timestamps and clocks.
//!
//! Everything in domino-rs that needs "now" asks a [`Clock`] rather than the
//! OS, so that tests, crash-recovery experiments, and the multi-server
//! network simulator are fully deterministic. The default implementation is
//! a hybrid logical clock ([`LogicalClock`]): it ticks monotonically on
//! every read and can *observe* timestamps received from other replicas so
//! local time never runs behind causally-related remote events — exactly the
//! property replication's sequence-time comparisons need.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically comparable instant. The unit is "ticks" — in production
/// you would map this to wall-clock microseconds; the simulator maps it to
/// simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

impl Timestamp {
    pub const ZERO: Timestamp = Timestamp(0);

    pub fn saturating_sub(self, other: Timestamp) -> u64 {
        self.0.saturating_sub(other.0)
    }

    pub fn plus(self, ticks: u64) -> Timestamp {
        Timestamp(self.0 + ticks)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Source of timestamps. Implementations must be monotonic: successive
/// `now()` calls never go backwards.
pub trait Clock: Send + Sync {
    /// Current time; advances the clock by at least one tick so two reads
    /// never return the same instant (gives every revision a distinct
    /// sequence time).
    fn now(&self) -> Timestamp;

    /// Fold in a timestamp seen from elsewhere (hybrid-logical-clock merge):
    /// afterwards `now()` returns something strictly greater than `remote`.
    fn observe(&self, remote: Timestamp);

    /// Peek without advancing (for logging / cutoff computations).
    fn peek(&self) -> Timestamp;
}

/// The default deterministic clock: a shared atomic counter.
///
/// Cloning shares the underlying counter, so a database and its views,
/// replicator, and log all agree on time.
#[derive(Debug, Clone, Default)]
pub struct LogicalClock {
    ticks: Arc<AtomicU64>,
}

impl LogicalClock {
    pub fn new() -> LogicalClock {
        LogicalClock::default()
    }

    /// Start the clock at a given instant (useful to make replica clocks
    /// intentionally skewed in tests).
    pub fn starting_at(ts: Timestamp) -> LogicalClock {
        LogicalClock {
            ticks: Arc::new(AtomicU64::new(ts.0)),
        }
    }

    /// Jump the clock forward by `ticks` (simulating elapsed idle time,
    /// e.g. to age deletion stubs past the purge interval).
    pub fn advance(&self, ticks: u64) {
        self.ticks.fetch_add(ticks, Ordering::SeqCst);
    }
}

impl Clock for LogicalClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.ticks.fetch_add(1, Ordering::SeqCst) + 1)
    }

    fn observe(&self, remote: Timestamp) {
        self.ticks.fetch_max(remote.0, Ordering::SeqCst);
    }

    fn peek(&self) -> Timestamp {
        Timestamp(self.ticks.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_strictly_monotonic() {
        let c = LogicalClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b > a);
    }

    #[test]
    fn observe_pulls_clock_forward() {
        let c = LogicalClock::new();
        c.observe(Timestamp(1000));
        assert!(c.now() > Timestamp(1000));
    }

    #[test]
    fn observe_never_rewinds() {
        let c = LogicalClock::starting_at(Timestamp(500));
        c.observe(Timestamp(10));
        assert!(c.peek() >= Timestamp(500));
    }

    #[test]
    fn clones_share_time() {
        let c = LogicalClock::new();
        let d = c.clone();
        let a = c.now();
        let b = d.now();
        assert!(b > a);
    }

    #[test]
    fn advance_skips_ahead() {
        let c = LogicalClock::new();
        let before = c.now();
        c.advance(10_000);
        assert!(c.now().saturating_sub(before) >= 10_000);
    }

    #[test]
    fn peek_does_not_advance() {
        let c = LogicalClock::new();
        let p1 = c.peek();
        let p2 = c.peek();
        assert_eq!(p1, p2);
    }
}
