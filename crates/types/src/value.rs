//! Item values: the Notes data model's scalar and list types.
//!
//! Notes items are typed: text, number, date/time — each either scalar or a
//! list — plus rich text (an opaque body kept out of view buffers). Lists
//! are first-class: the formula language operates on them pairwise, and
//! multi-value items sort by their first element in view collations.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{DominoError, Result};

/// A date/time value, stored as ticks on the shared timeline (see
/// [`crate::time::Timestamp`]). Kept as its own newtype so formulas can
/// distinguish date arithmetic from plain numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DateTime(pub i64);

impl DateTime {
    pub fn from_ticks(t: u64) -> DateTime {
        DateTime(t as i64)
    }

    pub fn ticks(self) -> i64 {
        self.0
    }
}

impl fmt::Display for DateTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// The type tag of a [`Value`], used for collation (values of different
/// types sort by type rank, as Notes view collations do) and for encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueType {
    Number,
    DateTime,
    Text,
    NumberList,
    DateTimeList,
    TextList,
    RichText,
}

impl ValueType {
    /// Collation rank: numbers < datetimes < text < rich text. Lists rank as
    /// their element type (they collate by first element).
    pub fn rank(self) -> u8 {
        match self {
            ValueType::Number | ValueType::NumberList => 0,
            ValueType::DateTime | ValueType::DateTimeList => 1,
            ValueType::Text | ValueType::TextList => 2,
            ValueType::RichText => 3,
        }
    }
}

/// The value of one item.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Number(f64),
    NumberList(Vec<f64>),
    Text(String),
    TextList(Vec<String>),
    DateTime(DateTime),
    DateTimeList(Vec<DateTime>),
    /// Rich text bodies are opaque to views and formulas except via
    /// [`Value::to_text`], which yields their extractable plain text.
    RichText(Vec<u8>),
}

impl Value {
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Number(_) => ValueType::Number,
            Value::NumberList(_) => ValueType::NumberList,
            Value::Text(_) => ValueType::Text,
            Value::TextList(_) => ValueType::TextList,
            Value::DateTime(_) => ValueType::DateTime,
            Value::DateTimeList(_) => ValueType::DateTimeList,
            Value::RichText(_) => ValueType::RichText,
        }
    }

    /// Convenience constructor from `&str`.
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    /// Convenience constructor for a text list.
    pub fn text_list<I, S>(items: I) -> Value
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Value::TextList(items.into_iter().map(Into::into).collect())
    }

    /// Number of elements (lists) or 1 (scalars); matches `@Elements`.
    pub fn elements(&self) -> usize {
        match self {
            Value::NumberList(v) => v.len(),
            Value::TextList(v) => v.len(),
            Value::DateTimeList(v) => v.len(),
            _ => 1,
        }
    }

    /// True for `""`, empty lists, and empty rich text — what Notes formulas
    /// treat as "not there" in `@If(field = ""; ...)` patterns.
    pub fn is_empty(&self) -> bool {
        match self {
            Value::Text(s) => s.is_empty(),
            Value::TextList(v) => v.is_empty() || v.iter().all(|s| s.is_empty()),
            Value::NumberList(v) => v.is_empty(),
            Value::DateTimeList(v) => v.is_empty(),
            Value::RichText(b) => b.is_empty(),
            Value::Number(_) | Value::DateTime(_) => false,
        }
    }

    /// Render as display text (what `@Text` returns and what views show).
    /// List elements join with `;`. Rich text yields its plain-text bytes
    /// interpreted as UTF-8 (lossy).
    pub fn to_text(&self) -> String {
        fn join<T: ToString>(v: &[T]) -> String {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(";")
        }
        match self {
            Value::Number(n) => fmt_number(*n),
            Value::NumberList(v) => v
                .iter()
                .map(|n| fmt_number(*n))
                .collect::<Vec<_>>()
                .join(";"),
            Value::Text(s) => s.clone(),
            Value::TextList(v) => v.join(";"),
            Value::DateTime(d) => d.to_string(),
            Value::DateTimeList(v) => join(v),
            Value::RichText(b) => String::from_utf8_lossy(b).into_owned(),
        }
    }

    /// Coerce to a single number if possible (`@TextToNumber` semantics for
    /// text; first element for lists).
    pub fn as_number(&self) -> Result<f64> {
        match self {
            Value::Number(n) => Ok(*n),
            Value::NumberList(v) => v
                .first()
                .copied()
                .ok_or_else(|| DominoError::FormulaEval("empty number list has no value".into())),
            Value::Text(s) => s
                .trim()
                .parse::<f64>()
                .map_err(|_| DominoError::FormulaEval(format!("cannot convert {s:?} to number"))),
            Value::DateTime(d) => Ok(d.0 as f64),
            other => Err(DominoError::FormulaEval(format!(
                "cannot convert {:?} to number",
                other.value_type()
            ))),
        }
    }

    /// Truthiness: Notes treats nonzero numbers as true. Text is not
    /// implicitly boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Number(n) => Ok(*n != 0.0),
            Value::NumberList(v) => Ok(v.iter().any(|n| *n != 0.0)),
            other => Err(DominoError::FormulaEval(format!(
                "cannot use {:?} as a condition",
                other.value_type()
            ))),
        }
    }

    /// Iterate the value as a list of scalar values (scalars yield one).
    pub fn iter_scalars(&self) -> Vec<Value> {
        match self {
            Value::NumberList(v) => v.iter().map(|n| Value::Number(*n)).collect(),
            Value::TextList(v) => v.iter().map(|s| Value::Text(s.clone())).collect(),
            Value::DateTimeList(v) => v.iter().map(|d| Value::DateTime(*d)).collect(),
            scalar => vec![scalar.clone()],
        }
    }

    /// Rebuild a value from scalars of a homogeneous type. An empty slice
    /// becomes an empty text list (the Notes "no values" result).
    pub fn from_scalars(items: Vec<Value>) -> Result<Value> {
        if items.is_empty() {
            return Ok(Value::TextList(Vec::new()));
        }
        if items.len() == 1 {
            return Ok(items.into_iter().next().expect("len checked"));
        }
        match &items[0] {
            Value::Number(_) => {
                let mut out = Vec::with_capacity(items.len());
                for v in &items {
                    out.push(v.as_number()?);
                }
                Ok(Value::NumberList(out))
            }
            Value::DateTime(_) => {
                let mut out = Vec::with_capacity(items.len());
                for v in &items {
                    match v {
                        Value::DateTime(d) => out.push(*d),
                        _ => {
                            return Err(DominoError::FormulaEval("mixed list element types".into()))
                        }
                    }
                }
                Ok(Value::DateTimeList(out))
            }
            _ => {
                let out = items.iter().map(|v| v.to_text()).collect();
                Ok(Value::TextList(out))
            }
        }
    }

    /// Total order used by view collations: type rank first, then value;
    /// lists compare by their first element then lexicographically.
    pub fn collate(&self, other: &Value) -> Ordering {
        let (ra, rb) = (self.value_type().rank(), other.value_type().rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        let a = self.iter_scalars();
        let b = other.iter_scalars();
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = match (x, y) {
                (Value::Number(m), Value::Number(n)) => m.partial_cmp(n).unwrap_or(Ordering::Equal),
                (Value::DateTime(m), Value::DateTime(n)) => m.cmp(n),
                (Value::Text(m), Value::Text(n)) => {
                    // Case-insensitive primary weight, case-sensitive tiebreak,
                    // mirroring the default Notes collation.
                    let ci = m.to_lowercase().cmp(&n.to_lowercase());
                    if ci != Ordering::Equal {
                        ci
                    } else {
                        m.cmp(n)
                    }
                }
                (Value::RichText(m), Value::RichText(n)) => m.cmp(n),
                _ => Ordering::Equal,
            };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        a.len().cmp(&b.len())
    }

    /// Approximate in-memory/storage footprint in bytes (for bandwidth
    /// accounting in replication experiments and summary-bucket budgeting).
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Number(_) => 8,
            Value::NumberList(v) => 8 * v.len() + 4,
            Value::Text(s) => s.len() + 4,
            Value::TextList(v) => v.iter().map(|s| s.len() + 4).sum::<usize>() + 4,
            Value::DateTime(_) => 8,
            Value::DateTimeList(v) => 8 * v.len() + 4,
            Value::RichText(b) => b.len() + 4,
        }
    }

    // ---- binary encoding (shared by storage, WAL, and replication) ----

    /// Append the canonical binary encoding of this value to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        fn put_len(buf: &mut Vec<u8>, n: usize) {
            buf.extend_from_slice(&(n as u32).to_le_bytes());
        }
        match self {
            Value::Number(n) => {
                buf.push(0);
                buf.extend_from_slice(&n.to_le_bytes());
            }
            Value::NumberList(v) => {
                buf.push(1);
                put_len(buf, v.len());
                for n in v {
                    buf.extend_from_slice(&n.to_le_bytes());
                }
            }
            Value::Text(s) => {
                buf.push(2);
                put_len(buf, s.len());
                buf.extend_from_slice(s.as_bytes());
            }
            Value::TextList(v) => {
                buf.push(3);
                put_len(buf, v.len());
                for s in v {
                    put_len(buf, s.len());
                    buf.extend_from_slice(s.as_bytes());
                }
            }
            Value::DateTime(d) => {
                buf.push(4);
                buf.extend_from_slice(&d.0.to_le_bytes());
            }
            Value::DateTimeList(v) => {
                buf.push(5);
                put_len(buf, v.len());
                for d in v {
                    buf.extend_from_slice(&d.0.to_le_bytes());
                }
            }
            Value::RichText(b) => {
                buf.push(6);
                put_len(buf, b.len());
                buf.extend_from_slice(b);
            }
        }
    }

    /// Decode a value from `buf` starting at `*pos`, advancing `*pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Value> {
        fn need<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
            if *pos + n > buf.len() {
                return Err(DominoError::Corrupt("truncated value".into()));
            }
            let s = &buf[*pos..*pos + n];
            *pos += n;
            Ok(s)
        }
        fn get_len(buf: &[u8], pos: &mut usize) -> Result<usize> {
            let b = need(buf, pos, 4)?;
            Ok(u32::from_le_bytes(b.try_into().expect("len 4")) as usize)
        }
        let tag = need(buf, pos, 1)?[0];
        Ok(match tag {
            0 => Value::Number(f64::from_le_bytes(
                need(buf, pos, 8)?.try_into().expect("len 8"),
            )),
            1 => {
                let n = get_len(buf, pos)?;
                let mut v = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    v.push(f64::from_le_bytes(
                        need(buf, pos, 8)?.try_into().expect("len 8"),
                    ));
                }
                Value::NumberList(v)
            }
            2 => {
                let n = get_len(buf, pos)?;
                let bytes = need(buf, pos, n)?;
                Value::Text(
                    String::from_utf8(bytes.to_vec())
                        .map_err(|_| DominoError::Corrupt("invalid utf-8 in text value".into()))?,
                )
            }
            3 => {
                let n = get_len(buf, pos)?;
                let mut v = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let len = get_len(buf, pos)?;
                    let bytes = need(buf, pos, len)?;
                    v.push(
                        String::from_utf8(bytes.to_vec()).map_err(|_| {
                            DominoError::Corrupt("invalid utf-8 in text list".into())
                        })?,
                    );
                }
                Value::TextList(v)
            }
            4 => Value::DateTime(DateTime(i64::from_le_bytes(
                need(buf, pos, 8)?.try_into().expect("len 8"),
            ))),
            5 => {
                let n = get_len(buf, pos)?;
                let mut v = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    v.push(DateTime(i64::from_le_bytes(
                        need(buf, pos, 8)?.try_into().expect("len 8"),
                    )));
                }
                Value::DateTimeList(v)
            }
            6 => {
                let n = get_len(buf, pos)?;
                Value::RichText(need(buf, pos, n)?.to_vec())
            }
            t => return Err(DominoError::Corrupt(format!("unknown value tag {t}"))),
        })
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Value {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Number(n as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Text(s)
    }
}

impl From<DateTime> for Value {
    fn from(d: DateTime) -> Value {
        Value::DateTime(d)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Number(if b { 1.0 } else { 0.0 })
    }
}

/// Format a number the way Notes displays it: integers without a decimal
/// point, everything else with standard float formatting.
fn fmt_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        let back = Value::decode(&buf, &mut pos).expect("decode");
        assert_eq!(&back, v);
        assert_eq!(pos, buf.len(), "decoder consumed exactly the encoding");
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(&Value::Number(3.25));
        roundtrip(&Value::NumberList(vec![1.0, -2.5, 0.0]));
        roundtrip(&Value::text("hello"));
        roundtrip(&Value::text_list(["a", "", "c"]));
        roundtrip(&Value::DateTime(DateTime(-7)));
        roundtrip(&Value::DateTimeList(vec![DateTime(1), DateTime(2)]));
        roundtrip(&Value::RichText(vec![0, 255, 42]));
    }

    #[test]
    fn decode_rejects_truncation() {
        let mut buf = Vec::new();
        Value::text("hello world").encode(&mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(Value::decode(&buf[..cut], &mut pos).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn decode_rejects_unknown_tag() {
        let mut pos = 0;
        assert!(Value::decode(&[99], &mut pos).is_err());
    }

    #[test]
    fn to_text_formats() {
        assert_eq!(Value::Number(3.0).to_text(), "3");
        assert_eq!(Value::Number(3.5).to_text(), "3.5");
        assert_eq!(Value::text_list(["a", "b"]).to_text(), "a;b");
        assert_eq!(Value::NumberList(vec![1.0, 2.0]).to_text(), "1;2");
        assert_eq!(Value::RichText(b"body".to_vec()).to_text(), "body");
    }

    #[test]
    fn as_number_coercions() {
        assert_eq!(Value::text(" 42 ").as_number().unwrap(), 42.0);
        assert_eq!(Value::NumberList(vec![7.0, 8.0]).as_number().unwrap(), 7.0);
        assert!(Value::text("nope").as_number().is_err());
        assert!(Value::text_list(["x"]).as_number().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Number(1.0).as_bool().unwrap());
        assert!(!Value::Number(0.0).as_bool().unwrap());
        assert!(Value::NumberList(vec![0.0, 2.0]).as_bool().unwrap());
        assert!(Value::text("true").as_bool().is_err());
    }

    #[test]
    fn collation_orders_types_then_values() {
        let n = Value::Number(99.0);
        let d = Value::DateTime(DateTime(0));
        let t = Value::text("a");
        assert_eq!(n.collate(&d), Ordering::Less);
        assert_eq!(d.collate(&t), Ordering::Less);
        assert_eq!(
            Value::text("Apple").collate(&Value::text("banana")),
            Ordering::Less
        );
        assert_eq!(
            Value::text("a").collate(&Value::text("A")),
            Ordering::Greater
        );
        assert_eq!(
            Value::NumberList(vec![1.0, 5.0]).collate(&Value::NumberList(vec![1.0])),
            Ordering::Greater
        );
    }

    #[test]
    fn scalars_roundtrip_through_lists() {
        let v = Value::text_list(["x", "y"]);
        let back = Value::from_scalars(v.iter_scalars()).unwrap();
        assert_eq!(back, v);
        let s = Value::Number(5.0);
        assert_eq!(Value::from_scalars(s.iter_scalars()).unwrap(), s);
        assert_eq!(
            Value::from_scalars(vec![]).unwrap(),
            Value::TextList(vec![])
        );
    }

    #[test]
    fn emptiness() {
        assert!(Value::text("").is_empty());
        assert!(Value::TextList(vec![]).is_empty());
        assert!(Value::text_list([""]).is_empty());
        assert!(!Value::Number(0.0).is_empty());
        assert!(!Value::text("x").is_empty());
    }

    #[test]
    fn byte_size_tracks_payload() {
        assert!(Value::text("abcdef").byte_size() > Value::text("a").byte_size());
        assert_eq!(Value::Number(0.0).byte_size(), 8);
    }
}
