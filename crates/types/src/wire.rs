//! The replication wire protocol: NRPC stand-in framing.
//!
//! Real Domino replicas speak NRPC over port 1352. This module defines
//! the compact binary stand-in this reproduction puts on a real TCP
//! socket (FORMAT.md §"Replication wire protocol"): a length-prefixed,
//! checksummed frame
//!
//! ```text
//! [len: u32 LE] [checksum: u32 LE] [opcode: u8] [payload: len-1 bytes]
//! ```
//!
//! where `len` counts the opcode byte plus the payload, and `checksum`
//! is FNV-1a-32 over those same bytes, so a torn or corrupted frame is
//! detected before its opcode is believed. A connection opens with a
//! version handshake ([`Opcode::Hello`] carrying [`WIRE_MAGIC`] +
//! [`WIRE_VERSION`]); replication messages then flow as
//! [`Opcode::Deliver`] frames — one per negotiation round or candidate
//! batch, exactly the unit the
//! `Transport` trait's `deliver` models — each answered by
//! [`Opcode::Ack`] (applied) or [`Opcode::Nack`] (transient refusal,
//! payload carries the reason).
//!
//! Encoding is manual (bincode-style little-endian puts/takes): the
//! protocol must stay byte-stable across builds, so every offset is a
//! named constant pinned by `frame_layout_matches_spec` — the same
//! discipline FORMAT.md applies to the NSF page format.

use crate::error::{DominoError, Result};

/// Handshake magic: the first four payload bytes of a [`Opcode::Hello`].
pub const WIRE_MAGIC: [u8; 4] = *b"NRPC";

/// Wire-protocol version byte exchanged in the handshake. Bump on any
/// frame-layout or opcode change.
pub const WIRE_VERSION: u8 = 1;

/// Byte offset of the `len` field in an encoded frame.
pub const FRAME_LEN_OFFSET: usize = 0;
/// Byte offset of the `checksum` field.
pub const FRAME_CHECKSUM_OFFSET: usize = 4;
/// Byte offset of the `opcode` byte.
pub const FRAME_OPCODE_OFFSET: usize = 8;
/// Fixed bytes before the payload (`len` + `checksum` + `opcode`).
pub const FRAME_HEADER_LEN: usize = 9;

/// Ceiling on `len` (opcode + payload). Frames above this are rejected
/// as [`DominoError::Corrupt`] before any allocation, bounding memory
/// per connection no matter what arrives on the socket.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// FNV-1a-32 offset basis.
const FNV32_OFFSET: u32 = 0x811c_9dc5;
/// FNV-1a-32 prime.
const FNV32_PRIME: u32 = 0x0100_0193;

/// FNV-1a-32 over `bytes` — the frame checksum (and cheap enough to run
/// per message on the hot path).
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = FNV32_OFFSET;
    for b in bytes {
        h ^= u32::from(*b);
        h = h.wrapping_mul(FNV32_PRIME);
    }
    h
}

/// Message opcodes. Values are part of the wire format — never reuse or
/// renumber a released opcode; add new ones instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Client → server: `[WIRE_MAGIC][WIRE_VERSION]` version handshake.
    Hello = 0x01,
    /// Server → client: handshake accepted (same payload echoed back).
    HelloAck = 0x02,
    /// Client → server: one replication message — a negotiation round or
    /// a candidate batch. Payload: `[notes: u64 LE]`, the candidate count
    /// the batch carries (negotiation rounds carry 1).
    Deliver = 0x10,
    /// Server → client: the delivery was accepted.
    Ack = 0x11,
    /// Server → client: the delivery was refused (transient — the client
    /// should park its cursor and retry). Payload: UTF-8 reason.
    Nack = 0x12,
    /// Either side: orderly close; no further frames follow.
    Quit = 0x7F,
}

impl Opcode {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        match b {
            0x01 => Some(Opcode::Hello),
            0x02 => Some(Opcode::HelloAck),
            0x10 => Some(Opcode::Deliver),
            0x11 => Some(Opcode::Ack),
            0x12 => Some(Opcode::Nack),
            0x7F => Some(Opcode::Quit),
            _ => None,
        }
    }
}

/// One decoded wire frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame says.
    pub opcode: Opcode,
    /// Opcode-specific bytes (see [`Opcode`] for each layout).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A payload-free frame.
    pub fn bare(opcode: Opcode) -> Frame {
        Frame {
            opcode,
            payload: Vec::new(),
        }
    }

    /// The handshake frame a client opens with.
    pub fn hello() -> Frame {
        let mut payload = WIRE_MAGIC.to_vec();
        payload.push(WIRE_VERSION);
        Frame {
            opcode: Opcode::Hello,
            payload,
        }
    }

    /// The handshake acknowledgement (magic + version echoed back).
    pub fn hello_ack() -> Frame {
        Frame {
            opcode: Opcode::HelloAck,
            payload: Frame::hello().payload,
        }
    }

    /// A replication message carrying `notes` candidates.
    pub fn deliver(notes: u64) -> Frame {
        Frame {
            opcode: Opcode::Deliver,
            payload: notes.to_le_bytes().to_vec(),
        }
    }

    /// A transient refusal with a human-readable reason.
    pub fn nack(reason: &str) -> Frame {
        Frame {
            opcode: Opcode::Nack,
            payload: reason.as_bytes().to_vec(),
        }
    }

    /// Does this frame carry the correct `[magic][version]` handshake
    /// payload?
    pub fn handshake_ok(&self) -> bool {
        self.payload.len() == WIRE_MAGIC.len() + 1
            && self.payload[..WIRE_MAGIC.len()] == WIRE_MAGIC
            && self.payload[WIRE_MAGIC.len()] == WIRE_VERSION
    }

    /// The candidate count of a [`Opcode::Deliver`] payload.
    pub fn deliver_notes(&self) -> Result<u64> {
        let bytes: [u8; 8] = self
            .payload
            .as_slice()
            .try_into()
            .map_err(|_| DominoError::Corrupt("Deliver payload is not 8 bytes".into()))?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Serialize to `[len][checksum][opcode][payload]` bytes.
    pub fn encode(&self) -> Vec<u8> {
        let len = 1 + self.payload.len();
        let mut out = Vec::with_capacity(FRAME_HEADER_LEN - 1 + len);
        out.extend_from_slice(&(len as u32).to_le_bytes());
        let mut body = Vec::with_capacity(len);
        body.push(self.opcode as u8);
        body.extend_from_slice(&self.payload);
        out.extend_from_slice(&fnv1a32(&body).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }
}

/// Incremental frame decoder: feed it bytes as they arrive off a socket
/// (at any split boundary) and take complete frames out. Buffered bytes
/// never exceed [`MAX_FRAME_LEN`] plus one header — memory per
/// connection is bounded by construction.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Append bytes read from the wire.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete frame. `Ok(None)` means more
    /// bytes are needed; [`DominoError::Corrupt`] means the stream is
    /// unrecoverable (oversized length, bad checksum, unknown opcode)
    /// and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        if self.buf.len() < FRAME_HEADER_LEN - 1 + 1 {
            // Not even `len` + `checksum` + opcode yet — but check what we
            // can: a hostile length prefix is rejectable at 4 bytes.
            if self.buf.len() >= 4 {
                let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
                if len == 0 || len > MAX_FRAME_LEN {
                    return Err(DominoError::Corrupt(format!(
                        "wire frame length {len} outside 1..={MAX_FRAME_LEN}"
                    )));
                }
            }
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_FRAME_LEN {
            return Err(DominoError::Corrupt(format!(
                "wire frame length {len} outside 1..={MAX_FRAME_LEN}"
            )));
        }
        let total = FRAME_HEADER_LEN - 1 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let checksum = u32::from_le_bytes(self.buf[4..8].try_into().expect("4 bytes"));
        let body = &self.buf[8..total];
        if fnv1a32(body) != checksum {
            return Err(DominoError::Corrupt("wire frame checksum mismatch".into()));
        }
        let opcode = Opcode::from_u8(body[0]).ok_or_else(|| {
            DominoError::Corrupt(format!("unknown wire opcode 0x{:02x}", body[0]))
        })?;
        let payload = body[1..].to_vec();
        self.buf.drain(..total);
        Ok(Some(Frame { opcode, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout_matches_spec() {
        // FORMAT.md §"Replication wire protocol" — every named constant.
        assert_eq!(WIRE_MAGIC, *b"NRPC");
        assert_eq!(WIRE_VERSION, 1);
        assert_eq!(FRAME_LEN_OFFSET, 0);
        assert_eq!(FRAME_CHECKSUM_OFFSET, 4);
        assert_eq!(FRAME_OPCODE_OFFSET, 8);
        assert_eq!(FRAME_HEADER_LEN, 9);
        assert_eq!(MAX_FRAME_LEN, 1_048_576);
        for (op, code) in [
            (Opcode::Hello, 0x01u8),
            (Opcode::HelloAck, 0x02),
            (Opcode::Deliver, 0x10),
            (Opcode::Ack, 0x11),
            (Opcode::Nack, 0x12),
            (Opcode::Quit, 0x7F),
        ] {
            assert_eq!(op as u8, code);
            assert_eq!(Opcode::from_u8(code), Some(op));
        }
        // The worked example in the spec: Deliver(16).
        let bytes = Frame::deliver(16).encode();
        assert_eq!(bytes.len(), FRAME_HEADER_LEN + 8);
        assert_eq!(&bytes[..4], &9u32.to_le_bytes()); // opcode + 8-byte payload
        assert_eq!(bytes[FRAME_OPCODE_OFFSET], 0x10);
        assert_eq!(&bytes[FRAME_OPCODE_OFFSET + 1..], &16u64.to_le_bytes());
    }

    #[test]
    fn roundtrip_at_any_split() {
        let frames = [
            Frame::hello(),
            Frame::hello_ack(),
            Frame::deliver(12345),
            Frame::nack("scripted loss"),
            Frame::bare(Opcode::Quit),
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&f.encode());
        }
        // Feed one byte at a time: every split boundary is exercised.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &wire {
            dec.feed(&[*b]);
            while let Some(f) = dec.next_frame().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn corrupt_frames_are_detected() {
        // Oversized length prefix.
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(dec.next_frame().is_err());

        // Flipped payload byte fails the checksum.
        let mut bytes = Frame::deliver(7).encode();
        *bytes.last_mut().unwrap() ^= 0xFF;
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(dec.next_frame().is_err());

        // Unknown opcode.
        let mut frame = Frame::deliver(7);
        frame.opcode = Opcode::Deliver;
        let mut bytes = frame.encode();
        bytes[FRAME_OPCODE_OFFSET] = 0x66;
        let body_len = bytes.len() - 8;
        let sum = fnv1a32(&bytes[8..8 + body_len]);
        bytes[4..8].copy_from_slice(&sum.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn handshake_and_deliver_payloads() {
        assert!(Frame::hello().handshake_ok());
        assert!(Frame::hello_ack().handshake_ok());
        let mut bad = Frame::hello();
        bad.payload[4] = WIRE_VERSION + 1;
        assert!(!bad.handshake_ok());
        assert_eq!(Frame::deliver(99).deliver_notes().unwrap(), 99);
        assert!(Frame::bare(Opcode::Ack).deliver_notes().is_err());
    }
}
