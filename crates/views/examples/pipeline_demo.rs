//! End-to-end drive of the parallel indexing pipeline through the
//! public API: batched saves coalescing into one view update, the
//! compiled-selection cache, and full parallel rebuild parity.
//!
//! Run with: cargo run --release -p domino-views --example pipeline_demo

use std::sync::Arc;

use domino_core::{Database, DbConfig, Note};
use domino_types::{LogicalClock, ReplicaId, Value};
use domino_views::{ColumnSpec, SortDir, View, ViewDesign};

fn task(db: &Database, subject: &str, status: &str) -> Note {
    let mut n = Note::document("Task");
    n.set("Subject", Value::text(subject));
    n.set("Status", Value::text(status));
    db.save(&mut n).unwrap();
    n
}

fn design() -> ViewDesign {
    ViewDesign::new("Tasks", r#"SELECT Form = "Task""#)
        .unwrap()
        .column(ColumnSpec::new("Status", "Status").unwrap().categorized())
        .column(
            ColumnSpec::new("Subject", "Subject")
                .unwrap()
                .sorted(SortDir::Ascending),
        )
}

fn main() {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("demo", ReplicaId(1), ReplicaId(7)),
            LogicalClock::new(),
        )
        .unwrap(),
    );
    let view = View::attach(&db, design()).unwrap();

    // 1. Batched saves: three saves, one doc saved twice -> coalesces to 2.
    {
        let _batch = db.begin_batch();
        let mut t = task(&db, "write report", "open");
        task(&db, "file expenses", "open");
        t.set("Status", Value::text("done"));
        db.save(&mut t).unwrap();
        println!("inside batch: view.len() = {}", view.len());
    }
    let s = view.stats();
    println!(
        "after batch:  view.len() = {}, batches = {}, batch_events = {}, max_batch = {}, evaluated = {}",
        view.len(),
        s.batches,
        s.batch_events,
        s.max_batch,
        s.evaluated
    );
    for row in view.rows() {
        println!("  row: {:?} / {:?}", row.values[0], row.values[1]);
    }

    // 2. Probe: save-then-delete inside one batch -> doc never reaches the view.
    {
        let _batch = db.begin_batch();
        let ghost = task(&db, "ephemeral", "open");
        db.delete(ghost.id).unwrap();
    }
    println!(
        "after save+delete batch: view.len() = {} (ghost row absent), batches = {}",
        view.len(),
        view.stats().batches
    );

    // 3. Probe: empty batch -> no dispatch, no batch counted.
    {
        let _batch = db.begin_batch();
    }
    // 4. Probe: nested batches flush once at the outermost guard.
    {
        let _outer = db.begin_batch();
        {
            let _inner = db.begin_batch();
            task(&db, "nested", "open");
        }
        println!(
            "inner guard dropped, view.len() = {} (still buffered)",
            view.len()
        );
    }
    let s = view.stats();
    println!(
        "after empty+nested batches: view.len() = {}, batches = {}, max_batch = {}",
        view.len(),
        s.batches,
        s.max_batch
    );

    // 5. Full rebuild (parallel path) and selection-cache counters.
    let rows_before: Vec<_> = view.rows().iter().map(|r| r.unid).collect();
    view.rebuild().unwrap();
    let rows_after: Vec<_> = view.rows().iter().map(|r| r.unid).collect();
    let s = view.stats();
    println!(
        "after rebuild: rows identical = {}, rebuilds = {}, selection cache hits = {}, misses = {}",
        rows_before == rows_after,
        s.rebuilds,
        s.selection_cache_hits,
        s.selection_cache_misses
    );

    // 6. Second view on the same design source -> compiled selection is shared.
    let view2 = View::attach(&db, design()).unwrap();
    let s2 = view2.stats();
    println!(
        "second view attach: len = {}, cache hits = {}, misses = {}",
        view2.len(),
        s2.selection_cache_hits,
        s2.selection_cache_misses
    );
}
