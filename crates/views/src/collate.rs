//! Order-preserving collation keys.
//!
//! View entries are kept in an ordered map whose keys are byte strings
//! built from the sorted columns' values: comparing the bytes
//! lexicographically gives exactly the view's collation order. Each
//! encoded field is *prefix-free* (escape + terminator), so fields
//! concatenate safely and a descending field is just the byte-wise
//! complement of its ascending encoding.
//!
//! Field layout: `[type rank][payload][terminator]` where
//!
//! * numbers encode as sign-flipped big-endian `f64` bits (total order),
//! * date/times as bias-shifted big-endian `i64`,
//! * text as lowercased bytes (case-insensitive primary weight) followed
//!   by the original bytes (case-sensitive tiebreak), `0x00` escaped,
//! * lists collate by their first element; empty values sort first.

use domino_types::Value;

/// Sort direction for one collation column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortDir {
    Ascending,
    Descending,
}

/// Append the order-preserving encoding of `v` (direction applied) to `out`.
pub fn encode_field(v: &Value, dir: SortDir, out: &mut Vec<u8>) {
    let start = out.len();
    encode_ascending(v, out);
    if dir == SortDir::Descending {
        for b in &mut out[start..] {
            *b = !*b;
        }
    }
}

fn encode_ascending(v: &Value, out: &mut Vec<u8>) {
    // Lists collate by first element; empty values get their own rank so
    // they sort before everything.
    let scalars = v.iter_scalars();
    let Some(first) = scalars.first() else {
        out.push(0x00);
        push_terminator(out);
        return;
    };
    match first {
        Value::Number(n) => {
            out.push(0x10);
            out.extend_from_slice(&order_f64(*n));
            push_terminator(out);
        }
        Value::DateTime(d) => {
            out.push(0x20);
            out.extend_from_slice(&((d.0 as u64) ^ (1 << 63)).to_be_bytes());
            push_terminator(out);
        }
        Value::Text(s) => {
            out.push(0x30);
            push_escaped(s.to_lowercase().as_bytes(), out);
            // Case-sensitive tiebreak after the primary weight.
            push_escaped(s.as_bytes(), out);
            push_terminator(out);
        }
        other => {
            // Rich text or anything else: raw display text.
            out.push(0x40);
            push_escaped(other.to_text().as_bytes(), out);
            push_terminator(out);
        }
    }
}

/// Map `f64` to bytes whose lexicographic order matches numeric order.
fn order_f64(n: f64) -> [u8; 8] {
    let bits = if n.is_nan() {
        f64::NAN.to_bits()
    } else {
        n.to_bits()
    };
    let flipped = if bits & (1 << 63) == 0 {
        bits | (1 << 63)
    } else {
        !bits
    };
    flipped.to_be_bytes()
}

/// Escape 0x00 as 0x00 0xFF so the 0x00 0x00 terminator stays unique.
fn push_escaped(bytes: &[u8], out: &mut Vec<u8>) {
    for b in bytes {
        if *b == 0x00 {
            out.push(0x00);
            out.push(0xFF);
        } else {
            out.push(*b);
        }
    }
    // Field-internal separator between primary and tiebreak sections.
    out.push(0x00);
    out.push(0xFE);
}

fn push_terminator(out: &mut Vec<u8>) {
    out.push(0x00);
    out.push(0x00);
}

/// Encode a full collation key: each `(value, dir)` column, then the UNID
/// as a unique ascending tiebreak.
pub fn encode_key(cols: &[(Value, SortDir)], unid: u128) -> Vec<u8> {
    let mut out = Vec::with_capacity(cols.len() * 16 + 16);
    for (v, dir) in cols {
        encode_field(v, *dir, &mut out);
    }
    out.extend_from_slice(&unid.to_be_bytes());
    out
}

/// Encode just a prefix (for range lookups: "all entries whose first
/// column is X").
pub fn encode_prefix(cols: &[(Value, SortDir)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (v, dir) in cols {
        encode_field(v, *dir, &mut out);
    }
    out
}

/// The smallest byte string strictly greater than every string starting
/// with `prefix` (for half-open range ends). `None` if the prefix is all
/// 0xFF (cannot overflow — callers then scan to the end).
pub fn prefix_upper_bound(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut ub = prefix.to_vec();
    while let Some(last) = ub.last() {
        if *last == 0xFF {
            ub.pop();
        } else {
            *ub.last_mut().expect("nonempty") += 1;
            return Some(ub);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_types::DateTime;

    fn key1(v: &Value, dir: SortDir) -> Vec<u8> {
        let mut out = Vec::new();
        encode_field(v, dir, &mut out);
        out
    }

    #[test]
    fn numbers_order() {
        let vals = [-1e9, -3.5, -0.0, 0.0, 0.25, 7.0, 1e12];
        for w in vals.windows(2) {
            let a = key1(&Value::Number(w[0]), SortDir::Ascending);
            let b = key1(&Value::Number(w[1]), SortDir::Ascending);
            assert!(a <= b, "{} !<= {}", w[0], w[1]);
        }
    }

    #[test]
    fn descending_reverses() {
        let a = key1(&Value::Number(1.0), SortDir::Descending);
        let b = key1(&Value::Number(2.0), SortDir::Descending);
        assert!(b < a);
        let t1 = key1(&Value::text("apple"), SortDir::Descending);
        let t2 = key1(&Value::text("banana"), SortDir::Descending);
        assert!(t2 < t1);
    }

    #[test]
    fn text_case_insensitive_primary_then_sensitive() {
        let a = key1(&Value::text("Apple"), SortDir::Ascending);
        let b = key1(&Value::text("banana"), SortDir::Ascending);
        assert!(a < b);
        // Same letters, different case: still a deterministic order.
        let x = key1(&Value::text("abc"), SortDir::Ascending);
        let y = key1(&Value::text("ABC"), SortDir::Ascending);
        assert_ne!(x, y);
        // And lowercase-equal strings stay adjacent: "ABC" < "abd" both ways.
        let z = key1(&Value::text("abd"), SortDir::Ascending);
        assert!(x < z && y < z);
    }

    #[test]
    fn text_with_nul_bytes_safe() {
        let a = key1(&Value::text("a\0b"), SortDir::Ascending);
        let b = key1(&Value::text("a"), SortDir::Ascending);
        let c = key1(&Value::text("a\0"), SortDir::Ascending);
        assert!(b < c && c <= a);
    }

    #[test]
    fn prefix_freedom_across_columns() {
        // ("ab", "c") must not interleave with ("abc", "") etc.
        let k1 = encode_key(
            &[
                (Value::text("ab"), SortDir::Ascending),
                (Value::text("zz"), SortDir::Ascending),
            ],
            1,
        );
        let k2 = encode_key(
            &[
                (Value::text("abz"), SortDir::Ascending),
                (Value::text("aa"), SortDir::Ascending),
            ],
            1,
        );
        assert!(k1 < k2, "shorter first column sorts first");
    }

    #[test]
    fn types_rank_number_datetime_text() {
        let n = key1(&Value::Number(1e18), SortDir::Ascending);
        let d = key1(&Value::DateTime(DateTime(i64::MIN)), SortDir::Ascending);
        let t = key1(&Value::text(""), SortDir::Ascending);
        assert!(n < d && d < t);
    }

    #[test]
    fn empty_list_sorts_first() {
        let e = key1(&Value::TextList(vec![]), SortDir::Ascending);
        let n = key1(&Value::Number(f64::MIN), SortDir::Ascending);
        assert!(e < n);
    }

    #[test]
    fn lists_collate_by_first_element() {
        let a = key1(&Value::text_list(["b", "a"]), SortDir::Ascending);
        let b = key1(&Value::text("b"), SortDir::Ascending);
        assert_eq!(a, b);
    }

    #[test]
    fn unid_tiebreak_distinguishes() {
        let cols = [(Value::text("same"), SortDir::Ascending)];
        let a = encode_key(&cols, 1);
        let b = encode_key(&cols, 2);
        assert!(a < b);
    }

    #[test]
    fn prefix_bounds() {
        let p = vec![0x30, b'a', 0x00, 0x00];
        let ub = prefix_upper_bound(&p).unwrap();
        assert!(ub > p);
        assert_eq!(prefix_upper_bound(&[0xFF, 0xFF]), None);
    }

    #[test]
    fn prefix_matches_full_keys() {
        let cols = [(Value::text("cat"), SortDir::Ascending)];
        let prefix = encode_prefix(&cols);
        let full = encode_key(&cols, 42);
        assert!(full.starts_with(&prefix));
        let other = encode_key(&[(Value::text("dog"), SortDir::Ascending)], 42);
        assert!(!other.starts_with(&prefix));
    }
}
