//! View designs: the stored query + collation definition.
//!
//! A view is defined by a *selection formula* (which documents appear), a
//! list of *columns* (what each row shows, with optional sorting,
//! categorization, and totals), and optional alternate *collations*
//! (resorting the same index by different columns, an R5 feature). Designs
//! are persisted as `View`-class design notes so they replicate with the
//! database.

use domino_core::Note;
use domino_formula::Formula;
use domino_types::{DominoError, NoteClass, Result, Value};

use crate::collate::SortDir;

/// One view column.
#[derive(Debug, Clone)]
pub struct ColumnSpec {
    pub title: String,
    /// Formula computing the column's value per document.
    pub formula: Formula,
    /// Sorting in the primary collation (in column order).
    pub sort: Option<SortDir>,
    /// Is this a category column? (must also be sorted)
    pub category: bool,
    /// Accumulate totals for this (numeric) column?
    pub total: bool,
}

impl ColumnSpec {
    pub fn new(title: &str, formula_src: &str) -> Result<ColumnSpec> {
        // Column formulas recur across views (Subject, Form, @Created...);
        // share the parse through the process-wide compile cache.
        let (formula, _) = Formula::compile_cached(formula_src)?;
        Ok(ColumnSpec {
            title: title.to_string(),
            formula,
            sort: None,
            category: false,
            total: false,
        })
    }

    pub fn sorted(mut self, dir: SortDir) -> ColumnSpec {
        self.sort = Some(dir);
        self
    }

    pub fn categorized(mut self) -> ColumnSpec {
        self.category = true;
        self.sort.get_or_insert(SortDir::Ascending);
        self
    }

    pub fn totaled(mut self) -> ColumnSpec {
        self.total = true;
        self
    }
}

/// An alternate collation: sort the same entries by these columns.
#[derive(Debug, Clone)]
pub struct Collation {
    /// `(column index, direction)` pairs, most-significant first.
    pub keys: Vec<(usize, SortDir)>,
}

/// A complete view design.
#[derive(Debug, Clone)]
pub struct ViewDesign {
    pub name: String,
    pub selection: Formula,
    pub columns: Vec<ColumnSpec>,
    /// Show response documents beneath their parents (set automatically
    /// when the selection formula uses `@AllDescendants`/`@AllChildren`).
    pub show_responses: bool,
    /// Alternate collations (primary is derived from column sort specs).
    pub alternates: Vec<Collation>,
}

impl ViewDesign {
    pub fn new(name: &str, selection_src: &str) -> Result<ViewDesign> {
        let (selection, _) = Formula::compile_cached(selection_src)?;
        let show_responses = selection.wants_descendants();
        Ok(ViewDesign {
            name: name.to_string(),
            selection,
            columns: Vec::new(),
            show_responses,
            alternates: Vec::new(),
        })
    }

    pub fn column(mut self, col: ColumnSpec) -> ViewDesign {
        self.columns.push(col);
        self
    }

    pub fn with_responses(mut self) -> ViewDesign {
        self.show_responses = true;
        self
    }

    pub fn alternate(mut self, keys: Vec<(usize, SortDir)>) -> ViewDesign {
        self.alternates.push(Collation { keys });
        self
    }

    /// The primary collation: sorted columns in column order. Unsorted
    /// views fall back to modified-time order (empty key list).
    pub fn primary_collation(&self) -> Collation {
        Collation {
            keys: self
                .columns
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.sort.map(|d| (i, d)))
                .collect(),
        }
    }

    /// All collations: primary first, then alternates.
    pub fn collations(&self) -> Vec<Collation> {
        let mut out = vec![self.primary_collation()];
        out.extend(self.alternates.iter().cloned());
        out
    }

    /// Validate: categories must be sorted and lead the collation;
    /// alternate collations must reference real columns.
    pub fn validate(&self) -> Result<()> {
        let mut seen_non_category = false;
        for c in &self.columns {
            if c.category {
                if c.sort.is_none() {
                    return Err(DominoError::InvalidArgument(format!(
                        "category column {:?} must be sorted",
                        c.title
                    )));
                }
                if seen_non_category && c.sort.is_some() {
                    return Err(DominoError::InvalidArgument(format!(
                        "category column {:?} must precede sorted data columns",
                        c.title
                    )));
                }
            } else if c.sort.is_some() {
                seen_non_category = true;
            }
        }
        for alt in &self.alternates {
            for (i, _) in &alt.keys {
                if *i >= self.columns.len() {
                    return Err(DominoError::InvalidArgument(format!(
                        "alternate collation references column {i} of {}",
                        self.columns.len()
                    )));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // persistence as a design note
    // ------------------------------------------------------------------

    /// Encode into a `View`-class design note.
    pub fn to_note(&self) -> Note {
        let mut n = Note::new(NoteClass::View);
        n.set("$TITLE", Value::text(self.name.clone()));
        n.set("Selection", Value::text(self.selection.source()));
        n.set("ShowResponses", Value::from(self.show_responses));
        let cols: Vec<String> = self.columns.iter().map(encode_column).collect();
        n.set("Columns", Value::text_list(cols));
        let alts: Vec<String> = self
            .alternates
            .iter()
            .map(|a| {
                a.keys
                    .iter()
                    .map(|(i, d)| {
                        format!("{i}{}", if *d == SortDir::Descending { "d" } else { "a" })
                    })
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .collect();
        if !alts.is_empty() {
            n.set("Collations", Value::text_list(alts));
        }
        n
    }

    /// Decode from a design note.
    pub fn from_note(note: &Note) -> Result<ViewDesign> {
        if note.class != NoteClass::View {
            return Err(DominoError::InvalidArgument(format!(
                "{:?} note is not a view design",
                note.class
            )));
        }
        let name = note
            .get_text("$TITLE")
            .ok_or_else(|| DominoError::Corrupt("view design missing $TITLE".into()))?;
        let selection_src = note
            .get_text("Selection")
            .ok_or_else(|| DominoError::Corrupt("view design missing Selection".into()))?;
        let mut design = ViewDesign::new(&name, &selection_src)?;
        if let Some(v) = note.get("ShowResponses") {
            design.show_responses = v.as_bool().unwrap_or(false) || design.show_responses;
        }
        if let Some(cols) = note.get("Columns") {
            for spec in cols.iter_scalars() {
                design.columns.push(decode_column(&spec.to_text())?);
            }
        }
        if let Some(alts) = note.get("Collations") {
            for alt in alts.iter_scalars() {
                let mut keys = Vec::new();
                for part in alt.to_text().split(',').filter(|s| !s.is_empty()) {
                    let (idx, dir) = part.split_at(part.len() - 1);
                    let i: usize = idx
                        .parse()
                        .map_err(|_| DominoError::Corrupt(format!("bad collation key {part:?}")))?;
                    let d = if dir == "d" {
                        SortDir::Descending
                    } else {
                        SortDir::Ascending
                    };
                    keys.push((i, d));
                }
                design.alternates.push(Collation { keys });
            }
        }
        Ok(design)
    }
}

fn encode_column(c: &ColumnSpec) -> String {
    let sort = match (c.category, c.sort) {
        (true, _) => "c",
        (false, Some(SortDir::Ascending)) => "a",
        (false, Some(SortDir::Descending)) => "d",
        (false, None) => "n",
    };
    let total = if c.total { "t" } else { "-" };
    // Title and formula are base-escaped with | replaced (titles/formulas
    // rarely contain |; escape defensively).
    format!(
        "{}|{}|{}|{}",
        sort,
        total,
        c.title.replace('|', "\u{1}"),
        c.formula.source().replace('|', "\u{1}")
    )
}

fn decode_column(s: &str) -> Result<ColumnSpec> {
    let parts: Vec<&str> = s.splitn(4, '|').collect();
    if parts.len() != 4 {
        return Err(DominoError::Corrupt(format!("bad column spec {s:?}")));
    }
    let title = parts[2].replace('\u{1}', "|");
    let src = parts[3].replace('\u{1}', "|");
    let mut col = ColumnSpec::new(&title, &src)?;
    match parts[0] {
        "c" => col = col.categorized(),
        "a" => col = col.sorted(SortDir::Ascending),
        "d" => col = col.sorted(SortDir::Descending),
        _ => {}
    }
    if parts[1] == "t" {
        col = col.totaled();
    }
    Ok(col)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ViewDesign {
        ViewDesign::new("By Status", r#"SELECT Form = "Task""#)
            .unwrap()
            .column(ColumnSpec::new("Status", "Status").unwrap().categorized())
            .column(
                ColumnSpec::new("Priority", "Priority")
                    .unwrap()
                    .sorted(SortDir::Descending),
            )
            .column(ColumnSpec::new("Subject", "Subject").unwrap())
            .column(ColumnSpec::new("Hours", "Hours").unwrap().totaled())
            .alternate(vec![(2, SortDir::Ascending)])
    }

    #[test]
    fn primary_collation_from_sorted_columns() {
        let d = sample();
        let c = d.primary_collation();
        assert_eq!(
            c.keys,
            vec![(0, SortDir::Ascending), (1, SortDir::Descending)]
        );
        assert_eq!(d.collations().len(), 2);
    }

    #[test]
    fn validate_accepts_sample() {
        sample().validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_alternate() {
        let d = ViewDesign::new("v", "SELECT @All")
            .unwrap()
            .column(ColumnSpec::new("A", "A").unwrap())
            .alternate(vec![(5, SortDir::Ascending)]);
        assert!(d.validate().is_err());
    }

    #[test]
    fn validate_rejects_category_after_data_sort() {
        let d = ViewDesign::new("v", "SELECT @All")
            .unwrap()
            .column(
                ColumnSpec::new("A", "A")
                    .unwrap()
                    .sorted(SortDir::Ascending),
            )
            .column(ColumnSpec::new("B", "B").unwrap().categorized());
        assert!(d.validate().is_err());
    }

    #[test]
    fn responses_flag_from_formula() {
        let d = ViewDesign::new("t", "SELECT Form = \"Main\" | @AllDescendants").unwrap();
        assert!(d.show_responses);
        let e = ViewDesign::new("t", "SELECT @All").unwrap();
        assert!(!e.show_responses);
    }

    #[test]
    fn note_roundtrip() {
        let d = sample();
        let note = d.to_note();
        let back = ViewDesign::from_note(&note).unwrap();
        assert_eq!(back.name, d.name);
        assert_eq!(back.selection.source(), d.selection.source());
        assert_eq!(back.columns.len(), 4);
        assert!(back.columns[0].category);
        assert_eq!(back.columns[1].sort, Some(SortDir::Descending));
        assert!(back.columns[3].total);
        assert_eq!(back.alternates.len(), 1);
        assert_eq!(back.alternates[0].keys, vec![(2, SortDir::Ascending)]);
    }

    #[test]
    fn column_spec_with_pipes_roundtrips() {
        let c = ColumnSpec::new("A|B", r#"@If(X = 1; "a"; "b")"#).unwrap();
        let back = decode_column(&encode_column(&c)).unwrap();
        assert_eq!(back.title, "A|B");
        assert_eq!(back.formula.source(), c.formula.source());
    }

    #[test]
    fn from_note_rejects_wrong_class() {
        let n = Note::document("X");
        assert!(ViewDesign::from_note(&n).is_err());
    }
}
