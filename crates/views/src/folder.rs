//! Folders: user-curated document collections.
//!
//! A folder is a view without a selection formula — membership is explicit
//! (drag-and-drop in the Notes client). We store a folder as a `View`-class
//! design note whose `Members` item lists document UNIDs, so folders
//! replicate (and conflict) like any other note.

use std::sync::Arc;

use domino_core::{Database, Note};
use domino_types::{DominoError, NoteClass, Result, Unid, Value};

const FOLDER_TYPE: &str = "Folder";

/// A handle to a stored folder.
pub struct Folder {
    db: Arc<Database>,
    unid: Unid,
}

impl std::fmt::Debug for Folder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Folder").field("unid", &self.unid).finish()
    }
}

impl Folder {
    /// Create a folder (error if the name is taken by another folder).
    pub fn create(db: &Arc<Database>, name: &str) -> Result<Folder> {
        if find_folder_note(db, name)?.is_some() {
            return Err(DominoError::AlreadyExists(format!("folder {name:?}")));
        }
        let mut note = Note::new(NoteClass::View);
        note.set("$TITLE", Value::text(name));
        note.set("Type", Value::text(FOLDER_TYPE));
        note.set("Members", Value::TextList(Vec::new()));
        db.save(&mut note)?;
        Ok(Folder {
            db: db.clone(),
            unid: note.unid(),
        })
    }

    /// Open an existing folder by name.
    pub fn open(db: &Arc<Database>, name: &str) -> Result<Folder> {
        let note = find_folder_note(db, name)?
            .ok_or_else(|| DominoError::NotFound(format!("folder {name:?}")))?;
        Ok(Folder {
            db: db.clone(),
            unid: note.unid(),
        })
    }

    fn load(&self) -> Result<Note> {
        self.db.open_by_unid(self.unid)
    }

    pub fn name(&self) -> Result<String> {
        Ok(self.load()?.get_text("$TITLE").unwrap_or_default())
    }

    fn members_of(note: &Note) -> Vec<Unid> {
        note.get("Members")
            .map(|v| {
                v.iter_scalars()
                    .iter()
                    .filter_map(|s| u128::from_str_radix(&s.to_text(), 16).ok().map(Unid))
                    .collect()
            })
            .unwrap_or_default()
    }

    fn store_members(&self, members: &[Unid]) -> Result<()> {
        let mut note = self.load()?;
        note.set(
            "Members",
            Value::TextList(members.iter().map(|u| format!("{:032X}", u.0)).collect()),
        );
        self.db.save(&mut note)
    }

    /// Add a document (no-op if already present). The document must exist.
    pub fn add(&self, unid: Unid) -> Result<()> {
        self.db.open_by_unid(unid)?; // must be a live document
        let mut members = Self::members_of(&self.load()?);
        if members.contains(&unid) {
            return Ok(());
        }
        members.push(unid);
        self.store_members(&members)
    }

    /// Remove a document; returns whether it was present.
    pub fn remove(&self, unid: Unid) -> Result<bool> {
        let mut members = Self::members_of(&self.load()?);
        let before = members.len();
        members.retain(|m| *m != unid);
        if members.len() == before {
            return Ok(false);
        }
        self.store_members(&members)?;
        Ok(true)
    }

    /// Member UNIDs in folder order. Members whose documents have since
    /// been deleted are skipped (the stub stays in the list until
    /// [`Folder::prune`]).
    pub fn members(&self) -> Result<Vec<Unid>> {
        Ok(Self::members_of(&self.load()?))
    }

    /// The live documents, in folder order.
    pub fn documents(&self) -> Result<Vec<Note>> {
        let mut out = Vec::new();
        for unid in self.members()? {
            if let Ok(doc) = self.db.open_by_unid(unid) {
                out.push(doc);
            }
        }
        Ok(out)
    }

    pub fn len(&self) -> Result<usize> {
        Ok(self.members()?.len())
    }

    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.members()?.is_empty())
    }

    /// Drop members whose documents no longer exist. Returns how many were
    /// pruned.
    pub fn prune(&self) -> Result<usize> {
        let members = self.members()?;
        let live: Vec<Unid> = members
            .iter()
            .copied()
            .filter(|u| self.db.open_by_unid(*u).is_ok())
            .collect();
        let pruned = members.len() - live.len();
        if pruned > 0 {
            self.store_members(&live)?;
        }
        Ok(pruned)
    }
}

fn find_folder_note(db: &Database, name: &str) -> Result<Option<Note>> {
    for id in db.note_ids(Some(NoteClass::View))? {
        let note = db.open_note(id)?;
        if note.get_text("Type").as_deref() == Some(FOLDER_TYPE)
            && note.get_text("$TITLE").as_deref() == Some(name)
        {
            return Ok(Some(note));
        }
    }
    Ok(None)
}

/// Names of every folder in the database.
pub fn list_folders(db: &Database) -> Result<Vec<String>> {
    let mut out = Vec::new();
    for id in db.note_ids(Some(NoteClass::View))? {
        let note = db.open_note(id)?;
        if note.get_text("Type").as_deref() == Some(FOLDER_TYPE) {
            out.push(note.get_text("$TITLE").unwrap_or_default());
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_core::DbConfig;
    use domino_types::{LogicalClock, ReplicaId};

    fn db() -> Arc<Database> {
        Arc::new(
            Database::open_in_memory(
                DbConfig::new("T", ReplicaId(1), ReplicaId(2)),
                LogicalClock::new(),
            )
            .unwrap(),
        )
    }

    fn doc(db: &Database, subject: &str) -> Note {
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text(subject));
        db.save(&mut n).unwrap();
        n
    }

    #[test]
    fn create_open_add_remove() {
        let db = db();
        let folder = Folder::create(&db, "To Do").unwrap();
        let a = doc(&db, "first");
        let b = doc(&db, "second");
        folder.add(a.unid()).unwrap();
        folder.add(b.unid()).unwrap();
        folder.add(a.unid()).unwrap(); // dedup
        assert_eq!(folder.len().unwrap(), 2);
        let again = Folder::open(&db, "To Do").unwrap();
        let subjects: Vec<String> = again
            .documents()
            .unwrap()
            .iter()
            .map(|d| d.get_text("Subject").unwrap())
            .collect();
        assert_eq!(subjects, vec!["first", "second"], "folder order preserved");
        assert!(again.remove(a.unid()).unwrap());
        assert!(!again.remove(a.unid()).unwrap());
        assert_eq!(again.len().unwrap(), 1);
    }

    #[test]
    fn duplicate_names_rejected() {
        let db = db();
        Folder::create(&db, "X").unwrap();
        assert_eq!(
            Folder::create(&db, "X").unwrap_err().kind(),
            "already_exists"
        );
        assert!(Folder::open(&db, "missing").is_err());
    }

    #[test]
    fn adding_missing_document_fails() {
        let db = db();
        let folder = Folder::create(&db, "F").unwrap();
        assert!(folder.add(domino_types::Unid(0xDEAD)).is_err());
    }

    #[test]
    fn deleted_documents_skip_and_prune() {
        let db = db();
        let folder = Folder::create(&db, "F").unwrap();
        let a = doc(&db, "keep");
        let b = doc(&db, "delete-me");
        folder.add(a.unid()).unwrap();
        folder.add(b.unid()).unwrap();
        db.delete(b.id).unwrap();
        assert_eq!(folder.documents().unwrap().len(), 1);
        assert_eq!(folder.members().unwrap().len(), 2, "stub member lingers");
        assert_eq!(folder.prune().unwrap(), 1);
        assert_eq!(folder.members().unwrap().len(), 1);
    }

    #[test]
    fn list_folders_excludes_views() {
        let db = db();
        Folder::create(&db, "B-folder").unwrap();
        Folder::create(&db, "A-folder").unwrap();
        // A real view design note must not appear.
        let design = crate::ViewDesign::new("a view", "SELECT @All").unwrap();
        let mut note = design.to_note();
        db.save(&mut note).unwrap();
        assert_eq!(list_folders(&db).unwrap(), vec!["A-folder", "B-folder"]);
    }

    #[test]
    fn folders_replicate_as_notes() {
        let a = db();
        let b = Arc::new(
            Database::open_in_memory(
                DbConfig::new("T", ReplicaId(1), ReplicaId(3)),
                LogicalClock::starting_at(domino_types::Timestamp(50)),
            )
            .unwrap(),
        );
        let folder = Folder::create(&a, "Shared").unwrap();
        let d = doc(&a, "in folder");
        folder.add(d.unid()).unwrap();
        for c in a.changed_since(domino_types::Timestamp::ZERO).unwrap() {
            b.save_replicated(a.open_note(c.id).unwrap()).unwrap();
        }
        let remote = Folder::open(&b, "Shared").unwrap();
        assert_eq!(remote.members().unwrap(), vec![d.unid()]);
    }
}
