//! The view index: ordered, incrementally-maintained query results.
//!
//! A [`ViewIndex`] holds one [`ViewEntry`] per selected document, placed in
//! one ordered map per collation (primary + alternates). Maintenance is
//! incremental: each database [`ChangeEvent`] re-evaluates just the changed
//! document — the property E3 measures against full rebuilds.
//!
//! Response documents (when the design shows them) sort *under their
//! parent*: a response's key is its parent's full key extended with a
//! response marker and the response's own creation stamp, giving the
//! indented-thread order Notes views display. Re-keying cascades when a
//! parent moves.
//!
//! # The parallel indexing pipeline
//!
//! [`ViewIndex::rebuild`] splits work into a *parallel evaluate* phase and
//! a *sequential merge* phase. Selection and column formulas are pure, so
//! every main (parentless) document is evaluated on a rayon worker; the
//! per-collation orders are then bulk-built from pre-sorted `(key, unid)`
//! vectors instead of one `BTreeMap::insert` per document. Response
//! placement stays sequential (a response's key embeds its parent's key,
//! so subtrees are inherently ordered work); [`ViewIndex::rebuild_sequential`]
//! keeps the single-threaded path as the reference the equivalence
//! property test compares against — both produce byte-identical collation
//! orders and entries.
//!
//! [`ViewIndex::apply_batch`] is the incremental analogue: a slice of
//! change events (one coalesced database commit batch) is pre-evaluated in
//! parallel, then merged in event order. Merging in order is what makes
//! batching safe: the observable state equals applying the events one at a
//! time.
//!
//! The selection formula is fetched through the process-wide compiled-
//! formula cache ([`domino_formula::cache`]) at every rebuild and batch
//! application, so one parse is shared across views, workers, and apply
//! calls; per-view hit/miss counts land in [`ViewStats`].

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::OnceLock;
use std::time::Instant;

use rayon::prelude::*;

use domino_core::{ChangeEvent, Note};
use domino_formula::{EvalEnv, Formula};
use domino_obs as obs;
use domino_types::{NoteClass, NoteId, Result, Timestamp, Unid, Value};

/// Process-wide registry mirrors of [`ViewStats`] (which stays per-view
/// and exact). The selection-cache counters here aggregate *view-side*
/// lookups across every view in the process; `Formula.Cache.*` counts the
/// cache's own process-wide traffic — both derive from the same
/// `compile_cached` verdict, so the two surfaces correlate.
struct Metrics {
    rebuilds: &'static obs::Counter,
    rebuild_millis: &'static obs::Histogram,
    evaluated: &'static obs::Counter,
    placed: &'static obs::Counter,
    removed: &'static obs::Counter,
    batches: &'static obs::Counter,
    batch_events: &'static obs::Counter,
    batch_size: &'static obs::Histogram,
    cache_hits: &'static obs::Counter,
    cache_misses: &'static obs::Counter,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        rebuilds: obs::counter("View.Rebuilds"),
        rebuild_millis: obs::histogram("View.Rebuild.Millis"),
        evaluated: obs::counter("View.Documents.Evaluated"),
        placed: obs::counter("View.Entries.Placed"),
        removed: obs::counter("View.Entries.Removed"),
        batches: obs::counter("View.Batches"),
        batch_events: obs::counter("View.Batch.Events"),
        batch_size: obs::histogram("View.Batch.Size"),
        cache_hits: obs::counter("View.SelectionCache.Hits"),
        cache_misses: obs::counter("View.SelectionCache.Misses"),
    })
}

use crate::collate::{encode_key, encode_prefix, prefix_upper_bound, SortDir};
use crate::design::{Collation, ViewDesign};

/// Where the index gets documents it must re-evaluate (parents/children of
/// changed notes).
pub trait NoteSource {
    fn note_by_unid(&self, unid: Unid) -> Option<Note>;
}

/// A no-op source for flat views (no response re-keying ever needed).
pub struct NoSource;

impl NoteSource for NoSource {
    fn note_by_unid(&self, _unid: Unid) -> Option<Note> {
        None
    }
}

/// One row of the view.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewEntry {
    pub unid: Unid,
    pub note_id: NoteId,
    /// Computed column values, one per design column.
    pub values: Vec<Value>,
    /// 0 = main document, 1 = response, 2 = response-to-response...
    pub response_level: u32,
    pub parent: Option<Unid>,
    created: Timestamp,
}

/// Maintenance counters (E3/E4 read these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ViewStats {
    /// Documents evaluated against the selection formula.
    pub evaluated: u64,
    /// Entries inserted or re-keyed.
    pub placed: u64,
    /// Entries removed.
    pub removed: u64,
    /// Full rebuilds performed.
    pub rebuilds: u64,
    /// Compiled-selection cache hits (one lookup per rebuild/batch).
    pub selection_cache_hits: u64,
    /// Compiled-selection cache misses.
    pub selection_cache_misses: u64,
    /// `apply_batch` calls.
    pub batches: u64,
    /// Total change events across all batches.
    pub batch_events: u64,
    /// Largest single batch seen.
    pub max_batch: u64,
}

/// A category rollup row.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryRow {
    /// The category value path (one element per category column).
    pub path: Vec<Value>,
    /// Documents under this category.
    pub count: usize,
    /// Sums for each `total`-marked column (by column index).
    pub totals: Vec<(usize, f64)>,
}

/// A document's selection verdict and (if possibly included) column
/// values, computed ahead of the sequential merge — the unit of work the
/// parallel evaluate phase produces.
struct PreEval {
    selected: bool,
    /// `None` when the evaluate phase skipped column computation (the
    /// merge computes them lazily if inclusion turns out true).
    values: Option<Vec<Value>>,
}

pub struct ViewIndex {
    design: ViewDesign,
    /// The selection formula, fetched through the process-wide compile
    /// cache and shared (via `Arc`'d program) with parallel workers.
    selection: Formula,
    env: EvalEnv,
    entries: HashMap<Unid, ViewEntry>,
    /// One ordered map per collation: encoded key -> unid.
    orders: Vec<BTreeMap<Vec<u8>, Unid>>,
    /// unid -> its current key in each collation.
    keys: HashMap<Unid, Vec<Vec<u8>>>,
    /// parent unid -> response unids present in the view.
    children: HashMap<Unid, HashSet<Unid>>,
    stats: ViewStats,
    /// Bumped on every mutation (apply, non-empty batch, rebuild). Pages
    /// read at equal versions saw byte-identical index state, which is
    /// what lets the HTTP command cache key on it.
    version: u64,
}

impl ViewIndex {
    pub fn new(design: ViewDesign, env: EvalEnv) -> Result<ViewIndex> {
        design.validate()?;
        let n_collations = design.collations().len();
        let mut stats = ViewStats::default();
        let selection = Self::cached_selection(&design, &mut stats)?;
        Ok(ViewIndex {
            design,
            selection,
            env,
            entries: HashMap::new(),
            orders: vec![BTreeMap::new(); n_collations],
            keys: HashMap::new(),
            children: HashMap::new(),
            stats,
            version: 0,
        })
    }

    fn cached_selection(design: &ViewDesign, stats: &mut ViewStats) -> Result<Formula> {
        let (f, hit) = Formula::compile_cached(design.selection.source())?;
        // Per-view and registry counters both derive from this one
        // verdict: hits and misses are accounted at the same place, at
        // the same granularity (one count per view-side lookup).
        if hit {
            stats.selection_cache_hits += 1;
            m().cache_hits.inc();
        } else {
            stats.selection_cache_misses += 1;
            m().cache_misses.inc();
        }
        Ok(f)
    }

    /// Re-fetch the selection from the compile cache (hit after the first
    /// fetch anywhere in the process; the counters in [`ViewStats`] make
    /// the sharing observable).
    fn refresh_selection(&mut self) -> Result<()> {
        self.selection = Self::cached_selection(&self.design, &mut self.stats)?;
        Ok(())
    }

    pub fn design(&self) -> &ViewDesign {
        &self.design
    }

    pub fn stats(&self) -> ViewStats {
        self.stats
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn version(&self) -> u64 {
        self.version
    }

    // ------------------------------------------------------------------
    // maintenance
    // ------------------------------------------------------------------

    /// Apply one database change.
    pub fn apply(&mut self, event: &ChangeEvent, src: &dyn NoteSource) -> Result<()> {
        self.version += 1;
        match event {
            ChangeEvent::Saved { new, .. } => self.consider(new, src),
            ChangeEvent::Deleted { old, .. } => {
                self.remove_entry(old.unid());
                self.reconsider_children(old.unid(), src)
            }
        }
    }

    /// Apply a slice of change events — one coalesced commit batch.
    ///
    /// The batch is pre-evaluated in parallel (selection verdict plus, for
    /// selected documents, column values), then merged strictly in event
    /// order, so the result is identical to applying each event through
    /// [`ViewIndex::apply`] one at a time. Deletions and response
    /// adoption (inclusion through a parent already in the view) are
    /// resolved during the sequential merge because they depend on index
    /// state as of their position in the batch.
    pub fn apply_batch(&mut self, events: &[ChangeEvent], src: &dyn NoteSource) -> Result<()> {
        self.stats.batches += 1;
        self.stats.batch_events += events.len() as u64;
        self.stats.max_batch = self.stats.max_batch.max(events.len() as u64);
        m().batches.inc();
        m().batch_events.add(events.len() as u64);
        m().batch_size.record(events.len() as u64);
        let _span = obs::span!("View.ApplyBatch");
        if events.is_empty() {
            return Ok(());
        }
        self.version += 1;
        self.refresh_selection()?;
        let selection = &self.selection;
        let env = &self.env;
        let design = &self.design;
        let pre: Result<Vec<Option<PreEval>>> = events
            .par_iter()
            .map(|event| -> Result<Option<PreEval>> {
                let note = match event {
                    ChangeEvent::Saved { new, .. } => new,
                    ChangeEvent::Deleted { .. } => return Ok(None),
                };
                if note.class != NoteClass::Document {
                    return Ok(None);
                }
                let out = selection.eval_full(note, env)?;
                // Columns for selected documents only: an unselected
                // response may still ride in under its parent, but that
                // depends on merge-time state — the merge computes its
                // columns lazily, exactly as the one-event path would.
                let values = if out.selected {
                    let mut v = Vec::with_capacity(design.columns.len());
                    for col in &design.columns {
                        v.push(col.formula.eval(note, env)?);
                    }
                    Some(v)
                } else {
                    None
                };
                Ok(Some(PreEval {
                    selected: out.selected,
                    values,
                }))
            })
            .collect();
        let pre = pre?;
        for (event, p) in events.iter().zip(pre) {
            match event {
                ChangeEvent::Saved { new, .. } => self.consider_pre(new, p, src)?,
                ChangeEvent::Deleted { old, .. } => {
                    self.remove_entry(old.unid());
                    self.reconsider_children(old.unid(), src)?;
                }
            }
        }
        Ok(())
    }

    /// Rebuild from scratch over `docs` (selection + keys recomputed for
    /// every document), evaluating main documents on parallel workers.
    ///
    /// Main documents key independently of each other, so their selection
    /// verdicts, column values, and collation keys are all computed in
    /// parallel; the per-collation `BTreeMap`s are then bulk-built from
    /// pre-sorted `(key, unid)` vectors. Responses key under their parent
    /// and are placed sequentially, shallow-to-deep (see
    /// `ViewIndex::place_responses`).
    pub fn rebuild<'a>(
        &mut self,
        docs: impl IntoIterator<Item = &'a Note>,
        src: &dyn NoteSource,
    ) -> Result<()> {
        let started = Instant::now();
        let _span = obs::span!("View.Rebuild");
        self.clear_state();
        self.stats.rebuilds += 1;
        m().rebuilds.inc();
        self.refresh_selection()?;
        let mut mains: Vec<&Note> = Vec::new();
        let mut responses: Vec<&Note> = Vec::new();
        for n in docs {
            if n.parent().is_none() {
                mains.push(n);
            } else {
                responses.push(n);
            }
        }

        // Evaluate phase: selection, columns, and keys for every main, in
        // parallel. Shared state is all read-only (`Formula` programs are
        // `Arc`'d plain data; `EvalEnv`/`ViewDesign` are owned by `self`).
        enum MainEval {
            /// Non-document note classes are never evaluated.
            Skip,
            Evaluated,
            Placed(ViewEntry, Vec<Vec<u8>>),
        }
        let selection = &self.selection;
        let env = &self.env;
        let design = &self.design;
        let collations = design.collations();
        let evals: Result<Vec<MainEval>> = mains
            .par_iter()
            .map(|note| -> Result<MainEval> {
                if note.class != NoteClass::Document {
                    return Ok(MainEval::Skip);
                }
                let out = selection.eval_full(*note, env)?;
                if !out.selected {
                    return Ok(MainEval::Evaluated);
                }
                let mut values = Vec::with_capacity(design.columns.len());
                for col in &design.columns {
                    values.push(col.formula.eval(*note, env)?);
                }
                let entry = ViewEntry {
                    unid: note.unid(),
                    note_id: note.id,
                    values,
                    response_level: 0,
                    parent: None,
                    created: note.created,
                };
                let keys = Self::main_keys(&collations, &entry);
                Ok(MainEval::Placed(entry, keys))
            })
            .collect();

        // Merge phase: account stats, fill the entry/key maps, and
        // bulk-load each collation order from a pre-sorted vector (one
        // sort + linear build instead of n log n tree inserts).
        let mut per_coll: Vec<Vec<(Vec<u8>, Unid)>> =
            self.orders.iter().map(|_| Vec::new()).collect();
        let mut evaluated = 0u64;
        let mut placed = 0u64;
        for ev in evals? {
            match ev {
                MainEval::Skip => {}
                MainEval::Evaluated => evaluated += 1,
                MainEval::Placed(entry, keys) => {
                    evaluated += 1;
                    placed += 1;
                    for (ci, k) in keys.iter().enumerate() {
                        per_coll[ci].push((k.clone(), entry.unid));
                    }
                    self.keys.insert(entry.unid, keys);
                    self.entries.insert(entry.unid, entry);
                }
            }
        }
        self.stats.evaluated += evaluated;
        self.stats.placed += placed;
        m().evaluated.add(evaluated);
        m().placed.add(placed);
        for (ci, mut pairs) in per_coll.into_iter().enumerate() {
            pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            self.orders[ci] = BTreeMap::from_iter(pairs);
        }

        let result = self.place_responses(responses, src);
        m().rebuild_millis.record_millis(started.elapsed());
        result
    }

    /// Single-threaded rebuild, kept as the reference implementation: the
    /// equivalence property test asserts [`ViewIndex::rebuild`] produces
    /// byte-identical orders/entries, and E3 benchmarks the two against
    /// each other.
    pub fn rebuild_sequential<'a>(
        &mut self,
        docs: impl IntoIterator<Item = &'a Note>,
        src: &dyn NoteSource,
    ) -> Result<()> {
        let started = Instant::now();
        let _span = obs::span!("View.RebuildSequential");
        self.clear_state();
        self.stats.rebuilds += 1;
        m().rebuilds.inc();
        self.refresh_selection()?;
        // Mains first, then responses shallow-to-deep so parents exist when
        // children key themselves.
        let mut pending: Vec<&Note> = Vec::new();
        for n in docs {
            if n.parent().is_none() {
                self.consider(n, src)?;
            } else {
                pending.push(n);
            }
        }
        let result = self.place_responses(pending, src);
        m().rebuild_millis.record_millis(started.elapsed());
        result
    }

    fn clear_state(&mut self) {
        self.version += 1;
        self.entries.clear();
        for o in &mut self.orders {
            o.clear();
        }
        self.keys.clear();
        self.children.clear();
    }

    /// Place response documents in depth passes: each pass places the
    /// responses whose parent is already in the view, until no pass makes
    /// progress; the stragglers are orphans (parent excluded or missing),
    /// included by their own selection merit only.
    ///
    /// Each pass compacts the carry-over in place (index-swap retain)
    /// rather than allocating a fresh vector per pass.
    fn place_responses(&mut self, pending: Vec<&Note>, src: &dyn NoteSource) -> Result<()> {
        let mut remaining = pending;
        loop {
            let before = remaining.len();
            if before == 0 {
                return Ok(());
            }
            let mut kept = 0;
            for i in 0..before {
                let n = remaining[i];
                let parent_in = n
                    .parent()
                    .map(|p| self.entries.contains_key(&p))
                    .unwrap_or(false);
                if parent_in {
                    self.consider(n, src)?;
                } else {
                    remaining[kept] = n;
                    kept += 1;
                }
            }
            remaining.truncate(kept);
            if remaining.len() == before {
                for n in remaining {
                    self.consider(n, src)?;
                }
                return Ok(());
            }
        }
    }

    /// Evaluate one document and place/remove it.
    fn consider(&mut self, note: &Note, src: &dyn NoteSource) -> Result<()> {
        self.consider_pre(note, None, src)
    }

    /// Like [`ViewIndex::consider`], but reusing a pre-computed selection
    /// verdict / column values when the parallel evaluate phase supplied
    /// them.
    fn consider_pre(
        &mut self,
        note: &Note,
        pre: Option<PreEval>,
        src: &dyn NoteSource,
    ) -> Result<()> {
        if note.class != NoteClass::Document {
            return Ok(());
        }
        self.stats.evaluated += 1;
        m().evaluated.inc();
        let (selected, precomputed) = match pre {
            Some(p) => (p.selected, p.values),
            None => (self.selection.eval_full(note, &self.env)?.selected, None),
        };
        let parent = note.parent();
        // Track the response linkage for *every* evaluated response, even
        // ones not (yet) included: if the parent enters the view later,
        // re-keying must find this child and pull it in.
        if let Some(p) = parent {
            if self.design.show_responses {
                self.children.entry(p).or_default().insert(note.unid());
            }
        }
        let included = selected
            || (self.design.show_responses
                && parent
                    .map(|p| self.entries.contains_key(&p))
                    .unwrap_or(false));
        if !included {
            self.remove_entry(note.unid());
            self.reconsider_children(note.unid(), src)?;
            return Ok(());
        }
        // Compute column values (unless the parallel phase already did).
        let values = match precomputed {
            Some(v) => v,
            None => {
                let mut values = Vec::with_capacity(self.design.columns.len());
                for col in &self.design.columns {
                    values.push(col.formula.eval(note, &self.env)?);
                }
                values
            }
        };
        let (response_level, parent_in_view) = match parent {
            Some(p) if self.design.show_responses => match self.entries.get(&p) {
                Some(pe) => (pe.response_level + 1, true),
                None => (0, false),
            },
            _ => (0, false),
        };
        let entry = ViewEntry {
            unid: note.unid(),
            note_id: note.id,
            values,
            response_level,
            parent: if parent_in_view { parent } else { None },
            created: note.created,
        };
        self.place(entry);
        self.rekey_descendants(note.unid(), src)?;
        Ok(())
    }

    /// Insert or move an entry in every collation order.
    fn place(&mut self, entry: ViewEntry) {
        let unid = entry.unid;
        self.remove_from_orders(unid);
        let keys = self.compute_keys(&entry);
        for (order, key) in self.orders.iter_mut().zip(keys.iter()) {
            order.insert(key.clone(), unid);
        }
        self.keys.insert(unid, keys);
        self.entries.insert(unid, entry);
        self.stats.placed += 1;
        m().placed.inc();
    }

    fn compute_keys(&self, entry: &ViewEntry) -> Vec<Vec<u8>> {
        if let Some(parent) = entry.parent {
            if let Some(parent_keys) = self.keys.get(&parent) {
                // Responses nest under their parent's key.
                return parent_keys
                    .iter()
                    .map(|pk| {
                        let mut k = pk.clone();
                        k.push(0x01); // response marker: sorts after parent,
                                      // before the next main entry
                        k.extend_from_slice(&entry.created.0.to_be_bytes());
                        k.extend_from_slice(&entry.unid.0.to_be_bytes());
                        k
                    })
                    .collect();
            }
        }
        Self::main_keys(&self.design.collations(), entry)
    }

    /// Collation keys for a main (top-level) entry. A free function of the
    /// design so the parallel rebuild workers can key entries without
    /// touching index state; `compute_keys` delegates here, keeping the
    /// bytes identical between the parallel and incremental paths.
    fn main_keys(collations: &[Collation], entry: &ViewEntry) -> Vec<Vec<u8>> {
        collations
            .iter()
            .map(|collation| {
                let cols: Vec<(Value, SortDir)> = collation
                    .keys
                    .iter()
                    .map(|(i, d)| (entry.values[*i].clone(), *d))
                    .collect();
                let mut k = encode_key(&cols, entry.unid.0);
                // Main entries get a 0x00 "main" marker so a response
                // (parent key + 0x01) can never collide with the next main
                // key.
                k.push(0x00);
                k
            })
            .collect()
    }

    fn remove_from_orders(&mut self, unid: Unid) {
        if let Some(keys) = self.keys.remove(&unid) {
            for (order, key) in self.orders.iter_mut().zip(keys.iter()) {
                order.remove(key);
            }
        }
    }

    fn remove_entry(&mut self, unid: Unid) {
        self.remove_from_orders(unid);
        if self.entries.remove(&unid).is_some() {
            // Note: the `children` linkage deliberately survives — it maps
            // the documents' $REF structure, not view membership, so a
            // parent re-entering the view can re-adopt responses that were
            // excluded alongside it. Stale links to deleted documents are
            // harmless (re-evaluation finds no note and drops them).
            self.stats.removed += 1;
            m().removed.inc();
        }
    }

    /// Parent moved or vanished: recompute each child's inclusion and key.
    fn reconsider_children(&mut self, parent: Unid, src: &dyn NoteSource) -> Result<()> {
        let kids: Vec<Unid> = self
            .children
            .get(&parent)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for kid in kids {
            if let Some(note) = src.note_by_unid(kid) {
                self.consider(&note, src)?;
            } else {
                self.remove_entry(kid);
            }
        }
        Ok(())
    }

    /// Re-key descendants after their ancestor moved.
    fn rekey_descendants(&mut self, parent: Unid, src: &dyn NoteSource) -> Result<()> {
        self.rekey_descendants_depth(parent, src, 0)
    }

    fn rekey_descendants_depth(
        &mut self,
        parent: Unid,
        src: &dyn NoteSource,
        depth: u32,
    ) -> Result<()> {
        // A $REF cycle would otherwise recurse forever; Notes caps response
        // nesting at 32 levels, so do we.
        if depth > 32 {
            return Ok(());
        }
        let kids: Vec<Unid> = self
            .children
            .get(&parent)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for kid in kids {
            if let Some(mut entry) = self.entries.get(&kid).cloned() {
                // Parent may have just appeared: adopt it.
                let parent_level = self.entries.get(&parent).map(|p| p.response_level);
                if let Some(pl) = parent_level {
                    entry.parent = Some(parent);
                    entry.response_level = pl + 1;
                    self.place(entry);
                    self.rekey_descendants_depth(kid, src, depth + 1)?;
                }
            } else if let Some(note) = src.note_by_unid(kid) {
                // Child known but not in view (arrived before parent).
                self.consider(&note, src)?;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // reads
    // ------------------------------------------------------------------

    /// Entries in collation order.
    pub fn entries(&self, collation: usize) -> Vec<&ViewEntry> {
        self.orders[collation]
            .values()
            .map(|u| &self.entries[u])
            .collect()
    }

    /// Entry lookup by unid.
    pub fn entry(&self, unid: Unid) -> Option<&ViewEntry> {
        self.entries.get(&unid)
    }

    /// The encoded collation keys in order — diagnostics, and the
    /// byte-identity assertion in the parallel/sequential equivalence
    /// property test.
    pub fn order_keys(&self, collation: usize) -> Vec<Vec<u8>> {
        self.orders[collation].keys().cloned().collect()
    }

    /// Entries whose leading sorted columns equal `prefix_values`
    /// (logarithmic positioning + linear in matches).
    pub fn entries_by_prefix(&self, collation: usize, prefix_values: &[Value]) -> Vec<&ViewEntry> {
        let coll = &self.design.collations()[collation];
        let cols: Vec<(Value, SortDir)> = coll
            .keys
            .iter()
            .zip(prefix_values.iter())
            .map(|((_, d), v)| (v.clone(), *d))
            .collect();
        let prefix = encode_prefix(&cols);
        let range = match prefix_upper_bound(&prefix) {
            Some(ub) => self.orders[collation].range(prefix.clone()..ub),
            None => self.orders[collation].range(prefix.clone()..),
        };
        range
            .filter(|(k, _)| k.starts_with(&prefix))
            .map(|(_, u)| &self.entries[u])
            .collect()
    }

    /// One page of entries: `offset` rows into the collation, up to
    /// `limit` rows (scrolling a view window).
    pub fn entries_page(&self, collation: usize, offset: usize, limit: usize) -> Vec<&ViewEntry> {
        self.entries_range(collation, offset, limit)
    }

    /// The paged read primitive: up to `count` entries starting `start`
    /// rows (zero-based) into the collation order. This is what the HTTP
    /// task's `?OpenView`/`?ReadViewEntries` handlers walk — cost is
    /// O(start + count) iterator steps over the collation B-tree, never a
    /// clone of the full entry set.
    pub fn entries_range(&self, collation: usize, start: usize, count: usize) -> Vec<&ViewEntry> {
        self.orders[collation]
            .values()
            .skip(start)
            .take(count)
            .map(|u| &self.entries[u])
            .collect()
    }

    /// Zero-based position of a document in the collation order (what the
    /// client needs to scroll to a just-opened document).
    pub fn position_of(&self, collation: usize, unid: Unid) -> Option<usize> {
        let key = self.keys.get(&unid)?.get(collation)?;
        Some(self.orders[collation].range(..key.clone()).count())
    }

    /// Sum of a totaled column over the whole view.
    pub fn column_total(&self, col: usize) -> f64 {
        self.entries
            .values()
            .filter_map(|e| e.values.get(col).and_then(|v| v.as_number().ok()))
            .sum()
    }

    /// Category rollups: group by the leading category columns, with counts
    /// and per-category sums of `total` columns. One ordered scan.
    pub fn categories(&self, collation: usize) -> Vec<CategoryRow> {
        let cat_cols: Vec<usize> = self
            .design
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.category)
            .map(|(i, _)| i)
            .collect();
        let total_cols: Vec<usize> = self
            .design
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.total)
            .map(|(i, _)| i)
            .collect();
        if cat_cols.is_empty() {
            return Vec::new();
        }
        let mut rows: Vec<CategoryRow> = Vec::new();
        for entry in self.orders[collation].values().map(|u| &self.entries[u]) {
            let path: Vec<Value> = cat_cols.iter().map(|i| entry.values[*i].clone()).collect();
            let matches = rows
                .last()
                .map(|r| {
                    r.path.len() == path.len()
                        && r.path
                            .iter()
                            .zip(path.iter())
                            .all(|(a, b)| a.collate(b) == std::cmp::Ordering::Equal)
                })
                .unwrap_or(false);
            if !matches {
                rows.push(CategoryRow {
                    path,
                    count: 0,
                    totals: total_cols.iter().map(|i| (*i, 0.0)).collect(),
                });
            }
            let row = rows.last_mut().expect("pushed above");
            row.count += 1;
            for (i, sum) in &mut row.totals {
                if let Some(Ok(n)) = entry.values.get(*i).map(|v| v.as_number()) {
                    *sum += n;
                }
            }
        }
        rows
    }
}
