//! The view engine: stored, incrementally-maintained query results.
//!
//! Notes views are the database's query mechanism: a selection formula
//! chooses documents, column formulas compute what each row shows, and a
//! collation keeps rows ordered (optionally under category headers and
//! response threads). The index is maintained *incrementally* — each saved
//! or deleted note adjusts just its own entries — which is the load-bearing
//! performance claim the paper makes for Notes' "semi-structured queries at
//! interactive speed".
//!
//! ```
//! use std::sync::Arc;
//! use domino_core::{Database, DbConfig, Note};
//! use domino_types::{LogicalClock, ReplicaId, Value};
//! use domino_views::{ColumnSpec, SortDir, View, ViewDesign};
//!
//! let db = Arc::new(Database::open_in_memory(
//!     DbConfig::new("Tasks", ReplicaId(1), ReplicaId(2)),
//!     LogicalClock::new(),
//! ).unwrap());
//! let design = ViewDesign::new("Open", r#"SELECT Form = "Task""#).unwrap()
//!     .column(ColumnSpec::new("Subject", "Subject").unwrap().sorted(SortDir::Ascending));
//! let view = View::attach(&db, design).unwrap();
//!
//! let mut t = Note::document("Task");
//! t.set("Subject", Value::text("write the report"));
//! db.save(&mut t).unwrap();
//! assert_eq!(view.len(), 1);
//! ```

pub mod collate;
pub mod design;
pub mod folder;
pub mod index;

pub use collate::SortDir;
pub use design::{Collation, ColumnSpec, ViewDesign};
pub use folder::{list_folders, Folder};
pub use index::{CategoryRow, NoteSource, ViewEntry, ViewIndex, ViewStats};

use std::sync::{Arc, Weak};

use parking_lot::RwLock;

use domino_core::{ChangeEvent, Database, Note};
use domino_formula::EvalEnv;
use domino_types::{NoteClass, Result, Unid, Value};

/// Adapter: a database as a [`NoteSource`] for re-keying.
struct DbSource {
    db: Weak<Database>,
}

impl NoteSource for DbSource {
    fn note_by_unid(&self, unid: Unid) -> Option<Note> {
        self.db.upgrade().and_then(|db| db.open_by_unid(unid).ok())
    }
}

/// A live view over a database: design + maintained index.
///
/// Create with [`View::attach`] (subscribes to database change events and
/// performs an initial build) or [`View::detached`] (maintained manually —
/// used by the experiments to compare incremental vs rebuild costs).
pub struct View {
    db: Weak<Database>,
    state: Arc<RwLock<ViewIndex>>,
}

/// One consistent paged read of a view: the rows, the total row count,
/// and the index [version](View::version) they were taken at — all under
/// a single shared guard, so the three agree with each other (the HTTP
/// command cache keys pages on `(version, snapshot seq)`).
#[derive(Debug, Clone)]
pub struct ViewPage {
    pub rows: Vec<ViewEntry>,
    pub total: usize,
    pub version: u64,
}

impl View {
    /// Build the view and keep it current via change events.
    ///
    /// Subscribes as a *batch* observer: a lone save arrives as a
    /// one-event batch, while writes made under [`Database::begin_batch`]
    /// arrive as one coalesced slice the index pre-evaluates in parallel
    /// (see [`ViewIndex::apply_batch`]). Multiple attached views are
    /// themselves updated in parallel by the database's dispatch.
    pub fn attach(db: &Arc<Database>, design: ViewDesign) -> Result<View> {
        let view = View::detached(db, design)?;
        view.rebuild()?;
        let state = view.state.clone();
        let weak = Arc::downgrade(db);
        db.subscribe_batch(Arc::new(move |events: &[ChangeEvent]| {
            let src = DbSource { db: weak.clone() };
            // Observer callbacks cannot surface errors; a failed formula
            // leaves the entry out (matching Notes, where a broken column
            // formula blanks the row rather than wedging the database).
            let _ = state.write().apply_batch(events, &src);
        }));
        Ok(view)
    }

    /// Build a view that is only updated when you call
    /// [`View::rebuild`]/[`View::apply`].
    pub fn detached(db: &Arc<Database>, design: ViewDesign) -> Result<View> {
        let env = EvalEnv {
            username: "server".to_string(),
            now: domino_types::Timestamp::ZERO,
            db_title: db.title(),
            ..EvalEnv::default()
        };
        Ok(View {
            db: Arc::downgrade(db),
            state: Arc::new(RwLock::new(ViewIndex::new(design, env)?)),
        })
    }

    fn db(&self) -> Result<Arc<Database>> {
        self.db
            .upgrade()
            .ok_or_else(|| domino_types::DominoError::InvalidArgument("database dropped".into()))
    }

    /// Recompute the whole index from the database.
    pub fn rebuild(&self) -> Result<()> {
        let db = self.db()?;
        let ids = db.note_ids(Some(NoteClass::Document))?;
        let mut docs = Vec::with_capacity(ids.len());
        for id in ids {
            docs.push(db.open_summary(id)?);
        }
        let src = DbSource {
            db: self.db.clone(),
        };
        self.state.write().rebuild(docs.iter(), &src)
    }

    /// Apply one change event manually (detached views).
    pub fn apply(&self, event: &ChangeEvent) -> Result<()> {
        let src = DbSource {
            db: self.db.clone(),
        };
        self.state.write().apply(event, &src)
    }

    /// Apply a coalesced batch of change events manually (detached
    /// views); events are pre-evaluated in parallel and merged in order.
    pub fn apply_batch(&self, events: &[ChangeEvent]) -> Result<()> {
        let src = DbSource {
            db: self.db.clone(),
        };
        self.state.write().apply_batch(events, &src)
    }

    pub fn len(&self) -> usize {
        self.state.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.state.read().is_empty()
    }

    /// Index version: bumped on every mutation (apply, batch, rebuild).
    /// Two reads at the same version saw byte-identical index state.
    pub fn version(&self) -> u64 {
        self.state.read().version()
    }

    pub fn stats(&self) -> ViewStats {
        self.state.read().stats()
    }

    /// A copy of the view's design (name, selection, columns).
    pub fn design(&self) -> ViewDesign {
        self.state.read().design().clone()
    }

    /// Rows in primary collation order.
    pub fn rows(&self) -> Vec<ViewEntry> {
        self.rows_in(0)
    }

    /// Rows in the given collation's order (0 = primary).
    pub fn rows_in(&self, collation: usize) -> Vec<ViewEntry> {
        self.state
            .read()
            .entries(collation)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Rows whose leading sorted column(s) equal `prefix` — category
    /// navigation.
    pub fn rows_by_prefix(&self, collation: usize, prefix: &[Value]) -> Vec<ViewEntry> {
        self.state
            .read()
            .entries_by_prefix(collation, prefix)
            .into_iter()
            .cloned()
            .collect()
    }

    /// One page of rows (`offset`, `limit`) in a collation's order.
    pub fn rows_page(&self, collation: usize, offset: usize, limit: usize) -> Vec<ViewEntry> {
        self.rows_range(collation, offset, limit)
    }

    /// Up to `count` rows starting `start` rows (zero-based) into a
    /// collation's order — the paged read the HTTP task serves
    /// `?OpenView`/`?ReadViewEntries` from (see
    /// [`ViewIndex::entries_range`]).
    pub fn rows_range(&self, collation: usize, start: usize, count: usize) -> Vec<ViewEntry> {
        self.state
            .read()
            .entries_range(collation, start, count)
            .into_iter()
            .cloned()
            .collect()
    }

    /// One page plus the total row count and index version, read under a
    /// single shared guard so all three are mutually consistent.
    pub fn page(&self, collation: usize, start: usize, count: usize) -> ViewPage {
        let g = self.state.read();
        ViewPage {
            rows: g
                .entries_range(collation, start, count)
                .into_iter()
                .cloned()
                .collect(),
            total: g.len(),
            version: g.version(),
        }
    }

    /// Zero-based position of a document in the primary collation.
    pub fn position_of(&self, unid: Unid) -> Option<usize> {
        self.state.read().position_of(0, unid)
    }

    /// Category rollups in collation order.
    pub fn categories(&self) -> Vec<CategoryRow> {
        self.state.read().categories(0)
    }

    /// Whole-view total of a column.
    pub fn column_total(&self, col: usize) -> f64 {
        self.state.read().column_total(col)
    }

    /// Store the design as a `View`-class design note in the database (so
    /// it replicates); returns the note's unid.
    pub fn save_design(&self) -> Result<Unid> {
        let db = self.db()?;
        let mut note = self.state.read().design().to_note();
        db.save(&mut note)?;
        Ok(note.unid())
    }
}

/// Load every stored view design from a database's design notes (folders
/// share the `View` note class but are not query designs; they are
/// skipped — use [`list_folders`] for those).
pub fn stored_designs(db: &Database) -> Result<Vec<ViewDesign>> {
    let ids = db.note_ids(Some(NoteClass::View))?;
    let mut out = Vec::with_capacity(ids.len());
    for id in ids {
        let note = db.open_note(id)?;
        if note.get_text("Type").as_deref() == Some("Folder") {
            continue;
        }
        out.push(ViewDesign::from_note(&note)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_core::DbConfig;
    use domino_types::{LogicalClock, ReplicaId};

    fn db() -> Arc<Database> {
        Arc::new(
            Database::open_in_memory(
                DbConfig::new("T", ReplicaId(1), ReplicaId(7)),
                LogicalClock::new(),
            )
            .unwrap(),
        )
    }

    fn task(db: &Database, subject: &str, status: &str, hours: f64) -> Note {
        let mut n = Note::document("Task");
        n.set("Subject", Value::text(subject));
        n.set("Status", Value::text(status));
        n.set("Hours", Value::Number(hours));
        db.save(&mut n).unwrap();
        n
    }

    fn task_view(db: &Arc<Database>) -> View {
        let design = ViewDesign::new("Tasks", r#"SELECT Form = "Task""#)
            .unwrap()
            .column(ColumnSpec::new("Status", "Status").unwrap().categorized())
            .column(
                ColumnSpec::new("Subject", "Subject")
                    .unwrap()
                    .sorted(SortDir::Ascending),
            )
            .column(ColumnSpec::new("Hours", "Hours").unwrap().totaled());
        View::attach(db, design).unwrap()
    }

    #[test]
    fn view_tracks_saves_incrementally() {
        let db = db();
        let view = task_view(&db);
        assert!(view.is_empty());
        task(&db, "b-second", "open", 1.0);
        task(&db, "a-first", "open", 2.0);
        assert_eq!(view.len(), 2);
        let rows = view.rows();
        assert_eq!(rows[0].values[1], Value::text("a-first"));
        assert_eq!(rows[1].values[1], Value::text("b-second"));
        // Only two documents were evaluated — no rebuild happened.
        assert_eq!(view.stats().rebuilds, 1); // the initial attach build
        assert_eq!(view.stats().evaluated, 2);
    }

    #[test]
    fn batched_saves_arrive_as_one_coalesced_batch() {
        let db = db();
        let view = task_view(&db);
        {
            let _batch = db.begin_batch();
            let mut t = task(&db, "b-second", "open", 1.0);
            // Re-save inside the batch: coalescing must collapse it.
            t.set("Hours", Value::Number(3.0));
            db.save(&mut t).unwrap();
            task(&db, "a-first", "open", 2.0);
            assert!(view.is_empty(), "events buffer until the batch drops");
        }
        assert_eq!(view.len(), 2);
        let rows = view.rows();
        assert_eq!(rows[0].values[1], Value::text("a-first"));
        assert_eq!(rows[1].values[1], Value::text("b-second"));
        assert_eq!(rows[1].values[2], Value::Number(3.0));
        let stats = view.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.batch_events, 2, "three saves coalesce to two events");
        assert_eq!(stats.max_batch, 2);
        assert_eq!(stats.evaluated, 2);
        // The selection formula came from the compile cache at least twice
        // (view construction + the batch application).
        assert!(stats.selection_cache_hits + stats.selection_cache_misses >= 2);
    }

    #[test]
    fn non_matching_documents_excluded_and_updates_move_entries() {
        let db = db();
        let view = task_view(&db);
        let mut memo = Note::document("Memo");
        db.save(&mut memo).unwrap();
        assert_eq!(view.len(), 0);
        let mut t = task(&db, "zz", "open", 1.0);
        assert_eq!(view.len(), 1);
        // Rename moves the row.
        t.set("Subject", Value::text("aa"));
        db.save(&mut t).unwrap();
        let rows = view.rows();
        assert_eq!(rows[0].values[1], Value::text("aa"));
        // Changing Form removes it.
        t.set("Form", Value::text("Memo"));
        db.save(&mut t).unwrap();
        assert_eq!(view.len(), 0);
    }

    #[test]
    fn deletes_remove_entries() {
        let db = db();
        let view = task_view(&db);
        let t = task(&db, "x", "open", 1.0);
        assert_eq!(view.len(), 1);
        db.delete(t.id).unwrap();
        assert_eq!(view.len(), 0);
    }

    #[test]
    fn categories_group_and_total() {
        let db = db();
        let view = task_view(&db);
        task(&db, "a", "done", 5.0);
        task(&db, "b", "open", 1.0);
        task(&db, "c", "open", 2.0);
        let cats = view.categories();
        assert_eq!(cats.len(), 2);
        assert_eq!(cats[0].path, vec![Value::text("done")]);
        assert_eq!(cats[0].count, 1);
        assert_eq!(cats[0].totals, vec![(2, 5.0)]);
        assert_eq!(cats[1].path, vec![Value::text("open")]);
        assert_eq!(cats[1].count, 2);
        assert_eq!(cats[1].totals, vec![(2, 3.0)]);
        assert_eq!(view.column_total(2), 8.0);
    }

    #[test]
    fn prefix_navigation_finds_category_rows() {
        let db = db();
        let view = task_view(&db);
        for i in 0..10 {
            task(
                &db,
                &format!("t{i}"),
                if i < 3 { "open" } else { "done" },
                1.0,
            );
        }
        let open = view.rows_by_prefix(0, &[Value::text("open")]);
        assert_eq!(open.len(), 3);
        let done = view.rows_by_prefix(0, &[Value::text("done")]);
        assert_eq!(done.len(), 7);
        assert!(view.rows_by_prefix(0, &[Value::text("nope")]).is_empty());
    }

    #[test]
    fn alternate_collation_orders_independently() {
        let db = db();
        let design = ViewDesign::new("V", r#"SELECT Form = "Task""#)
            .unwrap()
            .column(
                ColumnSpec::new("Subject", "Subject")
                    .unwrap()
                    .sorted(SortDir::Ascending),
            )
            .column(ColumnSpec::new("Hours", "Hours").unwrap())
            .alternate(vec![(1, SortDir::Descending)]);
        let view = View::attach(&db, design).unwrap();
        task(&db, "a", "s", 1.0);
        task(&db, "b", "s", 9.0);
        task(&db, "c", "s", 5.0);
        let by_subject: Vec<String> = view
            .rows_in(0)
            .iter()
            .map(|e| e.values[0].to_text())
            .collect();
        assert_eq!(by_subject, vec!["a", "b", "c"]);
        let by_hours: Vec<f64> = view
            .rows_in(1)
            .iter()
            .map(|e| e.values[1].as_number().unwrap())
            .collect();
        assert_eq!(by_hours, vec![9.0, 5.0, 1.0]);
    }

    #[test]
    fn responses_nest_under_parent() {
        let db = db();
        let design = ViewDesign::new("Threads", r#"SELECT Form = "Topic" | @AllDescendants"#)
            .unwrap()
            .column(
                ColumnSpec::new("Subject", "Subject")
                    .unwrap()
                    .sorted(SortDir::Ascending),
            );
        let view = View::attach(&db, design).unwrap();

        let mut t1 = Note::document("Topic");
        t1.set("Subject", Value::text("beta topic"));
        db.save(&mut t1).unwrap();
        let mut t2 = Note::document("Topic");
        t2.set("Subject", Value::text("alpha topic"));
        db.save(&mut t2).unwrap();
        let mut r1 = Note::document("Response");
        r1.set("Subject", Value::text("re: beta"));
        r1.set_parent(t1.unid());
        db.save(&mut r1).unwrap();
        let mut r2 = Note::document("Response");
        r2.set("Subject", Value::text("re: re: beta"));
        r2.set_parent(r1.unid());
        db.save(&mut r2).unwrap();

        let rows = view.rows();
        let subjects: Vec<String> = rows.iter().map(|e| e.values[0].to_text()).collect();
        assert_eq!(
            subjects,
            vec!["alpha topic", "beta topic", "re: beta", "re: re: beta"]
        );
        let levels: Vec<u32> = rows.iter().map(|e| e.response_level).collect();
        assert_eq!(levels, vec![0, 0, 1, 2]);
    }

    #[test]
    fn response_rekeys_when_parent_moves() {
        let db = db();
        let design = ViewDesign::new("Threads", r#"SELECT Form = "Topic" | @AllDescendants"#)
            .unwrap()
            .column(
                ColumnSpec::new("Subject", "Subject")
                    .unwrap()
                    .sorted(SortDir::Ascending),
            );
        let view = View::attach(&db, design).unwrap();
        let mut parent = Note::document("Topic");
        parent.set("Subject", Value::text("zzz"));
        db.save(&mut parent).unwrap();
        let mut other = Note::document("Topic");
        other.set("Subject", Value::text("mmm"));
        db.save(&mut other).unwrap();
        let mut resp = Note::document("Response");
        resp.set("Subject", Value::text("child"));
        resp.set_parent(parent.unid());
        db.save(&mut resp).unwrap();

        let order = |view: &View| -> Vec<String> {
            view.rows().iter().map(|e| e.values[0].to_text()).collect()
        };
        assert_eq!(order(&view), vec!["mmm", "zzz", "child"]);
        // Parent renamed to sort first: the child must follow it.
        parent.set("Subject", Value::text("aaa"));
        db.save(&mut parent).unwrap();
        assert_eq!(order(&view), vec!["aaa", "child", "mmm"]);
    }

    #[test]
    fn deleting_parent_reconsiders_children() {
        let db = db();
        let design = ViewDesign::new("Threads", r#"SELECT Form = "Topic" | @AllDescendants"#)
            .unwrap()
            .column(
                ColumnSpec::new("Subject", "Subject")
                    .unwrap()
                    .sorted(SortDir::Ascending),
            );
        let view = View::attach(&db, design).unwrap();
        let mut parent = Note::document("Topic");
        parent.set("Subject", Value::text("p"));
        db.save(&mut parent).unwrap();
        let mut resp = Note::document("Response");
        resp.set("Subject", Value::text("r"));
        resp.set_parent(parent.unid());
        db.save(&mut resp).unwrap();
        assert_eq!(view.len(), 2);
        // The response was included only via its parent; deleting the
        // parent removes both (the selection does not match "Response").
        db.delete(parent.id).unwrap();
        assert_eq!(view.len(), 0);
    }

    #[test]
    fn rebuild_equals_incremental() {
        let db = db();
        let view = task_view(&db);
        for i in 0..50 {
            let mut t = task(&db, &format!("t{i:02}"), ["open", "done"][i % 2], i as f64);
            if i % 7 == 0 {
                t.set("Subject", Value::text(format!("renamed{i}")));
                db.save(&mut t).unwrap();
            }
            if i % 11 == 0 {
                db.delete(t.id).unwrap();
            }
        }
        let incremental: Vec<(String, String)> = view
            .rows()
            .iter()
            .map(|e| (e.values[0].to_text(), e.values[1].to_text()))
            .collect();
        let fresh = View::detached(&db, view.state.read().design().clone()).unwrap();
        fresh.rebuild().unwrap();
        let rebuilt: Vec<(String, String)> = fresh
            .rows()
            .iter()
            .map(|e| (e.values[0].to_text(), e.values[1].to_text()))
            .collect();
        assert_eq!(incremental, rebuilt);
    }

    #[test]
    fn paging_and_positioning() {
        let db = db();
        let view = task_view(&db);
        let mut notes = Vec::new();
        for i in 0..20 {
            notes.push(task(&db, &format!("t{i:02}"), "open", 1.0));
        }
        let page = view.rows_page(0, 5, 3);
        assert_eq!(page.len(), 3);
        assert_eq!(page[0].values[1], Value::text("t05"));
        assert_eq!(page[2].values[1], Value::text("t07"));
        // Positions agree with row order.
        for (i, row) in view.rows().iter().enumerate() {
            assert_eq!(view.position_of(row.unid), Some(i));
        }
        assert_eq!(view.position_of(domino_types::Unid(0xDEAD)), None);
        // Past-the-end paging is empty, partial tail works.
        assert!(view.rows_page(0, 25, 5).is_empty());
        assert_eq!(view.rows_page(0, 18, 5).len(), 2);
        // rows_range is the same primitive: collation order, zero-based.
        let range = view.rows_range(0, 5, 3);
        assert_eq!(
            range
                .iter()
                .map(|e| e.values[1].clone())
                .collect::<Vec<_>>(),
            page.iter().map(|e| e.values[1].clone()).collect::<Vec<_>>()
        );
        // A range over everything matches full row order.
        let all = view.rows_range(0, 0, usize::MAX);
        assert_eq!(all.len(), view.len());
        assert_eq!(
            all.iter().map(|e| e.unid).collect::<Vec<_>>(),
            view.rows().iter().map(|e| e.unid).collect::<Vec<_>>()
        );
    }

    #[test]
    fn design_persists_as_note() {
        let db = db();
        let view = task_view(&db);
        view.save_design().unwrap();
        let designs = stored_designs(&db).unwrap();
        assert_eq!(designs.len(), 1);
        assert_eq!(designs[0].name, "Tasks");
        assert_eq!(designs[0].columns.len(), 3);
    }
}
