//! R5-style transactional logging.
//!
//! Notes releases before R5 had no log: after a crash, the server ran
//! "fixup", a scan of *every page of every database* to repair torn
//! structures. R5 added write-ahead logging and ARIES-style restart
//! recovery (analysis / redo / undo with compensation records) so restart
//! cost is proportional to the log tail since the last checkpoint, not the
//! size of the data.
//!
//! This crate is the log itself, independent of any particular page store:
//!
//! * [`LogRecord`] — begin/update/CLR/commit/abort/checkpoint records with a
//!   compact binary encoding and per-record checksums (torn tails at the
//!   end of the log are detected and ignored, mid-log corruption is an
//!   error),
//! * [`LogStore`] — where log bytes live: an in-memory store whose
//!   [`MemLogStore::crash`] discards everything after the last sync
//!   (powering crash-injection tests), or a real file,
//! * [`LogManager`] — append/flush with group-commit accounting,
//! * [`recovery`] — the three-pass restart algorithm, generic over a
//!   [`RedoTarget`] page store.

pub mod manager;
pub mod record;
pub mod recovery;
pub mod store;

pub use manager::{LogManager, LogStats};
pub use record::{LogRecord, Lsn, TxId};
pub use recovery::{recover, RecoveryStats, RedoTarget};
pub use store::{FaultLogStore, FaultPlan, FileLogStore, LogStore, MemLogStore};
