//! The log manager: append, flush, group commit, scan.
//!
//! LSNs are byte offsets into the log, as in ARIES. Records are buffered in
//! memory and pushed to the [`LogStore`] on [`LogManager::flush`]. The
//! manager tracks record boundaries, so a committer forcing a small `upto`
//! writes only the bytes through its own record — a lagging committer never
//! pays for later appends' bytes.
//!
//! [`LogManager::commit_group`] is the real group-commit protocol:
//! committers enqueue their target LSN; one becomes the *leader*, drains
//! the shared buffer, issues a single `append` + `sync` with the lock
//! released, and wakes every waiter whose LSN the flush covered.
//! Committers arriving while the leader's sync is in flight park and form
//! the next group, so under concurrency one device sync amortizes across
//! many commits. [`LogStats`] exposes a group-size histogram so E2 can
//! measure the batching.

use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::record::{LogRecord, Lsn};
use crate::store::LogStore;
use domino_obs as obs;
use domino_types::{DominoError, Result};

/// Process-wide registry mirrors of [`LogStats`] (which stays per-manager
/// and exact). `Log.GroupCommit.GroupSize` is a histogram: its mean is the
/// flushes-per-commit figure E2 tracks, its P99 the worst batching.
struct Metrics {
    records: &'static obs::Counter,
    bytes: &'static obs::Counter,
    flushes: &'static obs::Counter,
    noop_flushes: &'static obs::Counter,
    group_committers: &'static obs::Counter,
    group_flushes: &'static obs::Counter,
    group_size: &'static obs::Histogram,
    flush_nanos: &'static obs::Histogram,
}

fn m() -> &'static Metrics {
    static M: OnceLock<Metrics> = OnceLock::new();
    M.get_or_init(|| Metrics {
        records: obs::counter("Log.Records"),
        bytes: obs::counter("Log.BytesAppended"),
        flushes: obs::counter("Log.Flushes"),
        noop_flushes: obs::counter("Log.NoopFlushes"),
        group_committers: obs::counter("Log.GroupCommit.Committers"),
        group_flushes: obs::counter("Log.GroupCommit.Flushes"),
        group_size: obs::histogram("Log.GroupCommit.GroupSize"),
        flush_nanos: obs::histogram("Log.Flush.Nanos"),
    })
}

/// Upper bound on how long a group-commit follower parks per wait; purely
/// a lost-wakeup backstop (the leader always notifies on completion).
const FOLLOWER_PARK: Duration = Duration::from_millis(10);

/// Number of buckets in [`LogStats::group_size_hist`]: group sizes
/// 1, 2, 3-4, 5-8, 9-16, 17+.
pub const GROUP_SIZE_BUCKETS: usize = 6;

/// Counters exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Records appended since open.
    pub records: u64,
    /// Bytes appended since open.
    pub bytes: u64,
    /// Flush calls that actually wrote + synced.
    pub flushes: u64,
    /// Flush calls satisfied by a previous flush (group-commit wins).
    pub noop_flushes: u64,
    /// Committers that entered [`LogManager::commit_group`].
    pub group_committers: u64,
    /// Leader flushes issued on behalf of a commit group.
    pub group_flushes: u64,
    /// Histogram of committers covered per group flush:
    /// buckets for sizes 1, 2, 3-4, 5-8, 9-16, 17+.
    pub group_size_hist: [u64; GROUP_SIZE_BUCKETS],
    /// Largest group a single flush covered.
    pub max_group_size: u64,
}

impl LogStats {
    fn record_group(&mut self, size: u64) {
        let bucket = match size {
            0 | 1 => 0,
            2 => 1,
            3..=4 => 2,
            5..=8 => 3,
            9..=16 => 4,
            _ => 5,
        };
        self.group_size_hist[bucket] += 1;
        self.group_flushes += 1;
        self.max_group_size = self.max_group_size.max(size);
        m().group_flushes.inc();
        m().group_size.record(size);
    }
}

struct Inner {
    /// Encoded-but-unflushed bytes.
    buffer: Vec<u8>,
    /// LSN of the first byte in `buffer`.
    buffer_start: Lsn,
    /// Logical end offset (absolute LSN) of each buffered record, in append
    /// order. Lets `flush(upto)` split the buffer at a record boundary.
    record_ends: Vec<u64>,
    /// LSN one past the last appended record.
    next_lsn: Lsn,
    /// Everything below this LSN is durable.
    flushed_lsn: Lsn,
    /// A leader (of `flush` or `commit_group`) has store I/O in flight;
    /// all other store writes must park until it completes, since log
    /// bytes have to reach the store in LSN order.
    leader_active: bool,
    /// Committers currently parked in `commit_group` (plus the leader).
    group_waiters: u64,
    stats: LogStats,
}

fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Thread-safe write-ahead log front end.
pub struct LogManager<S: LogStore> {
    store: S,
    inner: Mutex<Inner>,
    /// Signals leader completion to followers and parked flushers.
    flushed: Condvar,
}

impl<S: LogStore> LogManager<S> {
    /// Open over a store; `next_lsn` resumes at the durable end.
    pub fn open(store: S) -> Result<LogManager<S>> {
        let end = store.len()?;
        Ok(LogManager {
            store,
            inner: Mutex::new(Inner {
                buffer: Vec::new(),
                buffer_start: Lsn(end),
                record_ends: Vec::new(),
                next_lsn: Lsn(end),
                flushed_lsn: Lsn(end),
                leader_active: false,
                group_waiters: 0,
                stats: LogStats::default(),
            }),
            flushed: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        lock_recover(&self.inner)
    }

    /// Append a record; returns its LSN. Not yet durable.
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        let bytes = rec.encode();
        let mut g = self.lock();
        let lsn = g.next_lsn;
        g.buffer.extend_from_slice(&bytes);
        g.next_lsn = Lsn(g.next_lsn.0 + bytes.len() as u64);
        let end = g.next_lsn.0;
        g.record_ends.push(end);
        g.stats.records += 1;
        g.stats.bytes += bytes.len() as u64;
        m().records.inc();
        m().bytes.add(bytes.len() as u64);
        Ok(lsn)
    }

    /// Write `buffer[..split]` to the store with the lock *released* during
    /// I/O, honoring the leader protocol (only one store writer at a time,
    /// in LSN order). Returns the guard re-acquired after completion.
    ///
    /// On entry the caller must have verified `upto` is not yet durable.
    /// `split == buffer.len()` is the whole-buffer (group leader) path.
    fn write_out<'a>(
        &'a self,
        mut g: MutexGuard<'a, Inner>,
        split: usize,
    ) -> Result<MutexGuard<'a, Inner>> {
        debug_assert!(!g.leader_active);
        g.leader_active = true;
        let chunk: Vec<u8> = g.buffer.drain(..split).collect();
        let target = Lsn(g.buffer_start.0 + chunk.len() as u64);
        g.buffer_start = target;
        let keep = g
            .record_ends
            .iter()
            .position(|e| *e > target.0)
            .unwrap_or(g.record_ends.len());
        g.record_ends.drain(..keep);
        drop(g);

        let io_timer = m().flush_nanos.time();
        let io = (|| {
            if !chunk.is_empty() {
                self.store.append(&chunk)?;
            }
            self.store.sync()
        })();
        drop(io_timer);

        let mut g = self.lock();
        g.leader_active = false;
        match io {
            Ok(()) => {
                g.flushed_lsn = g.flushed_lsn.max(target);
                g.stats.flushes += 1;
                m().flushes.inc();
                self.flushed.notify_all();
                Ok(g)
            }
            Err(e) => {
                // The store may hold a torn tail past flushed_lsn; the
                // per-record checksums make recovery stop cleanly there.
                // Wake everyone so waiters observe the failure path (they
                // will retry and surface their own errors).
                self.flushed.notify_all();
                Err(e)
            }
        }
    }

    /// Park until no leader has I/O in flight. Returns the re-acquired guard.
    fn wait_for_leader<'a>(&'a self, mut g: MutexGuard<'a, Inner>) -> MutexGuard<'a, Inner> {
        while g.leader_active {
            g = self
                .flushed
                .wait_timeout(g, FOLLOWER_PARK)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
        g
    }

    /// Make the log durable up to and including the record at `upto`.
    ///
    /// Splits the buffer at the containing record's boundary: only bytes
    /// through that record are written, so a small force does not pay for
    /// appends that happened after it (the group-commit leader path flushes
    /// the whole buffer instead).
    pub fn flush(&self, upto: Lsn) -> Result<()> {
        let mut g = self.lock();
        loop {
            if g.flushed_lsn > upto {
                g.stats.noop_flushes += 1;
                m().noop_flushes.inc();
                return Ok(());
            }
            if !g.leader_active {
                break;
            }
            g = self.wait_for_leader(g);
        }
        // First buffered record whose end covers `upto` marks the split.
        let split_end = match g.record_ends.iter().find(|e| **e > upto.0) {
            Some(end) => *end,
            None => g.next_lsn.0, // `upto` beyond the last boundary: take all
        };
        let split = (split_end - g.buffer_start.0) as usize;
        drop(self.write_out(g, split)?);
        Ok(())
    }

    /// Force everything appended so far.
    pub fn flush_all(&self) -> Result<()> {
        let upto = self.lock().next_lsn;
        if upto.is_nil() {
            return Ok(());
        }
        self.flush(Lsn(upto.0 - 1))
    }

    /// Group commit: make the record at `upto` durable, sharing the device
    /// sync with every other concurrent committer.
    ///
    /// The first committer to find no flush in flight becomes the leader:
    /// it waits up to `max_wait` for up to `max_batch` committers to
    /// enqueue (a zero `max_wait` skips the window — batching then comes
    /// purely from commits that arrive while a sync is in flight), drains
    /// the whole buffer, writes + syncs once, and wakes all covered
    /// waiters. Followers park; by the time they are woken their record is
    /// durable, or they retry (and may lead the next group).
    pub fn commit_group(&self, upto: Lsn, max_wait: Duration, max_batch: usize) -> Result<()> {
        let mut g = self.lock();
        g.stats.group_committers += 1;
        m().group_committers.inc();
        if g.flushed_lsn > upto {
            g.stats.noop_flushes += 1;
            m().noop_flushes.inc();
            return Ok(());
        }
        g.group_waiters += 1;
        loop {
            if g.flushed_lsn > upto {
                // Covered by another leader's flush (our registration was
                // consumed when that leader drained the group).
                return Ok(());
            }
            if !g.leader_active {
                // Become leader. Optionally hold the door for followers.
                if !max_wait.is_zero() && max_batch > 1 {
                    let deadline = Instant::now() + max_wait;
                    while (g.group_waiters as usize) < max_batch {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        let (g2, _timeout) = self
                            .flushed
                            .wait_timeout(g, deadline - now)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        g = g2;
                        if g.leader_active {
                            // Someone else led meanwhile; re-evaluate.
                            break;
                        }
                    }
                    if g.leader_active || g.flushed_lsn > upto {
                        continue;
                    }
                }
                // Every registered committer appended before enqueueing, so
                // draining the whole buffer covers all of them.
                let served = g.group_waiters;
                g.group_waiters = 0;
                let split = g.buffer.len();
                g = self.write_out(g, split)?;
                g.stats.record_group(served);
                return Ok(());
            }
            // A leader is flushing; park until it completes, then re-check.
            g = self
                .flushed
                .wait_timeout(g, FOLLOWER_PARK)
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .0;
        }
    }

    /// LSN the next record will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.lock().next_lsn
    }

    /// Highest durable LSN boundary.
    pub fn flushed_lsn(&self) -> Lsn {
        self.lock().flushed_lsn
    }

    pub fn stats(&self) -> LogStats {
        self.lock().stats
    }

    /// Durable log size in bytes: what the store physically retains, i.e.
    /// the durable end minus any prefix truncated below a checkpoint.
    pub fn durable_len(&self) -> Result<u64> {
        Ok(self.store.len()?.saturating_sub(self.store.start()?))
    }

    /// Record the master (checkpoint) LSN durably.
    pub fn set_master(&self, lsn: Lsn) -> Result<()> {
        self.store.set_master(lsn)?;
        self.store.sync()
    }

    pub fn get_master(&self) -> Result<Lsn> {
        self.store.get_master()
    }

    /// Read all durable records with LSN >= `from`.
    ///
    /// Returns `(lsn, record)` pairs. Stops cleanly at a torn tail. A
    /// `from` below the store's truncated base is clamped up to it (those
    /// records are below every checkpoint and never needed again).
    pub fn scan(&self, from: Lsn) -> Result<Vec<(Lsn, LogRecord)>> {
        // `from` must be a record boundary; recovery only passes LSNs it got
        // from appends or the master record, which always are. The base is a
        // record boundary by construction (truncation cuts at one).
        let base = self.store.start()?;
        let from = Lsn(from.0.max(base));
        let bytes = self.store.read_from(from.0)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        let mut start = from.0;
        while let Some(rec) = LogRecord::decode(&bytes, &mut pos)? {
            out.push((Lsn(start), rec));
            start = from.0 + pos as u64;
        }
        Ok(out)
    }

    /// Discard the physical log prefix below `upto` (everything below the
    /// most recent checkpoint's min recovery-LSN). Only durable bytes can
    /// be dropped; LSNs keep their values.
    pub fn truncate_prefix(&self, upto: Lsn) -> Result<()> {
        let g = self.lock();
        let g = self.wait_for_leader(g);
        let cut = upto.min(g.flushed_lsn);
        drop(g);
        self.store.truncate_prefix(cut.0)
    }

    /// Drop the whole log (after a clean shutdown checkpoint).
    pub fn truncate_all(&self) -> Result<()> {
        let g = self.lock();
        let mut g = self.wait_for_leader(g);
        if !g.buffer.is_empty() {
            return Err(DominoError::Wal(
                "cannot truncate with unflushed records".into(),
            ));
        }
        self.store.truncate_all()?;
        g.buffer_start = Lsn::NIL;
        g.record_ends.clear();
        g.next_lsn = Lsn::NIL;
        g.flushed_lsn = Lsn::NIL;
        Ok(())
    }

    /// Borrow the underlying store (e.g. to crash a [`crate::MemLogStore`]).
    pub fn store(&self) -> &S {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TxId;
    use crate::store::MemLogStore;
    use std::sync::Arc;

    fn mgr() -> LogManager<MemLogStore> {
        LogManager::open(MemLogStore::new()).unwrap()
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let m = mgr();
        let a = m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        let b = m.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        assert!(b > a);
        assert_eq!(a, Lsn::NIL);
    }

    #[test]
    fn scan_returns_flushed_records_with_lsns() {
        let m = mgr();
        let recs = vec![
            LogRecord::Begin { tx: TxId(1) },
            LogRecord::Update {
                tx: TxId(1),
                prev: Lsn::NIL,
                page: 1,
                offset: 0,
                before: vec![0],
                after: vec![1],
            },
            LogRecord::Commit { tx: TxId(1) },
        ];
        let mut lsns = Vec::new();
        for r in &recs {
            lsns.push(m.append(r).unwrap());
        }
        m.flush_all().unwrap();
        let scanned = m.scan(Lsn::NIL).unwrap();
        assert_eq!(scanned.len(), 3);
        for ((lsn, rec), (want_lsn, want_rec)) in scanned.iter().zip(lsns.iter().zip(&recs)) {
            assert_eq!(lsn, want_lsn);
            assert_eq!(rec, want_rec);
        }
    }

    #[test]
    fn scan_from_middle() {
        let m = mgr();
        m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        let second = m.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        m.flush_all().unwrap();
        let scanned = m.scan(second).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1, LogRecord::Commit { tx: TxId(1) });
    }

    #[test]
    fn unflushed_records_invisible_to_scan() {
        let m = mgr();
        m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        assert!(m.scan(Lsn::NIL).unwrap().is_empty());
    }

    #[test]
    fn group_commit_noop_flush() {
        let m = mgr();
        let a = m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        let b = m.append(&LogRecord::Begin { tx: TxId(2) }).unwrap();
        m.flush(b).unwrap();
        m.flush(a).unwrap(); // already durable
        let stats = m.stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.noop_flushes, 1);
    }

    #[test]
    fn partial_flush_stops_at_record_boundary() {
        let m = mgr();
        let a = m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        let b = m.append(&LogRecord::Begin { tx: TxId(2) }).unwrap();
        let c = m.append(&LogRecord::Begin { tx: TxId(3) }).unwrap();
        // Forcing the first record must not write the later two.
        m.flush(a).unwrap();
        assert!(m.flushed_lsn() > a);
        assert!(m.flushed_lsn() <= b);
        assert_eq!(m.scan(Lsn::NIL).unwrap().len(), 1);
        // The rest still flushes cleanly afterwards.
        m.flush(c).unwrap();
        assert_eq!(m.scan(Lsn::NIL).unwrap().len(), 3);
        assert_eq!(m.stats().flushes, 2);
    }

    #[test]
    fn partial_flush_bytes_match_record_sizes() {
        let m = mgr();
        let rec_small = LogRecord::Begin { tx: TxId(1) };
        let small_len = rec_small.encode().len() as u64;
        m.append(&rec_small).unwrap();
        // A big record buffered after the small one.
        m.append(&LogRecord::Update {
            tx: TxId(1),
            prev: Lsn::NIL,
            page: 1,
            offset: 0,
            before: vec![0u8; 2048],
            after: vec![1u8; 2048],
        })
        .unwrap();
        m.flush(Lsn::NIL).unwrap(); // force only the small record
        assert_eq!(m.durable_len().unwrap(), small_len);
    }

    #[test]
    fn group_commit_single_thread_is_durable() {
        let m = mgr();
        let lsn = m.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        m.commit_group(lsn, Duration::ZERO, 8).unwrap();
        assert!(m.flushed_lsn() > lsn);
        let stats = m.stats();
        assert_eq!(stats.group_committers, 1);
        assert_eq!(stats.group_flushes, 1);
        assert_eq!(stats.group_size_hist[0], 1);
    }

    #[test]
    fn group_commit_many_threads_share_syncs() {
        let m = Arc::new(mgr());
        let threads = 8;
        let per_thread = 50;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let lsn = m
                            .append(&LogRecord::Commit {
                                tx: TxId((t * 1000 + i) as u64),
                            })
                            .unwrap();
                        m.commit_group(lsn, Duration::from_micros(200), 8).unwrap();
                        assert!(m.flushed_lsn() > lsn);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = m.stats();
        assert_eq!(stats.group_committers, (threads * per_thread) as u64);
        // Every record made it out, in order, decodable.
        let recs = m.scan(Lsn::NIL).unwrap();
        assert_eq!(recs.len(), threads * per_thread);
        // Group commit must have batched at least some syncs.
        assert!(
            stats.flushes < stats.group_committers,
            "expected batching: {} flushes for {} committers",
            stats.flushes,
            stats.group_committers
        );
        let hist_total: u64 = stats.group_size_hist.iter().sum();
        assert_eq!(hist_total, stats.group_flushes);
    }

    #[test]
    fn reopen_resumes_lsns() {
        let store = MemLogStore::new();
        let m = LogManager::open(store.clone()).unwrap();
        m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        m.flush_all().unwrap();
        let end = m.next_lsn();
        drop(m);
        let m2 = LogManager::open(store).unwrap();
        assert_eq!(m2.next_lsn(), end);
        assert_eq!(m2.scan(Lsn::NIL).unwrap().len(), 1);
    }

    #[test]
    fn crash_discards_unflushed_tail() {
        let store = MemLogStore::new();
        let m = LogManager::open(store.clone()).unwrap();
        m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        m.flush_all().unwrap();
        m.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        store.crash();
        let m2 = LogManager::open(store).unwrap();
        let recs = m2.scan(Lsn::NIL).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0].1, LogRecord::Begin { .. }));
    }

    #[test]
    fn truncate_requires_flush() {
        let m = mgr();
        m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        assert!(m.truncate_all().is_err());
        m.flush_all().unwrap();
        m.truncate_all().unwrap();
        assert_eq!(m.next_lsn(), Lsn::NIL);
    }

    #[test]
    fn truncate_prefix_shrinks_durable_len_and_scan_still_works() {
        let m = mgr();
        let mut lsns = Vec::new();
        for i in 0..10 {
            lsns.push(m.append(&LogRecord::Begin { tx: TxId(i) }).unwrap());
        }
        m.flush_all().unwrap();
        let full = m.durable_len().unwrap();
        m.truncate_prefix(lsns[6]).unwrap();
        assert!(m.durable_len().unwrap() < full);
        let recs = m.scan(lsns[6]).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].0, lsns[6]);
        // scan() below the base clamps instead of failing.
        let clamped = m.scan(Lsn::NIL).unwrap();
        assert_eq!(clamped.len(), 4);
        assert_eq!(clamped[0].0, lsns[6]);
    }

    #[test]
    fn master_record_roundtrip() {
        let m = mgr();
        assert_eq!(m.get_master().unwrap(), Lsn::NIL);
        m.set_master(Lsn(64)).unwrap();
        assert_eq!(m.get_master().unwrap(), Lsn(64));
    }
}
