//! The log manager: append, flush, scan.
//!
//! LSNs are byte offsets into the log, as in ARIES. Records are buffered in
//! memory and pushed to the [`LogStore`] on [`LogManager::flush`]; a commit
//! forces the log up to its own LSN (the write-ahead rule's force-at-commit
//! half). Several committers flushing together share one sync — the
//! [`LogStats`] counters make that group-commit effect measurable in E2.

use parking_lot::Mutex;

use crate::record::{LogRecord, Lsn};
use crate::store::LogStore;
use domino_types::{DominoError, Result};

/// Counters exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Records appended since open.
    pub records: u64,
    /// Bytes appended since open.
    pub bytes: u64,
    /// Flush calls that actually wrote + synced.
    pub flushes: u64,
    /// Flush calls satisfied by a previous flush (group-commit wins).
    pub noop_flushes: u64,
}

struct Inner {
    /// Encoded-but-unflushed bytes.
    buffer: Vec<u8>,
    /// LSN of the first byte in `buffer`.
    buffer_start: Lsn,
    /// LSN one past the last appended record.
    next_lsn: Lsn,
    /// Everything below this LSN is durable.
    flushed_lsn: Lsn,
    stats: LogStats,
}

/// Thread-safe write-ahead log front end.
pub struct LogManager<S: LogStore> {
    store: S,
    inner: Mutex<Inner>,
}

impl<S: LogStore> LogManager<S> {
    /// Open over a store; `next_lsn` resumes at the durable end.
    pub fn open(store: S) -> Result<LogManager<S>> {
        let end = store.len()?;
        Ok(LogManager {
            store,
            inner: Mutex::new(Inner {
                buffer: Vec::new(),
                buffer_start: Lsn(end),
                next_lsn: Lsn(end),
                flushed_lsn: Lsn(end),
                stats: LogStats::default(),
            }),
        })
    }

    /// Append a record; returns its LSN. Not yet durable.
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        let bytes = rec.encode();
        let mut g = self.inner.lock();
        let lsn = g.next_lsn;
        g.buffer.extend_from_slice(&bytes);
        g.next_lsn = Lsn(g.next_lsn.0 + bytes.len() as u64);
        g.stats.records += 1;
        g.stats.bytes += bytes.len() as u64;
        Ok(lsn)
    }

    /// Make the log durable up to and including the record at `upto`.
    pub fn flush(&self, upto: Lsn) -> Result<()> {
        let mut g = self.inner.lock();
        if g.flushed_lsn > upto {
            g.stats.noop_flushes += 1;
            return Ok(());
        }
        // Flush the whole buffer (cheaper than splitting records).
        let buf = std::mem::take(&mut g.buffer);
        if !buf.is_empty() {
            self.store.append(&buf)?;
        }
        self.store.sync()?;
        g.buffer_start = g.next_lsn;
        g.flushed_lsn = g.next_lsn;
        g.stats.flushes += 1;
        Ok(())
    }

    /// Force everything appended so far.
    pub fn flush_all(&self) -> Result<()> {
        let upto = self.inner.lock().next_lsn;
        if upto.is_nil() {
            return Ok(());
        }
        self.flush(Lsn(upto.0 - 1))
    }

    /// LSN the next record will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// Highest durable LSN boundary.
    pub fn flushed_lsn(&self) -> Lsn {
        self.inner.lock().flushed_lsn
    }

    pub fn stats(&self) -> LogStats {
        self.inner.lock().stats
    }

    /// Durable log size in bytes.
    pub fn durable_len(&self) -> Result<u64> {
        self.store.len()
    }

    /// Record the master (checkpoint) LSN durably.
    pub fn set_master(&self, lsn: Lsn) -> Result<()> {
        self.store.set_master(lsn)?;
        self.store.sync()
    }

    pub fn get_master(&self) -> Result<Lsn> {
        self.store.get_master()
    }

    /// Read all durable records with LSN >= `from`.
    ///
    /// Returns `(lsn, record)` pairs. Stops cleanly at a torn tail.
    pub fn scan(&self, from: Lsn) -> Result<Vec<(Lsn, LogRecord)>> {
        // `from` must be a record boundary; recovery only passes LSNs it got
        // from appends or the master record, which always are.
        let bytes = self.store.read_from(from.0)?;
        let mut out = Vec::new();
        let mut pos = 0usize;
        while let Some(rec) = LogRecord::decode(&bytes, &mut pos)? {
            let lsn = Lsn(from.0 + (pos as u64) - rec_len(&rec));
            out.push((lsn, rec));
        }
        Ok(out)
    }

    /// Drop the whole log (after a clean shutdown checkpoint).
    pub fn truncate_all(&self) -> Result<()> {
        let mut g = self.inner.lock();
        if !g.buffer.is_empty() {
            return Err(DominoError::Wal(
                "cannot truncate with unflushed records".into(),
            ));
        }
        self.store.truncate_all()?;
        g.buffer_start = Lsn::NIL;
        g.next_lsn = Lsn::NIL;
        g.flushed_lsn = Lsn::NIL;
        Ok(())
    }

    /// Borrow the underlying store (e.g. to crash a [`crate::MemLogStore`]).
    pub fn store(&self) -> &S {
        &self.store
    }
}

fn rec_len(rec: &LogRecord) -> u64 {
    rec.encode().len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TxId;
    use crate::store::MemLogStore;

    fn mgr() -> LogManager<MemLogStore> {
        LogManager::open(MemLogStore::new()).unwrap()
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let m = mgr();
        let a = m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        let b = m.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        assert!(b > a);
        assert_eq!(a, Lsn::NIL);
    }

    #[test]
    fn scan_returns_flushed_records_with_lsns() {
        let m = mgr();
        let recs = vec![
            LogRecord::Begin { tx: TxId(1) },
            LogRecord::Update {
                tx: TxId(1),
                prev: Lsn::NIL,
                page: 1,
                offset: 0,
                before: vec![0],
                after: vec![1],
            },
            LogRecord::Commit { tx: TxId(1) },
        ];
        let mut lsns = Vec::new();
        for r in &recs {
            lsns.push(m.append(r).unwrap());
        }
        m.flush_all().unwrap();
        let scanned = m.scan(Lsn::NIL).unwrap();
        assert_eq!(scanned.len(), 3);
        for ((lsn, rec), (want_lsn, want_rec)) in scanned.iter().zip(lsns.iter().zip(&recs)) {
            assert_eq!(lsn, want_lsn);
            assert_eq!(rec, want_rec);
        }
    }

    #[test]
    fn scan_from_middle() {
        let m = mgr();
        m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        let second = m.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        m.flush_all().unwrap();
        let scanned = m.scan(second).unwrap();
        assert_eq!(scanned.len(), 1);
        assert_eq!(scanned[0].1, LogRecord::Commit { tx: TxId(1) });
    }

    #[test]
    fn unflushed_records_invisible_to_scan() {
        let m = mgr();
        m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        assert!(m.scan(Lsn::NIL).unwrap().is_empty());
    }

    #[test]
    fn group_commit_noop_flush() {
        let m = mgr();
        let a = m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        let b = m.append(&LogRecord::Begin { tx: TxId(2) }).unwrap();
        m.flush(b).unwrap();
        m.flush(a).unwrap(); // already durable
        let stats = m.stats();
        assert_eq!(stats.flushes, 1);
        assert_eq!(stats.noop_flushes, 1);
    }

    #[test]
    fn reopen_resumes_lsns() {
        let store = MemLogStore::new();
        let m = LogManager::open(store.clone()).unwrap();
        m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        m.flush_all().unwrap();
        let end = m.next_lsn();
        drop(m);
        let m2 = LogManager::open(store).unwrap();
        assert_eq!(m2.next_lsn(), end);
        assert_eq!(m2.scan(Lsn::NIL).unwrap().len(), 1);
    }

    #[test]
    fn crash_discards_unflushed_tail() {
        let store = MemLogStore::new();
        let m = LogManager::open(store.clone()).unwrap();
        m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        m.flush_all().unwrap();
        m.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        store.crash();
        let m2 = LogManager::open(store).unwrap();
        let recs = m2.scan(Lsn::NIL).unwrap();
        assert_eq!(recs.len(), 1);
        assert!(matches!(recs[0].1, LogRecord::Begin { .. }));
    }

    #[test]
    fn truncate_requires_flush() {
        let m = mgr();
        m.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        assert!(m.truncate_all().is_err());
        m.flush_all().unwrap();
        m.truncate_all().unwrap();
        assert_eq!(m.next_lsn(), Lsn::NIL);
    }

    #[test]
    fn master_record_roundtrip() {
        let m = mgr();
        assert_eq!(m.get_master().unwrap(), Lsn::NIL);
        m.set_master(Lsn(64)).unwrap();
        assert_eq!(m.get_master().unwrap(), Lsn(64));
    }
}
