//! Log sequence numbers, transaction ids, and log records.

use domino_types::{DominoError, Result};

/// A log sequence number: the byte offset of a record in the log. LSN 0 is
/// "nil" (before everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    pub const NIL: Lsn = Lsn(0);

    pub fn is_nil(self) -> bool {
        self == Lsn::NIL
    }
}

impl std::fmt::Display for Lsn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

/// Transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxId(pub u64);

impl std::fmt::Display for TxId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tx:{}", self.0)
    }
}

/// One record of the write-ahead log.
///
/// `Update` carries both images of the changed byte range (physical
/// undo/redo); `Clr` is a *compensation log record* written while undoing,
/// carrying only the redo image plus the `undo_next` pointer so an undo
/// interrupted by a second crash never repeats work.
#[derive(Debug, Clone, PartialEq)]
pub enum LogRecord {
    Begin {
        tx: TxId,
    },
    Update {
        tx: TxId,
        /// Previous log record of the same transaction (undo chain).
        prev: Lsn,
        page: u32,
        offset: u16,
        before: Vec<u8>,
        after: Vec<u8>,
    },
    Clr {
        tx: TxId,
        page: u32,
        offset: u16,
        /// The restored (pre-update) image being re-applied.
        after: Vec<u8>,
        /// Next record of this transaction still to undo.
        undo_next: Lsn,
    },
    Commit {
        tx: TxId,
    },
    Abort {
        tx: TxId,
    },
    /// Fuzzy checkpoint: a snapshot of the active-transaction table and
    /// dirty-page table. `(tx, last_lsn)` and `(page, recovery_lsn)`.
    Checkpoint {
        active: Vec<(TxId, Lsn)>,
        dirty: Vec<(u32, Lsn)>,
    },
}

impl LogRecord {
    /// Transaction this record belongs to (checkpoints belong to none).
    pub fn tx(&self) -> Option<TxId> {
        match self {
            LogRecord::Begin { tx }
            | LogRecord::Update { tx, .. }
            | LogRecord::Clr { tx, .. }
            | LogRecord::Commit { tx }
            | LogRecord::Abort { tx } => Some(*tx),
            LogRecord::Checkpoint { .. } => None,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            LogRecord::Begin { .. } => 1,
            LogRecord::Update { .. } => 2,
            LogRecord::Clr { .. } => 3,
            LogRecord::Commit { .. } => 4,
            LogRecord::Abort { .. } => 5,
            LogRecord::Checkpoint { .. } => 6,
        }
    }

    /// Serialize as `[len:u32][checksum:u32][tag:u8][payload]`. `len` covers
    /// tag+payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = vec![self.tag()];
        match self {
            LogRecord::Begin { tx } | LogRecord::Commit { tx } | LogRecord::Abort { tx } => {
                payload.extend_from_slice(&tx.0.to_le_bytes());
            }
            LogRecord::Update {
                tx,
                prev,
                page,
                offset,
                before,
                after,
            } => {
                payload.extend_from_slice(&tx.0.to_le_bytes());
                payload.extend_from_slice(&prev.0.to_le_bytes());
                payload.extend_from_slice(&page.to_le_bytes());
                payload.extend_from_slice(&offset.to_le_bytes());
                payload.extend_from_slice(&(before.len() as u32).to_le_bytes());
                payload.extend_from_slice(before);
                payload.extend_from_slice(&(after.len() as u32).to_le_bytes());
                payload.extend_from_slice(after);
            }
            LogRecord::Clr {
                tx,
                page,
                offset,
                after,
                undo_next,
            } => {
                payload.extend_from_slice(&tx.0.to_le_bytes());
                payload.extend_from_slice(&page.to_le_bytes());
                payload.extend_from_slice(&offset.to_le_bytes());
                payload.extend_from_slice(&(after.len() as u32).to_le_bytes());
                payload.extend_from_slice(after);
                payload.extend_from_slice(&undo_next.0.to_le_bytes());
            }
            LogRecord::Checkpoint { active, dirty } => {
                payload.extend_from_slice(&(active.len() as u32).to_le_bytes());
                for (tx, lsn) in active {
                    payload.extend_from_slice(&tx.0.to_le_bytes());
                    payload.extend_from_slice(&lsn.0.to_le_bytes());
                }
                payload.extend_from_slice(&(dirty.len() as u32).to_le_bytes());
                for (page, lsn) in dirty {
                    payload.extend_from_slice(&page.to_le_bytes());
                    payload.extend_from_slice(&lsn.0.to_le_bytes());
                }
            }
        }
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode one record starting at `buf[*pos]`.
    ///
    /// Returns `Ok(None)` for a *cleanly torn tail* — too few bytes left for
    /// a header, or a record whose declared length runs past the buffer, or
    /// a checksum mismatch (an interrupted final write). Mid-buffer garbage
    /// is indistinguishable from a torn tail, so recovery treats the first
    /// bad record as end-of-log, exactly like ARIES.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Result<Option<LogRecord>> {
        if *pos + 8 > buf.len() {
            return Ok(None);
        }
        let len = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4")) as usize;
        let want_sum = u32::from_le_bytes(buf[*pos + 4..*pos + 8].try_into().expect("4"));
        if len == 0 || *pos + 8 + len > buf.len() {
            return Ok(None);
        }
        let payload = &buf[*pos + 8..*pos + 8 + len];
        if checksum(payload) != want_sum {
            return Ok(None);
        }
        *pos += 8 + len;
        let mut p = 1;
        let rec = match payload[0] {
            1 => LogRecord::Begin {
                tx: TxId(get_u64(payload, &mut p)?),
            },
            4 => LogRecord::Commit {
                tx: TxId(get_u64(payload, &mut p)?),
            },
            5 => LogRecord::Abort {
                tx: TxId(get_u64(payload, &mut p)?),
            },
            2 => {
                let tx = TxId(get_u64(payload, &mut p)?);
                let prev = Lsn(get_u64(payload, &mut p)?);
                let page = get_u32(payload, &mut p)?;
                let offset = get_u16(payload, &mut p)?;
                let blen = get_u32(payload, &mut p)? as usize;
                let before = get_bytes(payload, &mut p, blen)?;
                let alen = get_u32(payload, &mut p)? as usize;
                let after = get_bytes(payload, &mut p, alen)?;
                LogRecord::Update {
                    tx,
                    prev,
                    page,
                    offset,
                    before,
                    after,
                }
            }
            3 => {
                let tx = TxId(get_u64(payload, &mut p)?);
                let page = get_u32(payload, &mut p)?;
                let offset = get_u16(payload, &mut p)?;
                let alen = get_u32(payload, &mut p)? as usize;
                let after = get_bytes(payload, &mut p, alen)?;
                let undo_next = Lsn(get_u64(payload, &mut p)?);
                LogRecord::Clr {
                    tx,
                    page,
                    offset,
                    after,
                    undo_next,
                }
            }
            6 => {
                let na = get_u32(payload, &mut p)? as usize;
                let mut active = Vec::with_capacity(na.min(4096));
                for _ in 0..na {
                    let tx = TxId(get_u64(payload, &mut p)?);
                    let lsn = Lsn(get_u64(payload, &mut p)?);
                    active.push((tx, lsn));
                }
                let nd = get_u32(payload, &mut p)? as usize;
                let mut dirty = Vec::with_capacity(nd.min(4096));
                for _ in 0..nd {
                    let page = get_u32(payload, &mut p)?;
                    let lsn = Lsn(get_u64(payload, &mut p)?);
                    dirty.push((page, lsn));
                }
                LogRecord::Checkpoint { active, dirty }
            }
            t => return Err(DominoError::Corrupt(format!("unknown log record tag {t}"))),
        };
        Ok(Some(rec))
    }
}

/// FNV-1a, enough to detect torn writes (not adversarial corruption).
fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for b in bytes {
        h ^= *b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

fn get_u64(buf: &[u8], pos: &mut usize) -> Result<u64> {
    let b = get_bytes(buf, pos, 8)?;
    Ok(u64::from_le_bytes(b.try_into().expect("8")))
}

fn get_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    let b = get_bytes(buf, pos, 4)?;
    Ok(u32::from_le_bytes(b.try_into().expect("4")))
}

fn get_u16(buf: &[u8], pos: &mut usize) -> Result<u16> {
    let b = get_bytes(buf, pos, 2)?;
    Ok(u16::from_le_bytes(b.try_into().expect("2")))
}

fn get_bytes(buf: &[u8], pos: &mut usize, n: usize) -> Result<Vec<u8>> {
    if *pos + n > buf.len() {
        return Err(DominoError::Corrupt("truncated log record payload".into()));
    }
    let out = buf[*pos..*pos + n].to_vec();
    *pos += n;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<LogRecord> {
        vec![
            LogRecord::Begin { tx: TxId(7) },
            LogRecord::Update {
                tx: TxId(7),
                prev: Lsn(12),
                page: 3,
                offset: 100,
                before: vec![1, 2, 3],
                after: vec![4, 5, 6, 7],
            },
            LogRecord::Clr {
                tx: TxId(7),
                page: 3,
                offset: 100,
                after: vec![1, 2, 3],
                undo_next: Lsn(12),
            },
            LogRecord::Commit { tx: TxId(7) },
            LogRecord::Abort { tx: TxId(8) },
            LogRecord::Checkpoint {
                active: vec![(TxId(1), Lsn(5)), (TxId(2), Lsn(9))],
                dirty: vec![(4, Lsn(2))],
            },
        ]
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        for rec in samples() {
            let bytes = rec.encode();
            let mut pos = 0;
            let back = LogRecord::decode(&bytes, &mut pos).unwrap().unwrap();
            assert_eq!(back, rec);
            assert_eq!(pos, bytes.len());
        }
    }

    #[test]
    fn stream_of_records_decodes_in_order() {
        let mut buf = Vec::new();
        for rec in samples() {
            buf.extend_from_slice(&rec.encode());
        }
        let mut pos = 0;
        let mut out = Vec::new();
        while let Some(rec) = LogRecord::decode(&buf, &mut pos).unwrap() {
            out.push(rec);
        }
        assert_eq!(out, samples());
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn torn_tail_reads_as_end_of_log() {
        let rec = LogRecord::Commit { tx: TxId(1) };
        let full = rec.encode();
        for cut in 0..full.len() {
            let mut pos = 0;
            assert_eq!(LogRecord::decode(&full[..cut], &mut pos).unwrap(), None);
            assert_eq!(pos, 0);
        }
    }

    #[test]
    fn corrupted_checksum_reads_as_end_of_log() {
        let mut bytes = LogRecord::Commit { tx: TxId(1) }.encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut pos = 0;
        assert_eq!(LogRecord::decode(&bytes, &mut pos).unwrap(), None);
    }

    #[test]
    fn tx_accessor() {
        assert_eq!(LogRecord::Begin { tx: TxId(3) }.tx(), Some(TxId(3)));
        assert_eq!(
            LogRecord::Checkpoint {
                active: vec![],
                dirty: vec![]
            }
            .tx(),
            None
        );
    }

    #[test]
    fn lsn_nil() {
        assert!(Lsn::NIL.is_nil());
        assert!(!Lsn(1).is_nil());
        assert!(Lsn(2) > Lsn(1));
    }
}
