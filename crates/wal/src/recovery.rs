//! ARIES-style restart recovery: analysis, redo, undo.
//!
//! * **Analysis** scans forward from the last checkpoint rebuilding the
//!   active-transaction table (ATT) and dirty-page table (DPT).
//! * **Redo** *repeats history*: every logged update (including CLRs) whose
//!   LSN is at or above the page's DPT recovery-LSN and above the page's
//!   on-disk LSN is re-applied, whether its transaction won or lost.
//! * **Undo** rolls back loser transactions newest-record-first, writing a
//!   compensation record (CLR) per undone update so a crash during recovery
//!   never undoes twice.
//!
//! The page store is abstracted as [`RedoTarget`] so this crate stays
//! independent of `domino-storage`.

use std::collections::HashMap;

use crate::manager::LogManager;
use crate::record::{LogRecord, Lsn, TxId};
use crate::store::LogStore;
use domino_types::{DominoError, Result};

/// The page store recovery drives.
pub trait RedoTarget {
    /// LSN currently stamped on the page (NIL if the page does not exist —
    /// redo will then recreate it).
    fn page_lsn(&mut self, page: u32) -> Result<Lsn>;

    /// Write `bytes` at `offset` within `page` and stamp it with `lsn`,
    /// materializing the page (zero-filled) if it does not exist.
    fn apply(&mut self, page: u32, offset: u16, bytes: &[u8], lsn: Lsn) -> Result<()>;
}

/// What restart did, for E2's recovery-cost accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records examined during analysis.
    pub analyzed: u64,
    /// Updates re-applied during redo.
    pub redone: u64,
    /// Updates skipped because the page already carried them.
    pub redo_skipped: u64,
    /// Updates rolled back during undo.
    pub undone: u64,
    /// Loser transactions rolled back.
    pub loser_txs: u64,
    /// LSN where the analysis pass began (the checkpoint).
    pub start_lsn: Lsn,
}

/// Run full restart recovery over `log`, applying pages through `target`.
///
/// On return the store reflects exactly the committed transactions, the log
/// contains CLR/abort records for every loser, and a fresh flush has been
/// forced.
pub fn recover<S: LogStore>(
    log: &LogManager<S>,
    target: &mut dyn RedoTarget,
) -> Result<RecoveryStats> {
    let mut stats = RecoveryStats::default();

    // ---- analysis -------------------------------------------------------
    let master = log.get_master()?;
    stats.start_lsn = master;
    let records = log.scan(master)?;

    // ATT: tx -> last LSN logged. DPT: page -> recovery LSN.
    let mut att: HashMap<TxId, Lsn> = HashMap::new();
    let mut dpt: HashMap<u32, Lsn> = HashMap::new();

    for (lsn, rec) in &records {
        stats.analyzed += 1;
        match rec {
            LogRecord::Checkpoint { active, dirty } => {
                for (tx, last) in active {
                    att.entry(*tx).or_insert(*last);
                }
                for (page, rec_lsn) in dirty {
                    dpt.entry(*page).or_insert(*rec_lsn);
                }
            }
            LogRecord::Begin { tx } => {
                att.insert(*tx, *lsn);
            }
            LogRecord::Update { tx, page, .. } | LogRecord::Clr { tx, page, .. } => {
                att.insert(*tx, *lsn);
                dpt.entry(*page).or_insert(*lsn);
            }
            LogRecord::Commit { tx } | LogRecord::Abort { tx } => {
                att.remove(tx);
            }
        }
    }

    // Index records by LSN for the undo pass. Undo chains can reach records
    // older than the checkpoint; those are loaded lazily below.
    let mut by_lsn: HashMap<Lsn, LogRecord> = records
        .iter()
        .map(|(lsn, rec)| (*lsn, rec.clone()))
        .collect();
    let mut full_scan_done = master.is_nil();

    // ---- redo -----------------------------------------------------------
    // Redo begins at the *oldest recovery LSN in the DPT*, which can
    // precede the checkpoint (a page dirtied before the checkpoint and
    // still unflushed at the crash). Re-scan from there when needed.
    let redo_start = dpt.values().copied().min().unwrap_or(master);
    let redo_records: Vec<(Lsn, LogRecord)> = if redo_start < master {
        log.scan(redo_start)?
    } else {
        records.clone()
    };
    for (lsn, rec) in &redo_records {
        if *lsn < redo_start {
            continue;
        }
        let (page, offset, image) = match rec {
            LogRecord::Update {
                page,
                offset,
                after,
                ..
            } => (*page, *offset, after),
            LogRecord::Clr {
                page,
                offset,
                after,
                ..
            } => (*page, *offset, after),
            _ => continue,
        };
        let Some(rec_lsn) = dpt.get(&page) else {
            continue;
        };
        if lsn < rec_lsn {
            continue;
        }
        if target.page_lsn(page)? >= *lsn {
            stats.redo_skipped += 1;
            continue;
        }
        target.apply(page, offset, image, *lsn)?;
        stats.redone += 1;
    }

    // ---- undo -----------------------------------------------------------
    // Roll back losers in descending-LSN order across all of them.
    let mut cursors: Vec<(TxId, Lsn)> = att.into_iter().collect();
    stats.loser_txs = cursors.len() as u64;
    while let Some(idx) = cursors
        .iter()
        .enumerate()
        .max_by_key(|(_, (_, lsn))| *lsn)
        .map(|(i, _)| i)
    {
        let (tx, lsn) = cursors[idx];
        if lsn.is_nil() {
            log.append(&LogRecord::Abort { tx })?;
            cursors.swap_remove(idx);
            continue;
        }
        if !by_lsn.contains_key(&lsn) && !full_scan_done {
            // The chain reached back past the checkpoint: pull in the rest
            // of the log (rare — only long-running loser transactions).
            for (l, rec) in log.scan(Lsn::NIL)? {
                by_lsn.entry(l).or_insert(rec);
            }
            full_scan_done = true;
        }
        let Some(rec) = by_lsn.get(&lsn) else {
            return Err(DominoError::Wal(format!(
                "undo chain of {tx} points at missing record {lsn}"
            )));
        };
        match rec {
            LogRecord::Update {
                prev,
                page,
                offset,
                before,
                ..
            } => {
                let clr_lsn = log.append(&LogRecord::Clr {
                    tx,
                    page: *page,
                    offset: *offset,
                    after: before.clone(),
                    undo_next: *prev,
                })?;
                target.apply(*page, *offset, before, clr_lsn)?;
                stats.undone += 1;
                cursors[idx].1 = *prev;
            }
            LogRecord::Clr { undo_next, .. } => {
                cursors[idx].1 = *undo_next;
            }
            LogRecord::Begin { .. } => {
                log.append(&LogRecord::Abort { tx })?;
                cursors.swap_remove(idx);
            }
            other => {
                return Err(DominoError::Wal(format!(
                    "unexpected record in undo chain of {tx}: {other:?}"
                )));
            }
        }
    }

    log.flush_all()?;

    // Mirror the restart cost into the process-wide registry so a
    // `show statistics` after a crash shows what recovery replayed.
    domino_obs::counter("Recovery.Runs").inc();
    domino_obs::counter("Recovery.RecordsAnalyzed").add(stats.analyzed);
    domino_obs::counter("Recovery.UpdatesRedone").add(stats.redone);
    domino_obs::counter("Recovery.UpdatesUndone").add(stats.undone);
    domino_obs::counter("Recovery.LoserTxns").add(stats.loser_txs);
    // A restart recovery is a server event: losers rolled back make it a
    // Warning (the crash interrupted in-flight work), a clean redo-only
    // pass is informational.
    domino_obs::emit(
        domino_obs::Event::new(
            domino_obs::EventKind::Server,
            if stats.loser_txs > 0 {
                domino_obs::Severity::Warning
            } else {
                domino_obs::Severity::Info
            },
            "Recovery.Completed",
        )
        .with("analyzed", stats.analyzed)
        .with("redone", stats.redone)
        .with("undone", stats.undone)
        .with("losers", stats.loser_txs),
    );
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemLogStore;

    /// A toy page store: 64-byte pages in a map.
    #[derive(Default)]
    struct MemPages {
        pages: HashMap<u32, (Lsn, Vec<u8>)>,
    }

    impl MemPages {
        fn byte(&self, page: u32, off: usize) -> u8 {
            self.pages.get(&page).map(|(_, d)| d[off]).unwrap_or(0)
        }
    }

    impl RedoTarget for MemPages {
        fn page_lsn(&mut self, page: u32) -> Result<Lsn> {
            Ok(self.pages.get(&page).map(|(l, _)| *l).unwrap_or(Lsn::NIL))
        }

        fn apply(&mut self, page: u32, offset: u16, bytes: &[u8], lsn: Lsn) -> Result<()> {
            let entry = self
                .pages
                .entry(page)
                .or_insert_with(|| (Lsn::NIL, vec![0; 64]));
            entry.0 = lsn;
            entry.1[offset as usize..offset as usize + bytes.len()].copy_from_slice(bytes);
            Ok(())
        }
    }

    struct Harness {
        log: LogManager<MemLogStore>,
        pages: MemPages,
    }

    impl Harness {
        fn new() -> Harness {
            Harness {
                log: LogManager::open(MemLogStore::new()).unwrap(),
                pages: MemPages::default(),
            }
        }

        /// Log an update and (optionally) apply it to the "buffer pool".
        #[allow(clippy::too_many_arguments)]
        fn update(
            &mut self,
            tx: TxId,
            prev: Lsn,
            page: u32,
            offset: u16,
            before: u8,
            after: u8,
            apply: bool,
        ) -> Lsn {
            let lsn = self
                .log
                .append(&LogRecord::Update {
                    tx,
                    prev,
                    page,
                    offset,
                    before: vec![before],
                    after: vec![after],
                })
                .unwrap();
            if apply {
                self.pages.apply(page, offset, &[after], lsn).unwrap();
            }
            lsn
        }
    }

    #[test]
    fn committed_updates_redo_after_total_page_loss() {
        let mut h = Harness::new();
        h.log.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        let l1 = h.update(TxId(1), Lsn::NIL, 1, 0, 0, 7, false);
        h.update(TxId(1), l1, 2, 5, 0, 9, false);
        h.log.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        h.log.flush_all().unwrap();

        // Crash before any page reached disk.
        let stats = recover(&h.log, &mut h.pages).unwrap();
        assert_eq!(stats.redone, 2);
        assert_eq!(stats.loser_txs, 0);
        assert_eq!(h.pages.byte(1, 0), 7);
        assert_eq!(h.pages.byte(2, 5), 9);
    }

    #[test]
    fn uncommitted_updates_are_undone_even_if_flushed() {
        let mut h = Harness::new();
        h.log.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        let l1 = h.update(TxId(1), Lsn::NIL, 1, 0, 0, 7, true); // page reached disk
        h.update(TxId(1), l1, 1, 1, 0, 8, true);
        // No commit. Crash.
        h.log.flush_all().unwrap();

        let stats = recover(&h.log, &mut h.pages).unwrap();
        assert_eq!(stats.loser_txs, 1);
        assert_eq!(stats.undone, 2);
        assert_eq!(h.pages.byte(1, 0), 0);
        assert_eq!(h.pages.byte(1, 1), 0);
        // Loser got CLRs + an Abort in the log.
        let recs = h.log.scan(Lsn::NIL).unwrap();
        let clrs = recs
            .iter()
            .filter(|(_, r)| matches!(r, LogRecord::Clr { .. }))
            .count();
        let aborts = recs
            .iter()
            .filter(|(_, r)| matches!(r, LogRecord::Abort { .. }))
            .count();
        assert_eq!(clrs, 2);
        assert_eq!(aborts, 1);
    }

    #[test]
    fn mixed_winners_and_losers() {
        let mut h = Harness::new();
        h.log.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        h.log.append(&LogRecord::Begin { tx: TxId(2) }).unwrap();
        // Both updates hit the same page, which then reaches disk (a page
        // carrying LSN l necessarily contains every update with LSN <= l).
        let w = h.update(TxId(1), Lsn::NIL, 1, 0, 0, 10, true);
        let l = h.update(TxId(2), Lsn::NIL, 1, 1, 0, 20, true);
        let _ = (w, l);
        h.log.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        h.log.flush_all().unwrap();

        recover(&h.log, &mut h.pages).unwrap();
        assert_eq!(h.pages.byte(1, 0), 10, "winner stays");
        assert_eq!(h.pages.byte(1, 1), 0, "loser undone");
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut h = Harness::new();
        h.log.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        h.update(TxId(1), Lsn::NIL, 3, 0, 0, 5, false);
        h.log.flush_all().unwrap();

        recover(&h.log, &mut h.pages).unwrap();
        assert_eq!(h.pages.byte(3, 0), 0);
        // Crash again during/after recovery; run it again.
        let stats2 = recover(&h.log, &mut h.pages).unwrap();
        assert_eq!(h.pages.byte(3, 0), 0);
        // The CLR from round 1 is in the log; round 2 must not re-undo
        // (the Abort record ended the transaction).
        assert_eq!(stats2.loser_txs, 0);
    }

    #[test]
    fn checkpoint_bounds_analysis() {
        let mut h = Harness::new();
        // Old, fully-applied committed work before the checkpoint.
        h.log.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        h.update(TxId(1), Lsn::NIL, 1, 0, 0, 3, true);
        h.log.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        // Page 1 was flushed, so the checkpoint's DPT is empty.
        let cp = h
            .log
            .append(&LogRecord::Checkpoint {
                active: vec![],
                dirty: vec![],
            })
            .unwrap();
        h.log.flush_all().unwrap();
        h.log.set_master(cp).unwrap();

        // New committed work after the checkpoint, not flushed.
        h.log.append(&LogRecord::Begin { tx: TxId(2) }).unwrap();
        h.update(TxId(2), Lsn::NIL, 2, 0, 0, 4, false);
        h.log.append(&LogRecord::Commit { tx: TxId(2) }).unwrap();
        h.log.flush_all().unwrap();

        let stats = recover(&h.log, &mut h.pages).unwrap();
        assert_eq!(stats.start_lsn, cp);
        // Only post-checkpoint records were analyzed (checkpoint + 3).
        assert_eq!(stats.analyzed, 4);
        assert_eq!(h.pages.byte(2, 0), 4);
        assert_eq!(h.pages.byte(1, 0), 3, "pre-checkpoint state intact");
    }

    #[test]
    fn checkpoint_carries_active_tx_into_undo() {
        let mut h = Harness::new();
        h.log.append(&LogRecord::Begin { tx: TxId(9) }).unwrap();
        let u = h.update(TxId(9), Lsn::NIL, 1, 0, 0, 6, true);
        let cp = h
            .log
            .append(&LogRecord::Checkpoint {
                active: vec![(TxId(9), u)],
                dirty: vec![(1, u)],
            })
            .unwrap();
        h.log.flush_all().unwrap();
        h.log.set_master(cp).unwrap();

        let stats = recover(&h.log, &mut h.pages).unwrap();
        assert_eq!(stats.loser_txs, 1);
        assert_eq!(h.pages.byte(1, 0), 0);
    }

    #[test]
    fn redo_skips_pages_already_current() {
        let mut h = Harness::new();
        h.log.append(&LogRecord::Begin { tx: TxId(1) }).unwrap();
        h.update(TxId(1), Lsn::NIL, 1, 0, 0, 7, true); // applied AND flushed
        h.log.append(&LogRecord::Commit { tx: TxId(1) }).unwrap();
        h.log.flush_all().unwrap();

        let stats = recover(&h.log, &mut h.pages).unwrap();
        assert_eq!(stats.redone, 0);
        assert_eq!(stats.redo_skipped, 1);
        assert_eq!(h.pages.byte(1, 0), 7);
    }

    #[test]
    fn empty_log_recovers_to_nothing() {
        let mut h = Harness::new();
        let stats = recover(&h.log, &mut h.pages).unwrap();
        assert_eq!(stats, RecoveryStats::default());
    }
}
