//! Physical log storage.
//!
//! A [`LogStore`] is an append-only byte device with an explicit `sync`
//! barrier and a one-slot *master record* holding the LSN of the most
//! recent checkpoint (Domino keeps this in the log control file).
//!
//! LSNs are byte offsets into the *logical* log, which only ever grows.
//! [`LogStore::truncate_prefix`] discards the physical bytes below a
//! checkpoint without renumbering anything: the store remembers a base
//! offset ([`LogStore::start`]) and `len()` keeps returning the logical
//! end, so `len() - start()` is the bytes actually retained on disk.
//!
//! [`MemLogStore`] models a disk honestly enough for crash experiments:
//! appended bytes sit in a volatile tail until `sync`; [`MemLogStore::crash`]
//! throws the volatile tail away, exactly what power loss does to an
//! OS-buffered file. [`FaultLogStore`] wraps any store and kills mutating
//! I/O after a scripted number of operations, for crash-point tests.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::record::Lsn;
use domino_types::{DominoError, Result};

/// Append-only storage for log bytes.
pub trait LogStore: Send + Sync {
    /// Append bytes at the current end (volatile until `sync`).
    fn append(&self, bytes: &[u8]) -> Result<()>;

    /// Make everything appended so far durable.
    fn sync(&self) -> Result<()>;

    /// Read the *durable* log contents from logical byte `from` to the
    /// durable end. `from` below `start()` is clamped up to `start()` by
    /// callers; implementations may return an error for truncated offsets.
    fn read_from(&self, from: u64) -> Result<Vec<u8>>;

    /// Durable *logical* end in bytes (monotonic; unaffected by prefix
    /// truncation).
    fn len(&self) -> Result<u64>;

    /// Logical offset of the first retained byte (0 until a prefix
    /// truncation happens).
    fn start(&self) -> Result<u64> {
        Ok(0)
    }

    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == self.start()?)
    }

    /// Persist the checkpoint master record.
    fn set_master(&self, lsn: Lsn) -> Result<()>;

    /// Read the checkpoint master record (NIL if never set).
    fn get_master(&self) -> Result<Lsn>;

    /// Discard all physical bytes below logical offset `upto` (which must
    /// not exceed the durable end). LSNs are unaffected; `start()` becomes
    /// `upto`. Called after a checkpoint so the log stops growing forever.
    fn truncate_prefix(&self, upto: u64) -> Result<()>;

    /// Discard the log entirely (after a successful shutdown checkpoint,
    /// Domino recycles log extents; we model truncation). Resets `start()`
    /// and `len()` to 0.
    fn truncate_all(&self) -> Result<()>;
}

impl LogStore for Box<dyn LogStore> {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        (**self).append(bytes)
    }
    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
    fn read_from(&self, from: u64) -> Result<Vec<u8>> {
        (**self).read_from(from)
    }
    fn len(&self) -> Result<u64> {
        (**self).len()
    }
    fn start(&self) -> Result<u64> {
        (**self).start()
    }
    fn set_master(&self, lsn: Lsn) -> Result<()> {
        (**self).set_master(lsn)
    }
    fn get_master(&self) -> Result<Lsn> {
        (**self).get_master()
    }
    fn truncate_prefix(&self, upto: u64) -> Result<()> {
        (**self).truncate_prefix(upto)
    }
    fn truncate_all(&self) -> Result<()> {
        (**self).truncate_all()
    }
}

/// In-memory log with an explicit durability watermark.
#[derive(Clone, Default)]
pub struct MemLogStore {
    inner: Arc<Mutex<MemLogInner>>,
}

#[derive(Default)]
struct MemLogInner {
    /// Retained bytes; `bytes[0]` sits at logical offset `base`.
    bytes: Vec<u8>,
    /// Logical offset of `bytes[0]` (advanced by `truncate_prefix`).
    base: u64,
    /// Durable length *within* `bytes` (relative).
    durable_len: usize,
    master: Lsn,
    durable_master: Lsn,
    /// Count of sync calls, for group-commit accounting in benches.
    syncs: u64,
}

impl MemLogStore {
    pub fn new() -> MemLogStore {
        MemLogStore::default()
    }

    /// Simulate power loss: un-synced bytes and master writes vanish.
    pub fn crash(&self) {
        let mut g = self.inner.lock();
        let durable = g.durable_len;
        g.bytes.truncate(durable);
        g.master = g.durable_master;
    }

    /// Number of `sync` barriers issued so far.
    pub fn sync_count(&self) -> u64 {
        self.inner.lock().syncs
    }

    /// Total bytes physically held (durable or not).
    pub fn total_len(&self) -> usize {
        self.inner.lock().bytes.len()
    }
}

impl LogStore for MemLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.inner.lock().bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        let mut g = self.inner.lock();
        g.durable_len = g.bytes.len();
        g.durable_master = g.master;
        g.syncs += 1;
        Ok(())
    }

    fn read_from(&self, from: u64) -> Result<Vec<u8>> {
        let g = self.inner.lock();
        if from < g.base {
            return Err(DominoError::Wal(format!(
                "read_from({from}) below truncated log base {}",
                g.base
            )));
        }
        let rel = ((from - g.base) as usize).min(g.durable_len);
        Ok(g.bytes[rel..g.durable_len].to_vec())
    }

    fn len(&self) -> Result<u64> {
        let g = self.inner.lock();
        Ok(g.base + g.durable_len as u64)
    }

    fn start(&self) -> Result<u64> {
        Ok(self.inner.lock().base)
    }

    fn set_master(&self, lsn: Lsn) -> Result<()> {
        self.inner.lock().master = lsn;
        Ok(())
    }

    fn get_master(&self) -> Result<Lsn> {
        Ok(self.inner.lock().master)
    }

    fn truncate_prefix(&self, upto: u64) -> Result<()> {
        let mut g = self.inner.lock();
        if upto <= g.base {
            return Ok(());
        }
        let durable_end = g.base + g.durable_len as u64;
        if upto > durable_end {
            return Err(DominoError::Wal(format!(
                "truncate_prefix({upto}) past durable end {durable_end}"
            )));
        }
        let cut = (upto - g.base) as usize;
        g.bytes.drain(..cut);
        g.durable_len -= cut;
        g.base = upto;
        Ok(())
    }

    fn truncate_all(&self) -> Result<()> {
        let mut g = self.inner.lock();
        g.bytes.clear();
        g.base = 0;
        g.durable_len = 0;
        g.master = Lsn::NIL;
        g.durable_master = Lsn::NIL;
        Ok(())
    }
}

/// File-backed log store. The master record lives in a sibling file with a
/// `.master` suffix, written atomically via rename; the logical base offset
/// (for prefix truncation) lives in a `.base` sibling the same way.
pub struct FileLogStore {
    inner: Mutex<FileInner>,
    log_path: std::path::PathBuf,
    master_path: std::path::PathBuf,
    base_path: std::path::PathBuf,
}

struct FileInner {
    file: File,
    /// Logical offset of physical byte 0 of the log file.
    base: u64,
}

impl FileLogStore {
    pub fn open(path: &Path) -> Result<FileLogStore> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let master_path = path.with_extension("master");
        let base_path = path.with_extension("base");
        let base = match std::fs::read(&base_path) {
            Ok(bytes) if bytes.len() == 8 => u64::from_le_bytes(bytes.try_into().expect("len 8")),
            Ok(_) => 0,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e.into()),
        };
        Ok(FileLogStore {
            inner: Mutex::new(FileInner { file, base }),
            log_path: path.to_path_buf(),
            master_path,
            base_path,
        })
    }

    fn write_sidecar(path: &Path, value: u64) -> Result<()> {
        let tmp = path.with_extension("sidecar.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&value.to_le_bytes())?;
            // The rename is the commit point; the content must be durable
            // before it, or a crash can publish an empty sidecar.
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

impl LogStore for FileLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.inner.lock().file.write_all(bytes)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.inner.lock().file.sync_data()?;
        Ok(())
    }

    fn read_from(&self, from: u64) -> Result<Vec<u8>> {
        let mut g = self.inner.lock();
        if from < g.base {
            return Err(DominoError::Wal(format!(
                "read_from({from}) below truncated log base {}",
                g.base
            )));
        }
        let rel = from - g.base;
        let mut out = Vec::new();
        g.file.seek(SeekFrom::Start(rel))?;
        g.file.read_to_end(&mut out)?;
        // Restore append position (append mode seeks on write anyway).
        g.file.seek(SeekFrom::End(0))?;
        Ok(out)
    }

    fn len(&self) -> Result<u64> {
        let g = self.inner.lock();
        Ok(g.base + g.file.metadata()?.len())
    }

    fn start(&self) -> Result<u64> {
        Ok(self.inner.lock().base)
    }

    fn set_master(&self, lsn: Lsn) -> Result<()> {
        FileLogStore::write_sidecar(&self.master_path, lsn.0)
    }

    fn get_master(&self) -> Result<Lsn> {
        match std::fs::read(&self.master_path) {
            Ok(bytes) if bytes.len() == 8 => {
                Ok(Lsn(u64::from_le_bytes(bytes.try_into().expect("len 8"))))
            }
            Ok(_) => Ok(Lsn::NIL),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Lsn::NIL),
            Err(e) => Err(e.into()),
        }
    }

    fn truncate_prefix(&self, upto: u64) -> Result<()> {
        let mut g = self.inner.lock();
        if upto <= g.base {
            return Ok(());
        }
        let end = g.base + g.file.metadata()?.len();
        if upto > end {
            return Err(DominoError::Wal(format!(
                "truncate_prefix({upto}) past log end {end}"
            )));
        }
        // Copy the retained suffix into a fresh file and rename it over the
        // log, so a crash mid-truncation leaves either the old or the new
        // log intact. The base sidecar is updated *after* the rename; a
        // crash between the two leaves base stale (too small), which only
        // means `read_from` sees a shifted view — so the sidecar is written
        // first and the rename is the commit point of the truncation.
        let rel = upto - g.base;
        g.file.seek(SeekFrom::Start(rel))?;
        let mut suffix = Vec::new();
        g.file.read_to_end(&mut suffix)?;
        let tmp = self.log_path.with_extension("log.tmp");
        std::fs::write(&tmp, &suffix)?;
        FileLogStore::write_sidecar(&self.base_path, upto)?;
        std::fs::rename(&tmp, &self.log_path)?;
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&self.log_path)?;
        file.sync_data()?;
        g.file = file;
        g.base = upto;
        Ok(())
    }

    fn truncate_all(&self) -> Result<()> {
        let mut g = self.inner.lock();
        g.file.set_len(0)?;
        g.file.sync_data()?;
        g.base = 0;
        let _ = std::fs::remove_file(&self.base_path);
        drop(g);
        self.set_master(Lsn::NIL)
    }
}

/// Shared switch controlling a [`FaultLogStore`] (and mirroring
/// `domino_storage`'s `FaultDisk`): arms a countdown of mutating operations
/// after which every further mutating I/O fails, simulating a device that
/// dies mid-workload. Disarm it before "rebooting" for recovery.
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<FaultPlanInner>>,
}

#[derive(Default)]
struct FaultPlanInner {
    /// Mutating ops still allowed; `None` = unlimited.
    remaining: Option<u64>,
    /// Mutating ops observed since creation (armed or not).
    ops: u64,
    /// Whether the fault has fired at least once.
    tripped: bool,
}

impl FaultPlan {
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Allow `n` more mutating operations, then fail all of them.
    pub fn arm(&self, n: u64) {
        let mut g = self.inner.lock();
        g.remaining = Some(n);
        g.tripped = false;
    }

    /// Stop injecting faults (the "reboot" before recovery).
    pub fn disarm(&self) {
        self.inner.lock().remaining = None;
    }

    /// Mutating operations observed so far.
    pub fn ops_seen(&self) -> u64 {
        self.inner.lock().ops
    }

    /// True once an injected fault has fired.
    pub fn tripped(&self) -> bool {
        self.inner.lock().tripped
    }

    /// Account one mutating op; `Err` if the budget is exhausted.
    pub fn tick(&self, what: &str) -> Result<()> {
        let mut g = self.inner.lock();
        g.ops += 1;
        match &mut g.remaining {
            Some(0) => {
                g.tripped = true;
                Err(DominoError::Io(format!("injected fault: {what}")))
            }
            Some(n) => {
                *n -= 1;
                Ok(())
            }
            None => Ok(()),
        }
    }
}

/// A [`LogStore`] wrapper that injects I/O failures after a scripted number
/// of mutating operations (append/sync/set_master/truncate). Reads are
/// never failed, so post-crash recovery can run against the same store
/// after [`FaultPlan::disarm`].
#[derive(Clone)]
pub struct FaultLogStore<S: LogStore> {
    store: S,
    plan: FaultPlan,
}

impl<S: LogStore> FaultLogStore<S> {
    pub fn new(store: S, plan: FaultPlan) -> FaultLogStore<S> {
        FaultLogStore { store, plan }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl<S: LogStore> LogStore for FaultLogStore<S> {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.plan.tick("log append")?;
        self.store.append(bytes)
    }
    fn sync(&self) -> Result<()> {
        self.plan.tick("log sync")?;
        self.store.sync()
    }
    fn read_from(&self, from: u64) -> Result<Vec<u8>> {
        self.store.read_from(from)
    }
    fn len(&self) -> Result<u64> {
        self.store.len()
    }
    fn start(&self) -> Result<u64> {
        self.store.start()
    }
    fn set_master(&self, lsn: Lsn) -> Result<()> {
        self.plan.tick("log set_master")?;
        self.store.set_master(lsn)
    }
    fn get_master(&self) -> Result<Lsn> {
        self.store.get_master()
    }
    fn truncate_prefix(&self, upto: u64) -> Result<()> {
        self.plan.tick("log truncate_prefix")?;
        self.store.truncate_prefix(upto)
    }
    fn truncate_all(&self) -> Result<()> {
        self.plan.tick("log truncate_all")?;
        self.store.truncate_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_append_sync_read() {
        let s = MemLogStore::new();
        s.append(b"hello").unwrap();
        // Not yet durable.
        assert_eq!(s.len().unwrap(), 0);
        s.sync().unwrap();
        assert_eq!(s.len().unwrap(), 5);
        assert_eq!(s.read_from(0).unwrap(), b"hello");
        assert_eq!(s.read_from(3).unwrap(), b"lo");
    }

    #[test]
    fn mem_store_crash_discards_unsynced() {
        let s = MemLogStore::new();
        s.append(b"durable").unwrap();
        s.sync().unwrap();
        s.append(b" volatile").unwrap();
        s.crash();
        assert_eq!(s.read_from(0).unwrap(), b"durable");
        assert_eq!(s.total_len(), 7);
    }

    #[test]
    fn mem_store_master_survives_only_after_sync() {
        let s = MemLogStore::new();
        s.set_master(Lsn(99)).unwrap();
        s.crash();
        assert_eq!(s.get_master().unwrap(), Lsn::NIL);
        s.set_master(Lsn(42)).unwrap();
        s.sync().unwrap();
        s.crash();
        assert_eq!(s.get_master().unwrap(), Lsn(42));
    }

    #[test]
    fn mem_store_truncate() {
        let s = MemLogStore::new();
        s.append(b"x").unwrap();
        s.sync().unwrap();
        s.truncate_all().unwrap();
        assert!(s.is_empty().unwrap());
        assert_eq!(s.get_master().unwrap(), Lsn::NIL);
    }

    #[test]
    fn mem_store_truncate_prefix_keeps_lsn_space() {
        let s = MemLogStore::new();
        s.append(b"0123456789").unwrap();
        s.sync().unwrap();
        s.truncate_prefix(4).unwrap();
        assert_eq!(s.start().unwrap(), 4);
        assert_eq!(s.len().unwrap(), 10, "logical end unchanged");
        assert_eq!(s.total_len(), 6, "physical bytes shrank");
        assert_eq!(s.read_from(4).unwrap(), b"456789");
        assert!(s.read_from(0).is_err(), "truncated offsets rejected");
        // Appends continue in the same logical space.
        s.append(b"ab").unwrap();
        s.sync().unwrap();
        assert_eq!(s.len().unwrap(), 12);
        assert_eq!(s.read_from(10).unwrap(), b"ab");
        // Idempotent / below-base truncation is a no-op.
        s.truncate_prefix(2).unwrap();
        assert_eq!(s.start().unwrap(), 4);
        // Truncating past the durable end is an error.
        assert!(s.truncate_prefix(100).is_err());
    }

    #[test]
    fn fault_store_kills_writes_after_budget() {
        let plan = FaultPlan::new();
        let s = FaultLogStore::new(MemLogStore::new(), plan.clone());
        s.append(b"a").unwrap();
        s.sync().unwrap();
        plan.arm(1);
        s.append(b"b").unwrap(); // last allowed op
        assert!(s.sync().is_err());
        assert!(s.append(b"c").is_err());
        assert!(plan.tripped());
        // Reads still work, and disarm restores writes.
        assert_eq!(s.read_from(0).unwrap(), b"a");
        plan.disarm();
        s.sync().unwrap();
        assert_eq!(plan.ops_seen(), 6);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("domino-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.log");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("base"));
        let s = FileLogStore::open(&path).unwrap();
        s.append(b"abc").unwrap();
        s.sync().unwrap();
        assert_eq!(s.read_from(0).unwrap(), b"abc");
        assert_eq!(s.len().unwrap(), 3);
        s.set_master(Lsn(7)).unwrap();
        assert_eq!(s.get_master().unwrap(), Lsn(7));
        s.truncate_all().unwrap();
        assert_eq!(s.len().unwrap(), 0);
        assert_eq!(s.get_master().unwrap(), Lsn::NIL);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_truncate_prefix_survives_reopen() {
        let dir = std::env::temp_dir().join(format!("domino-wal-trunc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.log");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("base"));
        let s = FileLogStore::open(&path).unwrap();
        s.append(b"0123456789").unwrap();
        s.sync().unwrap();
        s.truncate_prefix(6).unwrap();
        assert_eq!(s.start().unwrap(), 6);
        assert_eq!(s.len().unwrap(), 10);
        assert_eq!(s.read_from(6).unwrap(), b"6789");
        drop(s);
        let s2 = FileLogStore::open(&path).unwrap();
        assert_eq!(s2.start().unwrap(), 6);
        assert_eq!(s2.len().unwrap(), 10);
        assert_eq!(s2.read_from(8).unwrap(), b"89");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
