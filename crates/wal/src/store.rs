//! Physical log storage.
//!
//! A [`LogStore`] is an append-only byte device with an explicit `sync`
//! barrier and a one-slot *master record* holding the LSN of the most
//! recent checkpoint (Domino keeps this in the log control file).
//!
//! [`MemLogStore`] models a disk honestly enough for crash experiments:
//! appended bytes sit in a volatile tail until `sync`; [`MemLogStore::crash`]
//! throws the volatile tail away, exactly what power loss does to an
//! OS-buffered file.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::record::Lsn;
use domino_types::Result;

/// Append-only storage for log bytes.
pub trait LogStore: Send + Sync {
    /// Append bytes at the current end (volatile until `sync`).
    fn append(&self, bytes: &[u8]) -> Result<()>;

    /// Make everything appended so far durable.
    fn sync(&self) -> Result<()>;

    /// Read the *durable* log contents from byte `from` to the durable end.
    fn read_from(&self, from: u64) -> Result<Vec<u8>>;

    /// Durable length in bytes.
    fn len(&self) -> Result<u64>;

    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Persist the checkpoint master record.
    fn set_master(&self, lsn: Lsn) -> Result<()>;

    /// Read the checkpoint master record (NIL if never set).
    fn get_master(&self) -> Result<Lsn>;

    /// Discard the log entirely (after a successful shutdown checkpoint,
    /// Domino recycles log extents; we model truncation).
    fn truncate_all(&self) -> Result<()>;
}

impl LogStore for Box<dyn LogStore> {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        (**self).append(bytes)
    }
    fn sync(&self) -> Result<()> {
        (**self).sync()
    }
    fn read_from(&self, from: u64) -> Result<Vec<u8>> {
        (**self).read_from(from)
    }
    fn len(&self) -> Result<u64> {
        (**self).len()
    }
    fn set_master(&self, lsn: Lsn) -> Result<()> {
        (**self).set_master(lsn)
    }
    fn get_master(&self) -> Result<Lsn> {
        (**self).get_master()
    }
    fn truncate_all(&self) -> Result<()> {
        (**self).truncate_all()
    }
}

/// In-memory log with an explicit durability watermark.
#[derive(Clone, Default)]
pub struct MemLogStore {
    inner: Arc<Mutex<MemLogInner>>,
}

#[derive(Default)]
struct MemLogInner {
    bytes: Vec<u8>,
    durable_len: usize,
    master: Lsn,
    durable_master: Lsn,
    /// Count of sync calls, for group-commit accounting in benches.
    syncs: u64,
}

impl MemLogStore {
    pub fn new() -> MemLogStore {
        MemLogStore::default()
    }

    /// Simulate power loss: un-synced bytes and master writes vanish.
    pub fn crash(&self) {
        let mut g = self.inner.lock();
        let durable = g.durable_len;
        g.bytes.truncate(durable);
        g.master = g.durable_master;
    }

    /// Number of `sync` barriers issued so far.
    pub fn sync_count(&self) -> u64 {
        self.inner.lock().syncs
    }

    /// Total bytes appended (durable or not).
    pub fn total_len(&self) -> usize {
        self.inner.lock().bytes.len()
    }
}

impl LogStore for MemLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.inner.lock().bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        let mut g = self.inner.lock();
        g.durable_len = g.bytes.len();
        g.durable_master = g.master;
        g.syncs += 1;
        Ok(())
    }

    fn read_from(&self, from: u64) -> Result<Vec<u8>> {
        let g = self.inner.lock();
        let from = (from as usize).min(g.durable_len);
        Ok(g.bytes[from..g.durable_len].to_vec())
    }

    fn len(&self) -> Result<u64> {
        Ok(self.inner.lock().durable_len as u64)
    }

    fn set_master(&self, lsn: Lsn) -> Result<()> {
        self.inner.lock().master = lsn;
        Ok(())
    }

    fn get_master(&self) -> Result<Lsn> {
        Ok(self.inner.lock().master)
    }

    fn truncate_all(&self) -> Result<()> {
        let mut g = self.inner.lock();
        g.bytes.clear();
        g.durable_len = 0;
        g.master = Lsn::NIL;
        g.durable_master = Lsn::NIL;
        Ok(())
    }
}

/// File-backed log store. The master record lives in a sibling file with a
/// `.master` suffix, written atomically via rename.
pub struct FileLogStore {
    file: Mutex<File>,
    master_path: std::path::PathBuf,
}

impl FileLogStore {
    pub fn open(path: &Path) -> Result<FileLogStore> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        let master_path = path.with_extension("master");
        Ok(FileLogStore { file: Mutex::new(file), master_path })
    }
}

impl LogStore for FileLogStore {
    fn append(&self, bytes: &[u8]) -> Result<()> {
        self.file.lock().write_all(bytes)?;
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        self.file.lock().sync_data()?;
        Ok(())
    }

    fn read_from(&self, from: u64) -> Result<Vec<u8>> {
        let mut f = self.file.lock();
        let mut out = Vec::new();
        f.seek(SeekFrom::Start(from))?;
        f.read_to_end(&mut out)?;
        // Restore append position (append mode seeks on write anyway).
        f.seek(SeekFrom::End(0))?;
        Ok(out)
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.lock().metadata()?.len())
    }

    fn set_master(&self, lsn: Lsn) -> Result<()> {
        let tmp = self.master_path.with_extension("master.tmp");
        std::fs::write(&tmp, lsn.0.to_le_bytes())?;
        std::fs::rename(&tmp, &self.master_path)?;
        Ok(())
    }

    fn get_master(&self) -> Result<Lsn> {
        match std::fs::read(&self.master_path) {
            Ok(bytes) if bytes.len() == 8 => Ok(Lsn(u64::from_le_bytes(
                bytes.try_into().expect("len 8"),
            ))),
            Ok(_) => Ok(Lsn::NIL),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Lsn::NIL),
            Err(e) => Err(e.into()),
        }
    }

    fn truncate_all(&self) -> Result<()> {
        let f = self.file.lock();
        f.set_len(0)?;
        f.sync_data()?;
        drop(f);
        self.set_master(Lsn::NIL)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_append_sync_read() {
        let s = MemLogStore::new();
        s.append(b"hello").unwrap();
        // Not yet durable.
        assert_eq!(s.len().unwrap(), 0);
        s.sync().unwrap();
        assert_eq!(s.len().unwrap(), 5);
        assert_eq!(s.read_from(0).unwrap(), b"hello");
        assert_eq!(s.read_from(3).unwrap(), b"lo");
    }

    #[test]
    fn mem_store_crash_discards_unsynced() {
        let s = MemLogStore::new();
        s.append(b"durable").unwrap();
        s.sync().unwrap();
        s.append(b" volatile").unwrap();
        s.crash();
        assert_eq!(s.read_from(0).unwrap(), b"durable");
        assert_eq!(s.total_len(), 7);
    }

    #[test]
    fn mem_store_master_survives_only_after_sync() {
        let s = MemLogStore::new();
        s.set_master(Lsn(99)).unwrap();
        s.crash();
        assert_eq!(s.get_master().unwrap(), Lsn::NIL);
        s.set_master(Lsn(42)).unwrap();
        s.sync().unwrap();
        s.crash();
        assert_eq!(s.get_master().unwrap(), Lsn(42));
    }

    #[test]
    fn mem_store_truncate() {
        let s = MemLogStore::new();
        s.append(b"x").unwrap();
        s.sync().unwrap();
        s.truncate_all().unwrap();
        assert!(s.is_empty().unwrap());
        assert_eq!(s.get_master().unwrap(), Lsn::NIL);
    }

    #[test]
    fn file_store_roundtrip() {
        let dir = std::env::temp_dir().join(format!("domino-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.log");
        let _ = std::fs::remove_file(&path);
        let s = FileLogStore::open(&path).unwrap();
        s.append(b"abc").unwrap();
        s.sync().unwrap();
        assert_eq!(s.read_from(0).unwrap(), b"abc");
        assert_eq!(s.len().unwrap(), 3);
        s.set_master(Lsn(7)).unwrap();
        assert_eq!(s.get_master().unwrap(), Lsn(7));
        s.truncate_all().unwrap();
        assert_eq!(s.len().unwrap(), 0);
        assert_eq!(s.get_master().unwrap(), Lsn::NIL);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
