//! Console statistics: run a mixed workload across every subsystem, then
//! print the Domino-style `show statistics` dump from the process-wide
//! telemetry registry, plus a snapshot diff of the workload itself.
//!
//! Run with: `cargo run --example console_stats`

use std::sync::Arc;

use domino::core::{Database, DbConfig, Note};
use domino::formula::Formula;
use domino::ftindex::FtIndex;
use domino::net::{LinkSpec, MailRouter, MailUser, Network, Topology};
use domino::replica::replicate;
use domino::types::{LogicalClock, ReplicaId, Value};
use domino::views::{ColumnSpec, SortDir, View, ViewDesign};

fn main() -> domino::types::Result<()> {
    // Everything below 1ms is "slow" for this demo, so the slow-op ring
    // has something to show at the end.
    domino::obs::set_slow_threshold(std::time::Duration::from_micros(50));

    // Take a baseline snapshot; the diff at the end isolates what *this*
    // workload did, independent of anything recorded before it.
    let before = domino::obs::snapshot();

    // --- storage + views + formula + full-text -----------------------
    let db = Arc::new(Database::open_in_memory(
        DbConfig::new("Stats Demo", ReplicaId(0x57A7), ReplicaId(0x0001)),
        LogicalClock::new(),
    )?);
    let view = View::attach(
        &db,
        ViewDesign::new("By subject", r#"SELECT Form = "Memo""#)?
            .column(ColumnSpec::new("Subject", "Subject")?.sorted(SortDir::Ascending)),
    )?;
    let ft = FtIndex::attach(&db)?;

    let mut unids = Vec::new();
    for i in 0..200 {
        let mut memo = Note::document("Memo");
        memo.set("Subject", Value::text(format!("memo number {i}")));
        memo.set(
            "Body",
            Value::text(format!("searchable body text, topic {}", i % 7)),
        );
        db.save(&mut memo)?;
        unids.push(memo.unid());
    }
    // Re-open and update a slice of them (buffer-pool traffic + WAL).
    for unid in unids.iter().step_by(3) {
        let mut n = db.open_by_unid(*unid)?;
        n.set("Touched", Value::text("yes"));
        db.save(&mut n)?;
    }
    for unid in unids.iter().step_by(17) {
        let id = db.id_of_unid(*unid)?.expect("saved above");
        db.delete(id)?;
    }
    db.checkpoint()?;

    let f = Formula::compile(r#"SELECT Form = "Memo" & Touched = "yes""#)?;
    let touched = db.search(&f, &Default::default())?;
    let hits = ft.search("topic AND searchable")?;
    println!(
        "workload: {} rows in view, {} touched, {} ft hits",
        view.rows().len(),
        touched.len(),
        hits.len()
    );

    // --- replication -------------------------------------------------
    let peer = Arc::new(Database::open_in_memory(
        DbConfig::new("Stats Demo", ReplicaId(0x57A7), ReplicaId(0x0002)),
        LogicalClock::starting_at(domino::types::Timestamp(1000)),
    )?);
    let (into_peer, _) = replicate(&peer, &db)?;
    println!(
        "replicated: {} added, {} deletions",
        into_peer.added, into_peer.deletions
    );

    // --- mail routing -------------------------------------------------
    let mut net = Network::new(
        3,
        Topology::Chain,
        LinkSpec {
            latency: 2,
            bytes_per_tick: 0,
            ..LinkSpec::default()
        },
        LogicalClock::new(),
    );
    let users = [
        MailUser {
            name: "alice".into(),
            home_server: 0,
        },
        MailUser {
            name: "bob".into(),
            home_server: 2,
        },
    ];
    let mut router = MailRouter::setup(&mut net, &users)?;
    for i in 0..10 {
        router.send(&net, 0, "alice", "bob", &format!("mail {i}"), "body")?;
    }
    router.run_until_delivered(&mut net, 500)?;

    // --- the console dump --------------------------------------------
    println!("\n{}", domino::obs::show_statistics());

    // And the machine-readable delta for just this run.
    let delta = domino::obs::snapshot().diff(&before);
    println!("> workload delta (JSON)\n{}", delta.to_json());
    Ok(())
}
