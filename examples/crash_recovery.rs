//! R5 transactional logging: crash a database mid-flight and watch
//! ARIES-style restart recovery bring back exactly the committed state.
//!
//! Run with: `cargo run --example crash_recovery`

use domino::core::{Database, DbConfig, Note};
use domino::storage::MemDisk;
use domino::types::{LogicalClock, ReplicaId, Value};
use domino::wal::MemLogStore;

fn main() -> domino::types::Result<()> {
    // Shared "disk" and log so we can reopen after the crash.
    let disk = MemDisk::new();
    let log = MemLogStore::new();
    let clock = LogicalClock::new();

    let unids = {
        let db = Database::open(
            Box::new(disk.clone()),
            Some(Box::new(log.clone())),
            DbConfig::new("Ledger", ReplicaId(1), ReplicaId(7)),
            clock.clone(),
        )?;
        let mut unids = Vec::new();
        for i in 0..100 {
            let mut n = Note::document("Entry");
            n.set("Seq", Value::Number(i as f64));
            n.set("Amount", Value::Number(i as f64 * 1.5));
            db.save(&mut n)?;
            unids.push(n.unid());
        }
        db.checkpoint()?; // bound restart work
        for unid in unids.iter().take(20) {
            let mut n = db.open_by_unid(*unid)?;
            n.set("Amount", Value::Number(-1.0));
            db.save(&mut n)?;
        }
        println!("committed 100 creates + 20 updates, then CRASH (no clean shutdown)");
        // Power cut: buffer pool and un-synced log tail vanish.
        log.crash();
        unids
    };

    let db = Database::open(
        Box::new(disk),
        Some(Box::new(log)),
        DbConfig::new("Ledger", ReplicaId(1), ReplicaId(7)),
        clock,
    )?;
    let stats = db.recovery_stats().expect("restart recovery ran");
    println!(
        "restart recovery: analyzed {} records from {}, redone {}, undone {}, losers {}",
        stats.analyzed, stats.start_lsn, stats.redone, stats.undone, stats.loser_txs
    );

    // Every committed change is back; nothing more, nothing less.
    assert_eq!(db.document_count()?, 100);
    let updated = (0..20)
        .filter(|i| {
            db.open_by_unid(unids[*i])
                .map(|n| n.get("Amount") == Some(&Value::Number(-1.0)))
                .unwrap_or(false)
        })
        .count();
    println!(
        "documents: {}, updated amounts recovered: {updated}/20",
        db.document_count()?
    );
    assert_eq!(updated, 20);
    println!("recovered state matches the committed state exactly");
    Ok(())
}
