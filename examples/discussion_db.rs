//! The discussion database — the workload the paper's groupware story is
//! built around: threaded topics and responses, a categorized view, two
//! replicas editing offline, and a replication conflict preserved as a
//! `$Conflict` response document.
//!
//! Run with: `cargo run --example discussion_db`

use std::sync::Arc;

use domino::core::{Database, DbConfig, Note};
use domino::replica::{ReplicationOptions, Replicator};
use domino::types::{LogicalClock, ReplicaId, Timestamp, Value};
use domino::views::{ColumnSpec, SortDir, View, ViewDesign};

fn replica(instance: u64, at: u64) -> domino::types::Result<Arc<Database>> {
    Ok(Arc::new(Database::open_in_memory(
        DbConfig::new("Project Discussion", ReplicaId(0xD15C), ReplicaId(instance)),
        LogicalClock::starting_at(Timestamp(at)),
    )?))
}

fn main() -> domino::types::Result<()> {
    // Two replicas of the same discussion: the office server and a laptop.
    let office = replica(1, 0)?;
    let laptop = replica(2, 1_000)?;
    let mut repl = Replicator::new(ReplicationOptions::default());

    // A threaded view: topics selected, responses indented beneath them.
    let threads = View::attach(
        &office,
        ViewDesign::new("Threads", r#"SELECT Form = "Topic" | @AllDescendants"#)?
            .column(ColumnSpec::new("Category", "Category")?.categorized())
            .column(ColumnSpec::new("Subject", "Subject")?.sorted(SortDir::Ascending)),
    )?;

    // Seed a couple of threads at the office.
    let mut kickoff = Note::document("Topic");
    kickoff.set("Subject", Value::text("Kickoff agenda"));
    kickoff.set("Category", Value::text("planning"));
    office.save(&mut kickoff)?;

    let mut perf = Note::document("Topic");
    perf.set("Subject", Value::text("Perf targets"));
    perf.set("Category", Value::text("engineering"));
    office.save(&mut perf)?;

    let mut reply = Note::document("Response");
    reply.set("Subject", Value::text("re: agenda — add demos"));
    reply.set("Category", Value::text("planning"));
    reply.set_parent(kickoff.unid());
    office.save(&mut reply)?;

    // First sync: the laptop gets everything.
    repl.sync(&office, &laptop)?;
    println!(
        "after first sync, laptop has {} documents",
        laptop.document_count()?
    );

    // Offline, both sides edit the SAME topic...
    let mut at_office = office.open_by_unid(perf.unid())?;
    at_office.set("Subject", Value::text("Perf targets (office numbers)"));
    office.save(&mut at_office)?;

    let mut on_laptop = laptop.open_by_unid(perf.unid())?;
    on_laptop.set("Subject", Value::text("Perf targets (laptop numbers)"));
    laptop.save(&mut on_laptop)?;

    // ...and the laptop adds a response while disconnected.
    let mut laptop_reply = Note::document("Response");
    laptop_reply.set("Subject", Value::text("re: perf — measured on the train"));
    laptop_reply.set("Category", Value::text("engineering"));
    laptop_reply.set_parent(perf.unid());
    laptop.save(&mut laptop_reply)?;

    // Reconnect: replication detects the concurrent edit and preserves the
    // loser as a $Conflict response; nothing is lost.
    let (into_office, into_laptop) = repl.sync(&office, &laptop)?;
    println!(
        "reconnect sync: office += {} docs, {} conflicts; laptop updated {}",
        into_office.added, into_office.conflicts, into_laptop.updated
    );
    repl.sync(&office, &laptop)?; // settle the conflict doc both ways

    println!("\n== Threads view (office replica) ==");
    for row in threads.rows() {
        let indent = "    ".repeat(row.response_level as usize);
        let marker = if office.open_by_unid(row.unid)?.is_conflict() {
            "  [replication conflict]"
        } else {
            ""
        };
        println!(
            "  [{}] {indent}{}{marker}",
            row.values[0].to_text(),
            row.values[1].to_text()
        );
    }

    println!("\n== category rollup ==");
    for cat in threads.categories() {
        println!("  {}: {} documents", cat.path[0].to_text(), cat.count);
    }

    assert_eq!(office.document_count()?, laptop.document_count()?);
    println!(
        "\nreplicas converged at {} documents each (one is the preserved conflict)",
        office.document_count()?
    );
    Ok(())
}
