//! `log.nsf`: the server logs itself.
//!
//! A workload crashes and recovers a database, replicates between two
//! replicas, serves HTTP (including a denial), and floods a tiny worker
//! pool — all of which lands as structured events on the bus. The logger
//! task files every event as a document in a real `log.nsf`, DDM probes
//! escalate on the shedding worker pool, and the log is then *browsed
//! over HTTP* under its own ACL, because the server's log is just
//! another Notes database.
//!
//! Run with: `cargo run --example event_log`

use std::sync::Arc;

use domino::core::{Database, DbConfig, Note};
use domino::obs;
use domino::replica::{CleanTransport, ReplicationOptions, Replicator};
use domino::security::AccessLevel;
use domino::server::{
    Console, DominoServer, LoggerConfig, ProbeCondition, ProbeEngine, ProbeRule, Request,
    ServerConfig, ServerLog,
};
use domino::storage::MemDisk;
use domino::types::{LogicalClock, NoteClass, ReplicaId, Value};
use domino::views::{ColumnSpec, ViewDesign};
use domino::wal::MemLogStore;

fn main() -> domino::types::Result<()> {
    // The logger: a real database titled `log`, plus custom DDM probes
    // watching the worker pool (threshold 1 so the demo flood fires it;
    // one more firing tick escalates).
    let log = ServerLog::with_config(LoggerConfig {
        stats_every: 4,
        probe_every: 1,
        ..LoggerConfig::default()
    })?;
    log.set_probes(Some(ProbeEngine::new(vec![ProbeRule::new(
        "http.workers.shedding",
        ProbeCondition::CounterDeltaAtLeast {
            metric: "Http.Worker.Shed",
            threshold: 1,
        },
        obs::Severity::Warning,
    )
    .escalating_after(1)])));
    // The logger task proper: a background drainer on the roster. The
    // demo drains by hand for deterministic output, so give the thread a
    // long interval — it still appears in `show tasks` and flushes one
    // last time on stop.
    let logger_task = log.start(std::time::Duration::from_secs(60));

    // --- phase A: crash + restart recovery ----------------------------
    println!("== phase A: crash and recover ==");
    let disk = MemDisk::new();
    let wal = MemLogStore::new();
    let clock = LogicalClock::new();
    {
        let db = Database::open(
            Box::new(disk.clone()),
            Some(Box::new(wal.clone())),
            DbConfig::new("Ledger", ReplicaId(5), ReplicaId(50)),
            clock.clone(),
        )?;
        for i in 0..60 {
            let mut n = Note::document("Entry");
            n.set("Seq", Value::Number(i as f64));
            db.save(&mut n)?;
        }
        db.checkpoint()?;
        wal.crash(); // power cut
    }
    let ledger = Database::open(
        Box::new(disk),
        Some(Box::new(wal)),
        DbConfig::new("Ledger", ReplicaId(5), ReplicaId(50)),
        clock.clone(),
    )?;
    println!(
        "recovered {} documents after the crash",
        ledger.document_count()?
    );

    // --- phase B: replication ------------------------------------------
    println!("\n== phase B: replicate ==");
    let src = Arc::new(Database::open_in_memory(
        DbConfig::new("HQ", ReplicaId(9), ReplicaId(90)),
        clock.clone(),
    )?);
    let dst = Arc::new(Database::open_in_memory(
        DbConfig::new("Branch", ReplicaId(9), ReplicaId(91)),
        clock.clone(),
    )?);
    for i in 0..25 {
        let mut n = Note::document("Topic");
        n.set("Subject", Value::text(format!("topic {i}")));
        src.save(&mut n)?;
    }
    let mut repl = Replicator::new(ReplicationOptions::default());
    let report = repl.pull_via(&dst, &src, &mut CleanTransport)?;
    println!(
        "replicated {} notes HQ -> Branch ({} bytes)",
        report.added, report.bytes_shipped
    );

    // --- phase C: HTTP traffic, a denial, and a flood -------------------
    println!("\n== phase C: serve, deny, flood ==");
    let server = DominoServer::new(ServerConfig {
        workers: 1,
        queue_bound: 2,
        cache_capacity: 0,
    });
    server.register_database("hq", &src)?;
    let design = ViewDesign::new("topics", r#"SELECT Form = "Topic""#)?
        .column(ColumnSpec::new("Subject", "Subject")?);
    server.add_view("hq", design)?;
    server.register_user("ada", "secret");
    server.register_user("mallory", "secret");

    // The log database is served like any other — under its own ACL.
    log.grant("ada", AccessLevel::Reader)?;
    server.register_database("log", log.database())?;

    let ok = server.handle(&Request::get("/hq.nsf/topics?OpenView").as_user("ada", "secret"));
    println!("ada opens the view: {}", ok.status.code());
    let denied =
        server.handle(&Request::get("/log.nsf/events?OpenView").as_user("mallory", "secret"));
    println!("mallory pries at log.nsf: {}", denied.status.code());
    assert_eq!(denied.status.code(), 403);

    // Two flood rounds so the shed-rate probe fires, persists, and
    // escalates one severity step.
    for round in 1..=2 {
        let rxs: Vec<_> = (0..100)
            .map(|_| server.submit(Request::get("/hq.nsf/topics?OpenView")))
            .collect();
        let shed = rxs
            .into_iter()
            .filter(|rx| rx.recv().expect("worker reply").status.code() == 503)
            .count();
        println!("flood round {round}: shed with 503: {shed}");
        assert!(shed > 0, "a bounded queue must shed under flood");
        let drained = log.drain();
        println!(
            "logger drain: {} events -> {} documents",
            drained.drained, drained.written
        );
    }

    // --- phase D: read the log like the admin would ---------------------
    println!("\n== phase D: browse log.nsf ==");
    let db = log.database();
    let mut request_doc = None;
    let mut replication_doc = None;
    let mut escalation_doc = None;
    let mut recovery_doc = None;
    for id in db.note_ids(Some(NoteClass::Document))? {
        let doc = db.open_summary(id)?;
        match doc.get_text("Form").as_deref() {
            Some("HttpRequest") if request_doc.is_none() => request_doc = Some(doc),
            Some("Replication") if replication_doc.is_none() => replication_doc = Some(doc),
            Some("Probe") if doc.get("Escalated").and_then(|v| v.as_number().ok()) == Some(1.0) => {
                escalation_doc = Some(doc)
            }
            Some("Event") if doc.get_text("Code").as_deref() == Some("Recovery.Completed") => {
                recovery_doc = Some(doc)
            }
            _ => {}
        }
    }
    let request_doc = request_doc.expect("an HttpRequest document");
    println!(
        "HTTP request document: {} {} -> {} by {} in {} us",
        request_doc.get_text("Method").unwrap_or_default(),
        request_doc.get_text("Command").unwrap_or_default(),
        request_doc
            .get("Status")
            .and_then(|v| v.as_number().ok())
            .unwrap_or(0.0),
        request_doc.get_text("User").unwrap_or_default(),
        request_doc
            .get("DurationMicros")
            .and_then(|v| v.as_number().ok())
            .unwrap_or(0.0),
    );
    let replication_doc = replication_doc.expect("a Replication event document");
    println!(
        "Replication event: {}",
        replication_doc.get_text("Subject").unwrap_or_default()
    );
    let recovery_doc = recovery_doc.expect("a Recovery.Completed event document");
    println!(
        "recovery event: {}",
        recovery_doc.get_text("Subject").unwrap_or_default()
    );
    let escalation_doc = escalation_doc.expect("an escalated Probe document");
    println!(
        "probe escalation: {} at {} (streak {})",
        escalation_doc.get_text("Probe").unwrap_or_default(),
        escalation_doc.get_text("Severity").unwrap_or_default(),
        escalation_doc
            .get("Streak")
            .and_then(|v| v.as_number().ok())
            .unwrap_or(0.0),
    );

    // Ada browses the same documents over HTTP; anonymous cannot.
    let page = server.handle(&Request::get("/log.nsf/requests?OpenView").as_user("ada", "secret"));
    assert_eq!(page.status.code(), 200);
    println!(
        "ada browses /log.nsf/requests?OpenView: {}",
        page.status.code()
    );
    let unid = request_doc.unid();
    let doc_page = server.handle(
        &Request::get(&format!("/log.nsf/requests/{unid}?OpenDocument")).as_user("ada", "secret"),
    );
    assert_eq!(doc_page.status.code(), 200);
    println!("ada opens the request document: {}", doc_page.status.code());
    assert_eq!(
        server
            .handle(&Request::get("/log.nsf/requests?OpenView"))
            .status
            .code(),
        401
    );
    println!("anonymous gets 401 at the log's door");

    // --- phase E: the console ------------------------------------------
    println!("\n== phase E: console ==");
    let console = Console::new(log.clone());
    let roster = console.exec("show tasks");
    assert!(roster.contains("logger"), "logger task missing: {roster}");
    print!("{roster}");
    print!("{}", console.exec("show events warning"));
    print!("{}", console.exec("tell logger rotate"));
    logger_task.stop();

    // The guard that keeps this loop sound: filing log documents emitted
    // exactly zero events about itself.
    println!("\nlogger recursion events: {}", log.recursion_events());
    assert_eq!(log.recursion_events(), 0);
    println!("event log demo complete");
    Ok(())
}
