//! Mail routing across server topologies.
//!
//! Notes mail is "just documents + routing": the router moves memo
//! documents hop-by-hop between servers' `mail.box` databases. This
//! example routes the same message load over three topologies and prints
//! delivered latency and link traffic.
//!
//! Run with: `cargo run --example mail_routing`

use domino::net::{LinkSpec, MailRouter, MailUser, Network, Topology};
use domino::types::LogicalClock;

fn main() -> domino::types::Result<()> {
    println!(
        "{:<12} {:>8} {:>10} {:>12} {:>12}",
        "topology", "hops", "mean lat", "max lat", "link bytes"
    );
    for topology in [Topology::Mesh, Topology::HubSpoke, Topology::Chain] {
        let mut net = Network::new(
            6,
            topology,
            LinkSpec {
                latency: 3,
                bytes_per_tick: 256,
                ..LinkSpec::default()
            },
            LogicalClock::new(),
        );
        let users: Vec<MailUser> = (0..6)
            .map(|i| MailUser {
                name: format!("user{i}"),
                home_server: i,
            })
            .collect();
        let mut router = MailRouter::setup(&mut net, &users)?;

        // Every user mails every other user once.
        for from in 0..6usize {
            for to in 0..6usize {
                if from != to {
                    router.send(
                        &net,
                        from,
                        &format!("user{from}"),
                        &format!("user{to}"),
                        &format!("memo {from}->{to}"),
                        "Lorem ipsum dolor sit amet, consectetur adipiscing elit.",
                    )?;
                }
            }
        }
        router.run_until_delivered(&mut net, 10_000)?;
        let s = router.stats();
        assert_eq!(s.delivered, 30);
        println!(
            "{:<12} {:>8} {:>10.1} {:>12} {:>12}",
            topology.name(),
            s.forwarded,
            s.total_latency as f64 / s.delivered as f64,
            s.max_latency,
            net.total_traffic().bytes,
        );
    }
    println!("\n(mesh: direct links, lowest latency; chain: most forwarding hops)");
    Ok(())
}
