//! Offline sync: selective replication, field-level bandwidth, the
//! deletion-stub purge anomaly the paper warns administrators about, and
//! syncing over a lossy dial-up link with retry.
//!
//! Run with: `cargo run --example offline_sync`

use std::sync::Arc;

use domino::core::{Database, DbConfig, Note};
use domino::formula::Formula;
use domino::replica::{ReplicationOptions, Replicator};
use domino::types::{LogicalClock, ReplicaId, Timestamp, Value};

fn main() -> domino::types::Result<()> {
    let clock = LogicalClock::new();
    let server = Arc::new(Database::open_in_memory(
        DbConfig::new("CRM", ReplicaId(0xC12), ReplicaId(1)).with_purge_interval(10_000),
        clock.clone(),
    )?);
    // The laptop replica keeps only *its region's* accounts: a selective
    // replication formula.
    let laptop = Arc::new(Database::open_in_memory(
        DbConfig::new("CRM", ReplicaId(0xC12), ReplicaId(2)).with_purge_interval(10_000),
        LogicalClock::starting_at(Timestamp(5_000)),
    )?);
    let mut repl = Replicator::new(ReplicationOptions {
        selective: Some(Formula::compile(r#"SELECT Region = "west""#)?),
        ..ReplicationOptions::default()
    });

    for (name, region) in [
        ("Acme", "west"),
        ("Globex", "east"),
        ("Initech", "west"),
        ("Umbrella", "east"),
    ] {
        let mut acct = Note::document("Account");
        acct.set("Name", Value::text(name));
        acct.set("Region", Value::text(region));
        acct.set("Notes", Value::text("initial call notes ".repeat(20)));
        server.save(&mut acct)?;
    }

    let (_, into_laptop) = repl.sync(&server, &laptop)?;
    println!(
        "selective sync: laptop received {} of {} accounts ({} filtered), {} bytes",
        into_laptop.added,
        server.document_count()?,
        into_laptop.skipped_selective,
        into_laptop.bytes_shipped
    );

    // Touch one field of one west account: field-level replication ships
    // only the changed item (plus digests), not the whole document.
    let acme = server
        .search(
            &Formula::compile(r#"SELECT Name = "Acme""#)?,
            &Default::default(),
        )?
        .remove(0);
    let mut acme_edit = server.open_note(acme.id)?;
    acme_edit.set("Phone", Value::text("+1-555-0100"));
    server.save(&mut acme_edit)?;
    let (_, delta) = repl.sync(&server, &laptop)?;
    println!(
        "field-level update: {} items, {} bytes shipped (document is ~{} bytes)",
        delta.items_shipped,
        delta.bytes_shipped,
        acme_edit.byte_size()
    );

    // Deletions travel as stubs...
    let doomed = server
        .search(
            &Formula::compile(r#"SELECT Name = "Initech""#)?,
            &Default::default(),
        )?
        .remove(0);
    server.delete(doomed.id)?;
    let (_, del) = repl.sync(&server, &laptop)?;
    println!(
        "deletion: laptop applied {} deletion(s); stubs on laptop: {}",
        del.deletions,
        laptop.stubs()?.len()
    );

    // ...and here is the classic anomaly: purge stubs *before* a stale
    // replica has seen the deletion and the document comes back from the
    // dead. (Our purge interval is 10_000 ticks; jump past it.)
    let stale = Arc::new(Database::open_in_memory(
        DbConfig::new("CRM", ReplicaId(0xC12), ReplicaId(3)).with_purge_interval(10_000),
        LogicalClock::starting_at(Timestamp(9_000)),
    )?);
    let mut stale_repl = Replicator::new(ReplicationOptions::default());
    stale_repl.sync(&server, &stale)?; // stale copy gets ALL accounts? no —
                                       // deletion already propagated here,
                                       // so sync it BEFORE the delete next time.
    clock.advance(50_000);
    let purged = server.purge_stubs()?;
    println!("purged {purged} old stub(s) from the server");

    // A replica that still holds the document (it synced before the
    // delete, then went quiet) now replicates back in:
    let mut zombie = Note::document("Account");
    zombie.set("Name", Value::text("Initech"));
    zombie.set("Region", Value::text("west"));
    // Simulate: the stale replica never saw the deletion (it held a
    // pre-delete copy). With the stub purged, the server cannot refute the
    // old document and it returns.
    let offline_holder = Arc::new(Database::open_in_memory(
        DbConfig::new("CRM", ReplicaId(0xC12), ReplicaId(4)),
        LogicalClock::starting_at(Timestamp(100)),
    )?);
    offline_holder.save(&mut zombie)?;
    let (back, _) = stale_repl.sync(&server, &offline_holder)?;
    println!(
        "after purge, a stale replica resurrected {} document(s): the purge-interval anomaly",
        back.added
    );

    // Finally, the dial-up scenario the paper's administrators lived with:
    // a laptop syncing over a link that loses 10% of messages. Retry with
    // backoff plus the resumable pull cursor rides it out.
    use domino::net::{LinkSpec, Network, Topology};
    use domino::replica::RetryPolicy;
    let mut net = Network::new(
        2,
        Topology::Mesh,
        LinkSpec::default().with_drop_rate(0.10),
        LogicalClock::new(),
    );
    net.set_fault_seed(99); // deterministic faults
    net.set_retry_policy(RetryPolicy::standard());
    net.create_replica_set("CRM")?;
    for i in 0..240 {
        let mut acct = Note::document("Account");
        acct.set("Name", Value::text(format!("account {i}")));
        net.db(0, "CRM")?.save(&mut acct)?;
    }
    let rounds = net.run_until_converged("CRM", 50)?;
    let faults = net.total_faults();
    println!(
        "lossy-link sync: converged in {rounds} round(s) despite {} dropped \
         message(s) and {} aborted pass(es)",
        faults.dropped, faults.aborted_passes
    );
    assert!(net.converged("CRM")?);
    Ok(())
}
