//! Quickstart: create a database, save documents, query them three ways
//! (formula search, a sorted view, full-text), and enforce some security.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use domino::core::{Database, DbConfig, Note, Session};
use domino::formula::Formula;
use domino::ftindex::FtIndex;
use domino::security::{AccessLevel, Acl, AclEntry, Directory};
use domino::types::{LogicalClock, ReplicaId, Value};
use domino::views::{ColumnSpec, SortDir, View, ViewDesign};

fn main() -> domino::types::Result<()> {
    // A database is identified by a replica id (shared by all replicas)
    // and an instance id (unique to this physical copy).
    let db = Arc::new(Database::open_in_memory(
        DbConfig::new("Team Tasks", ReplicaId(0x7EA3), ReplicaId(0x0001)),
        LogicalClock::new(),
    )?);

    // Attach a view (incrementally maintained from here on) and a
    // full-text index.
    let view = View::attach(
        &db,
        ViewDesign::new(
            "Open by priority",
            r#"SELECT Form = "Task" & Status != "done""#,
        )?
        .column(ColumnSpec::new("Priority", "Priority")?.sorted(SortDir::Descending))
        .column(ColumnSpec::new("Subject", "Subject")?.sorted(SortDir::Ascending))
        .column(ColumnSpec::new("Hours", "Hours")?.totaled()),
    )?;
    let ft = FtIndex::attach(&db)?;

    // Documents are schemaless bags of typed items.
    for (subject, prio, hours, status) in [
        ("write the design note", 2.0, 6.0, "open"),
        ("review storage engine", 3.0, 4.0, "open"),
        ("ship the beta", 1.0, 12.0, "done"),
        ("fix replication conflict test", 3.0, 2.0, "open"),
    ] {
        let mut task = Note::document("Task");
        task.set("Subject", Value::text(subject));
        task.set("Priority", Value::Number(prio));
        task.set("Hours", Value::Number(hours));
        task.set("Status", Value::text(status));
        db.save(&mut task)?;
    }

    println!("== view: open tasks by priority ==");
    for row in view.rows() {
        println!(
            "  p{} {:<32} {}h",
            row.values[0].to_text(),
            row.values[1].to_text(),
            row.values[2].to_text()
        );
    }
    println!("  total hours open: {}", view.column_total(2));

    // Formula search works on any item.
    let f = Formula::compile(r#"SELECT Form = "Task" & Hours > 5"#)?;
    let big = db.search(&f, &Default::default())?;
    println!("\n== formula: tasks over 5 hours ==");
    for t in &big {
        println!("  {}", t.get_text("Subject").unwrap_or_default());
    }

    // Full-text search with boolean operators.
    println!("\n== full-text: 'replication OR storage' ==");
    for hit in ft.search("replication OR storage")? {
        let n = db.open_by_unid(hit.unid)?;
        println!(
            "  {:.3}  {}",
            hit.score,
            n.get_text("Subject").unwrap_or_default()
        );
    }

    // Security: a reader cannot create tasks.
    let mut acl = Acl::new(AccessLevel::NoAccess);
    acl.set("manager", AclEntry::new(AccessLevel::Manager));
    acl.set("visitor", AclEntry::new(AccessLevel::Reader));
    db.set_acl(&acl)?;
    let visitor = Session::new(db.clone(), "visitor", Directory::new());
    let mut draft = Note::document("Task");
    match visitor.save(&mut draft) {
        Err(e) => println!("\nvisitor blocked as expected: {e}"),
        Ok(_) => unreachable!("readers may not create documents"),
    }
    Ok(())
}
