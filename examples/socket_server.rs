//! The network stack end-to-end over real loopback sockets: boot the
//! HTTP task on an ephemeral TCP port, drive keep-alive requests through
//! a raw `TcpStream` (watching the command cache answer repeats), pull a
//! replica through the NRPC stand-in wire protocol, then drain the
//! listener gracefully with the console verb an admin would use.
//!
//! Run with: `cargo run --example socket_server`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use domino::core::{Database, DbConfig, Note};
use domino::netio::{base64_encode, HttpConfig, HttpListener, ReplicaListener, SocketTransport};
use domino::replica::{ReplicationOptions, Replicator};
use domino::security::{AccessLevel, Acl, AclEntry};
use domino::server::{Console, DominoServer, ServerConfig, ServerLog};
use domino::types::{LogicalClock, NoteClass, ReplicaId, Value};
use domino::views::{ColumnSpec, SortDir, ViewDesign};

/// Read one HTTP response off `conn`; returns its status code and the
/// `X-Command-Cache` diagnostic header (`hit`/`miss`).
fn read_response(conn: &mut TcpStream) -> (u16, String) {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        let n = conn.read(&mut buf).expect("read response");
        assert!(n > 0, "server closed mid-response");
        raw.extend_from_slice(&buf[..n]);
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&raw[..pos]).expect("head utf8");
            let status: u16 = head
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .expect("status line");
            let body_len = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.parse::<usize>().ok())
                .expect("Content-Length");
            let cache = head
                .lines()
                .find_map(|l| l.strip_prefix("X-Command-Cache: "))
                .unwrap_or("-")
                .to_string();
            // Drain the body so the next keep-alive response starts clean.
            while raw.len() < pos + 4 + body_len {
                let n = conn.read(&mut buf).expect("read body");
                assert!(n > 0, "server closed mid-body");
                raw.extend_from_slice(&buf[..n]);
            }
            return (status, cache);
        }
    }
}

fn main() -> domino::types::Result<()> {
    // --- a discussion database behind the HTTP task --------------------
    let db = Arc::new(Database::open_in_memory(
        DbConfig::new("Discussion", ReplicaId(0xD0), ReplicaId(0x50C7)),
        LogicalClock::new(),
    )?);
    let mut acl = Acl::new(AccessLevel::Reader); // Anonymous may browse
    acl.set("alice", AclEntry::new(AccessLevel::Editor));
    db.set_acl(&acl)?;
    for i in 0..12 {
        let mut topic = Note::document("Topic");
        topic.set("Subject", Value::text(format!("topic {i:02}")));
        db.save(&mut topic)?;
    }

    let server = DominoServer::new(ServerConfig {
        workers: 2,
        queue_bound: 32,
        cache_capacity: 64,
    });
    server.register_database("disc", &db)?;
    let mut design = ViewDesign::new("topics", r#"SELECT Form = "Topic""#)?;
    design.columns = vec![ColumnSpec::new("Subject", "Subject")?.sorted(SortDir::Ascending)];
    server.add_view("disc", design)?;
    server.register_user("alice", "secret-a");

    // --- phase A: the HTTP task on a real TCP port ---------------------
    let listener = Arc::new(
        HttpListener::start(server.clone(), HttpConfig::default()).expect("bind http listener"),
    );
    println!("== phase A: HTTP over TCP ==");
    println!("http task listening on http://{}/", listener.addr());

    let mut conn = TcpStream::connect(listener.addr()).expect("connect");
    for round in 1..=3 {
        conn.write_all(b"GET /disc.nsf/topics?OpenView&Count=5 HTTP/1.1\r\n\r\n")
            .expect("write request");
        let (status, cache) = read_response(&mut conn);
        println!("keep-alive GET round {round}: {status} (cache {cache})");
        assert_eq!(status, 200);
        assert_eq!(cache, if round == 1 { "miss" } else { "hit" });
    }

    // An authenticated POST on the same connection, then close.
    let auth = base64_encode(b"alice:secret-a");
    let body = "Subject=posted+over+tcp";
    let post = format!(
        "POST /disc.nsf/Topic?CreateDocument HTTP/1.1\r\n\
         Authorization: Basic {auth}\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(post.as_bytes()).expect("write post");
    let (status, _) = read_response(&mut conn);
    println!("authenticated POST over the same socket: {status}");
    assert_eq!(status, 200);

    // --- phase B: replication through the wire protocol ----------------
    println!("\n== phase B: replication over the wire ==");
    let mut wire = ReplicaListener::bind("127.0.0.1:0").expect("bind replica listener");
    let mut transport = SocketTransport::connect(&wire.addr());
    let replica = Arc::new(Database::open_in_memory(
        DbConfig::new("Discussion", ReplicaId(0xD0), ReplicaId(0x50C8)),
        LogicalClock::new(),
    )?);
    let mut repl = Replicator::new(ReplicationOptions::default());
    let pass = repl.pull_via(&replica, &db, &mut transport)?;
    let pulled = replica.note_ids(Some(NoteClass::Document))?.len();
    println!(
        "socket replication pull: {} notes added, {} documents in replica, {} wire frames delivered",
        pass.added,
        pulled,
        transport.sent()
    );
    assert_eq!(pulled, 13, "12 topics + the posted document");
    drop(transport);
    wire.shutdown();

    // --- phase C: graceful drain from the console ----------------------
    println!("\n== phase C: tell http quit ==");
    let console = Console::new(ServerLog::open()?);
    let tell = listener.clone();
    console.register_tell("http", move |words| match words {
        ["quit"] => {
            let report = tell.drain(Duration::from_secs(10));
            format!(
                "> tell http quit\n  drained: {} connections open at start, {} remaining\n",
                report.connections_at_start, report.remaining
            )
        }
        _ => String::from("> tell http\n  usage: tell http quit\n"),
    });
    let out = console.exec("tell http quit");
    print!("{out}");
    assert!(out.contains("0 remaining"), "{out}");
    assert_eq!(listener.active_connections(), 0);

    println!("\nsocket server demo complete");
    Ok(())
}
