//! The Domino HTTP task end-to-end: register a discussion database,
//! serve URL commands through the worker pool, watch the command cache
//! absorb a read-heavy request storm, and see the security pipeline turn
//! ACL/`$Readers` denials into 401/403 and overload into 503.
//!
//! Run with: `cargo run --example web_server`

use std::sync::Arc;

use domino::core::{save_agent, AgentDesign, Database, DbConfig, Note};
use domino::security::{AccessLevel, Acl, AclEntry};
use domino::server::{DominoServer, Request, ServerConfig};
use domino::types::{ItemFlags, LogicalClock, ReplicaId, Value};
use domino::views::{ColumnSpec, SortDir, ViewDesign};

fn main() -> domino::types::Result<()> {
    // --- a discussion database with one board-only document -----------
    let db = Arc::new(Database::open_in_memory(
        DbConfig::new("Discussion", ReplicaId(0xD0), ReplicaId(0x11E8)),
        LogicalClock::new(),
    )?);
    let mut acl = Acl::new(AccessLevel::Reader); // Anonymous may browse
    acl.set(
        "alice",
        AclEntry::new(AccessLevel::Editor).with_role("Board"),
    );
    acl.set("bob", AclEntry::new(AccessLevel::Author));
    db.set_acl(&acl)?;

    for i in 0..40 {
        let mut topic = Note::document("Topic");
        topic.set("Subject", Value::text(format!("topic {i:02}")));
        topic.set(
            "From",
            Value::text(if i % 2 == 0 { "alice" } else { "bob" }),
        );
        db.save(&mut topic)?;
    }
    let first_topic = {
        let mut topic = Note::document("Topic");
        topic.set("Subject", Value::text("welcome thread"));
        db.save(&mut topic)?;
        topic.unid()
    };
    // Reader-field restricted: only [Board] role holders see this one.
    let restricted = {
        let mut topic = Note::document("Topic");
        topic.set("Subject", Value::text("budget (board only)"));
        topic.set_with_flags(
            "DocReaders",
            Value::text("[Board]"),
            ItemFlags::SUMMARY | ItemFlags::READERS,
        );
        db.save(&mut topic)?;
        topic.unid()
    };
    // An on-update agent for the amgr to run after the storm's writes.
    save_agent(
        &db,
        &AgentDesign::new(
            "stamp new topics",
            r#"SELECT Form = "Topic" & !@IsAvailable(Stamped); FIELD Stamped := "by amgr""#,
        )?
        .on_update(),
    )?;

    // --- the HTTP task -------------------------------------------------
    let server = DominoServer::new(ServerConfig {
        workers: 4,
        queue_bound: 32,
        cache_capacity: 128,
    });
    server.register_database("disc", &db)?;
    let mut design = ViewDesign::new("topics", r#"SELECT Form = "Topic""#)?;
    design.columns = vec![
        ColumnSpec::new("Subject", "Subject")?.sorted(SortDir::Ascending),
        ColumnSpec::new("From", "From")?,
    ];
    server.add_view("disc", design)?;
    server.register_user("alice", "secret-a");
    server.register_user("bob", "secret-b");

    // --- phase A: one of each security outcome -------------------------
    println!("== phase A: URL commands and the security pipeline ==");
    let view_req = Request::get("/disc.nsf/topics?OpenView&Count=10").as_user("alice", "secret-a");
    let page = server.serve(view_req.clone());
    println!(
        "alice view page: {} (cache-hit={})",
        page.status.code(),
        page.from_cache
    );
    assert_eq!(page.status.code(), 200);
    assert!(page.body.contains("topic 00"));

    let repeat = server.serve(view_req);
    println!(
        "repeat view page: {} (cache-hit={})",
        repeat.status.code(),
        repeat.from_cache
    );
    assert!(repeat.from_cache, "identical re-request must hit the cache");

    let board = server.serve(
        Request::get(&format!("/disc.nsf/{restricted}?OpenDocument")).as_user("alice", "secret-a"),
    );
    println!(
        "alice (Board role) opens restricted doc: {}",
        board.status.code()
    );
    assert_eq!(board.status.code(), 200);

    let denied = server.serve(
        Request::get(&format!("/disc.nsf/{restricted}?OpenDocument")).as_user("bob", "secret-b"),
    );
    println!("bob opens restricted doc: {}", denied.status.code());
    assert_eq!(denied.status.code(), 403);

    let anon_save = server.serve(Request::post(
        &format!("/disc.nsf/{first_topic}?SaveDocument"),
        "Subject=defaced",
    ));
    println!("anonymous save: {}", anon_save.status.code());
    assert_eq!(anon_save.status.code(), 401);

    // --- phase B: a 90%-read request storm through the pool ------------
    println!("\n== phase B: request storm (90% reads, 10% writes) ==");
    let before = domino::obs::snapshot();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            let server = server.clone();
            std::thread::spawn(move || {
                for i in 0..125usize {
                    let n = t * 125 + i;
                    if n % 10 == 9 {
                        // A write: expires every cached page of the db.
                        let r = server.serve(
                            Request::post(
                                "/disc.nsf/Topic?CreateDocument",
                                &format!("Subject=storm+note+{n}"),
                            )
                            .as_user("alice", "secret-a"),
                        );
                        assert_eq!(r.status.code(), 200);
                    } else {
                        // Reads concentrate on three hot view windows.
                        let start = 1 + (n % 3) * 10;
                        let r = server.serve(
                            Request::get(&format!(
                                "/disc.nsf/topics?OpenView&Start={start}&Count=10"
                            ))
                            .as_user("alice", "secret-a"),
                        );
                        assert_eq!(r.status.code(), 200);
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("storm thread");
    }
    let storm = domino::obs::snapshot().diff(&before);
    let hits = storm.counter("Http.Cache.Hits");
    let misses = storm.counter("Http.Cache.Misses");
    let served = storm.counter("Http.Request.Served");
    let hit_rate = 100.0 * hits as f64 / (hits + misses).max(1) as f64;
    let p95 = storm.histogram("Http.Request.Micros").p95();
    println!("requests served: {served}");
    println!("cache hit rate: {hit_rate:.1}% ({hits} hits / {misses} misses)");
    println!("p95 request latency: {p95} us");
    assert!(hits > 0, "hot windows must produce cache hits");

    // The amgr notices the storm's writes and stamps the new documents.
    let reports = server.amgr_tick()?;
    let runs: usize = reports.iter().map(|(_, t)| t.runs.len()).sum();
    let modified: usize = reports
        .iter()
        .flat_map(|(_, t)| t.runs.iter())
        .map(|(_, r)| r.modified)
        .sum();
    println!("amgr tick: {runs} agent run(s), {modified} document(s) stamped");
    assert!(modified >= 50, "every storm write should get stamped");

    // --- phase C: overload answers 503, not an unbounded queue ---------
    println!("\n== phase C: overload ==");
    let tiny = DominoServer::new(ServerConfig {
        workers: 1,
        queue_bound: 2,
        cache_capacity: 0,
    });
    tiny.register_database("disc", &db)?;
    let rxs: Vec<_> = (0..100)
        .map(|_| tiny.submit(Request::get("/disc.nsf/$all?OpenView")))
        .collect();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for rx in rxs {
        match rx.recv().expect("worker reply").status.code() {
            503 => shed += 1,
            _ => ok += 1,
        }
    }
    println!("flood of 100 on 1 worker / queue of 2: {ok} served, shed with 503: {shed}");
    assert!(shed > 0, "a bounded queue must shed under flood");

    println!("\nweb server demo complete");
    Ok(())
}
