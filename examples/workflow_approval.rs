//! Workflow on the document store: forms (defaults, computed fields,
//! validation), agents (stored formula programs), and folders — the
//! "structured workflow with Notes" pattern the tutorial's groupware story
//! builds to.
//!
//! Run with: `cargo run --example workflow_approval`

use std::sync::Arc;

use domino::core::{
    save_agent, save_form, AgentDesign, Database, DbConfig, FieldSpec, FormDesign, Note, Session,
};
use domino::security::Directory;
use domino::types::{LogicalClock, ReplicaId, Value};
use domino::views::Folder;

fn main() -> domino::types::Result<()> {
    let db = Arc::new(Database::open_in_memory(
        DbConfig::new("Expenses", ReplicaId(0xE58), ReplicaId(1)),
        LogicalClock::new(),
    )?);

    // The Expense form: defaults, a computed total, and validation.
    let form =
        FormDesign::new("Expense")
            .field(FieldSpec::editable("Status").with_default(r#""submitted""#)?)
            .field(FieldSpec::computed("Total", "Quantity * UnitPrice")?)
            .field(FieldSpec::computed_when_composed(
                "SubmittedBy",
                "@UserName",
            )?)
            .field(FieldSpec::editable("Quantity").validated(
                r#"@If(Quantity > 0; @Success; @Failure("quantity must be positive"))"#,
            )?);
    save_form(&db, &form)?;

    // The approval agent: small expenses auto-approve, big ones escalate.
    let agent = AgentDesign::new(
        "triage",
        r#"SELECT Form = "Expense" & Status = "submitted";
           FIELD Status := @If(Total > 500; "needs-approval"; "approved")"#,
    )?
    .scheduled(100);
    save_agent(&db, &agent)?;

    // Users submit expenses through sessions (forms apply automatically).
    let ann = Session::new(db.clone(), "ann", Directory::new());
    let bob = Session::new(db.clone(), "bob", Directory::new());
    let mut small = Note::document("Expense");
    small.set("What", Value::text("train ticket"));
    small.set("Quantity", Value::Number(2.0));
    small.set("UnitPrice", Value::Number(45.0));
    ann.save(&mut small)?;
    let mut big = Note::document("Expense");
    big.set("What", Value::text("conference booth"));
    big.set("Quantity", Value::Number(1.0));
    big.set("UnitPrice", Value::Number(4200.0));
    bob.save(&mut big)?;

    // Validation rejects a bad submission outright.
    let mut bad = Note::document("Expense");
    bad.set("What", Value::text("negative quantity?!"));
    bad.set("Quantity", Value::Number(-3.0));
    bad.set("UnitPrice", Value::Number(10.0));
    match ann.save(&mut bad) {
        Err(e) => println!("validation blocked a bad expense: {e}"),
        Ok(_) => unreachable!(),
    }

    println!(
        "submitted: {} (total {}), {} (total {})",
        small.get_text("What").unwrap(),
        small.get_text("Total").unwrap(),
        big.get_text("What").unwrap(),
        big.get_text("Total").unwrap(),
    );

    // The scheduled agent runs (normally the server does this).
    for stored in domino::core::stored_agents(&db)? {
        let report = stored.run(&db, "server")?;
        println!(
            "agent {:?}: examined {}, selected {}, modified {}",
            stored.name, report.examined, report.selected, report.modified
        );
    }

    // An approver works a folder of escalated expenses.
    let inbox = Folder::create(&db, "Awaiting Approval")?;
    let needs = db.search(
        &domino::formula::Formula::compile(r#"SELECT Status = "needs-approval""#)?,
        &Default::default(),
    )?;
    for doc in &needs {
        inbox.add(doc.unid())?;
    }
    println!("\nAwaiting Approval folder:");
    for doc in inbox.documents()? {
        println!(
            "  {} — {} by {}",
            doc.get_text("What").unwrap_or_default(),
            doc.get_text("Total").unwrap_or_default(),
            doc.get_text("SubmittedBy").unwrap_or_default(),
        );
    }

    // Approve and clear the folder.
    for unid in inbox.members()? {
        let mut doc = db.open_by_unid(unid)?;
        doc.set("Status", Value::text("approved"));
        doc.set("ApprovedBy", Value::text("carol"));
        db.save(&mut doc)?;
        inbox.remove(unid)?;
    }
    let approved = db.search(
        &domino::formula::Formula::compile(r#"SELECT Status = "approved""#)?,
        &Default::default(),
    )?;
    println!("\napproved expenses: {}", approved.len());
    assert_eq!(approved.len(), 2);
    assert!(inbox.is_empty()?);
    Ok(())
}
