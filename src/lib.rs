//! # domino-rs
//!
//! A from-scratch Rust reproduction of the system described in C. Mohan's
//! SIGMOD 1999 industrial tutorial *"A Database Perspective on Lotus
//! Domino/Notes"*: a groupware document database with
//!
//! * an NSF-style transactional note store ([`storage`], [`wal`]),
//! * schemaless notes with typed items ([`core`]),
//! * the formula language ([`formula`]),
//! * incrementally-maintained views with categories, totals, and response
//!   threads ([`views`]),
//! * multi-master replication with field-level transfer, conflict
//!   documents, deletion stubs, selective replication, and clustering
//!   ([`replica`]),
//! * per-database full-text search ([`ftindex`]),
//! * ACL + reader/author-field security ([`security`]),
//! * a deterministic multi-server simulator with mail routing ([`net`]),
//! * the Domino HTTP task serving databases over URL commands
//!   ([`server`]),
//! * and real sockets in front of it all — a TCP HTTP/1.1 listener and
//!   the NRPC stand-in replication wire protocol ([`netio`]).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use domino::core::{Database, DbConfig, Note};
//! use domino::types::{LogicalClock, ReplicaId, Value};
//!
//! let db = Arc::new(Database::open_in_memory(
//!     DbConfig::new("My Discussion", ReplicaId(1), ReplicaId(0xA11CE)),
//!     LogicalClock::new(),
//! ).unwrap());
//!
//! let mut memo = Note::document("Memo");
//! memo.set("Subject", Value::text("hello, groupware"));
//! db.save(&mut memo).unwrap();
//!
//! let found = db.open_by_unid(memo.unid()).unwrap();
//! assert_eq!(found.get_text("Subject").unwrap(), "hello, groupware");
//! ```
//!
//! See `examples/` for replication, views, mail routing, and crash
//! recovery walkthroughs, and DESIGN.md / EXPERIMENTS.md for the paper
//! mapping and benchmark results.

pub use domino_core as core;
pub use domino_formula as formula;
pub use domino_ftindex as ftindex;
pub use domino_net as net;
pub use domino_netio as netio;
pub use domino_obs as obs;
pub use domino_replica as replica;
pub use domino_security as security;
pub use domino_server as server;
pub use domino_storage as storage;
pub use domino_types as types;
pub use domino_views as views;
pub use domino_wal as wal;
