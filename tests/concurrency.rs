//! Thread-safety: a `Database` behind `Arc` takes concurrent writers and
//! readers (internally serialized), with live views and a full-text index
//! attached, without deadlock or lost writes.

use std::sync::Arc;
use std::thread;

use domino::core::{Database, DbConfig, Note};
use domino::ftindex::FtIndex;
use domino::types::{LogicalClock, NoteClass, ReplicaId, Value};
use domino::views::{ColumnSpec, SortDir, View, ViewDesign};

#[test]
fn concurrent_writers_with_live_indexes() {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("Shared", ReplicaId(1), ReplicaId(9)),
            LogicalClock::new(),
        )
        .unwrap(),
    );
    let view = View::attach(
        &db,
        ViewDesign::new("all", r#"SELECT Form = "Memo""#)
            .unwrap()
            .column(
                ColumnSpec::new("Subject", "Subject")
                    .unwrap()
                    .sorted(SortDir::Ascending),
            ),
    )
    .unwrap();
    let ft = FtIndex::attach(&db).unwrap();

    const THREADS: usize = 4;
    const PER_THREAD: usize = 50;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            for i in 0..PER_THREAD {
                let mut n = Note::document("Memo");
                n.set("Subject", Value::text(format!("t{t}-m{i:02} payload")));
                db.save(&mut n).unwrap();
                // Interleave reads.
                let _ = db.open_note(n.id).unwrap();
            }
        }));
    }
    // A reader thread hammering queries while writes happen.
    let reader_db = db.clone();
    let reader = thread::spawn(move || {
        let mut max_seen = 0;
        for _ in 0..200 {
            max_seen = max_seen.max(reader_db.note_ids(Some(NoteClass::Document)).unwrap().len());
        }
        max_seen
    });
    for h in handles {
        h.join().unwrap();
    }
    let _ = reader.join().unwrap();

    assert_eq!(db.document_count().unwrap(), THREADS * PER_THREAD);
    assert_eq!(view.len(), THREADS * PER_THREAD, "view saw every write");
    assert_eq!(
        ft.search("payload").unwrap().len(),
        THREADS * PER_THREAD,
        "full-text saw every write"
    );
    // Rows are distinct and sorted.
    let rows = view.rows();
    let mut subjects: Vec<String> = rows.iter().map(|e| e.values[0].to_text()).collect();
    let sorted = subjects.clone();
    subjects.sort();
    assert_eq!(subjects, sorted);
}

#[test]
fn optimistic_conflict_under_racing_editors() {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("Race", ReplicaId(1), ReplicaId(9)),
            LogicalClock::new(),
        )
        .unwrap(),
    );
    let mut base = Note::document("Memo");
    base.set("Counter", Value::Number(0.0));
    db.save(&mut base).unwrap();
    let id = base.id;

    // N threads increment with retry-on-conflict; total must equal N*K.
    const THREADS: usize = 4;
    const INCREMENTS: usize = 25;
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..INCREMENTS {
                loop {
                    let mut n = db.open_note(id).unwrap();
                    let c = n.get("Counter").unwrap().as_number().unwrap();
                    n.set("Counter", Value::Number(c + 1.0));
                    match db.save(&mut n) {
                        Ok(()) => break,
                        Err(e) if e.kind() == "update_conflict" => continue,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let n = db.open_note(id).unwrap();
    assert_eq!(
        n.get("Counter"),
        Some(&Value::Number((THREADS * INCREMENTS) as f64)),
        "optimistic concurrency lost an increment"
    );
}
