//! Thread-safety: a `Database` behind `Arc` takes concurrent writers and
//! readers (internally serialized), with live views and a full-text index
//! attached, without deadlock or lost writes.

use std::sync::Arc;
use std::thread;

use domino::core::{Database, DbConfig, Note};
use domino::ftindex::FtIndex;
use domino::types::{LogicalClock, NoteClass, ReplicaId, Value};
use domino::views::{ColumnSpec, SortDir, View, ViewDesign};

#[test]
fn concurrent_writers_with_live_indexes() {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("Shared", ReplicaId(1), ReplicaId(9)),
            LogicalClock::new(),
        )
        .unwrap(),
    );
    let view = View::attach(
        &db,
        ViewDesign::new("all", r#"SELECT Form = "Memo""#)
            .unwrap()
            .column(
                ColumnSpec::new("Subject", "Subject")
                    .unwrap()
                    .sorted(SortDir::Ascending),
            ),
    )
    .unwrap();
    let ft = FtIndex::attach(&db).unwrap();

    const THREADS: usize = 4;
    const PER_THREAD: usize = 50;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            for i in 0..PER_THREAD {
                let mut n = Note::document("Memo");
                n.set("Subject", Value::text(format!("t{t}-m{i:02} payload")));
                db.save(&mut n).unwrap();
                // Interleave reads.
                let _ = db.open_note(n.id).unwrap();
            }
        }));
    }
    // A reader thread hammering queries while writes happen.
    let reader_db = db.clone();
    let reader = thread::spawn(move || {
        let mut max_seen = 0;
        for _ in 0..200 {
            max_seen = max_seen.max(reader_db.note_ids(Some(NoteClass::Document)).unwrap().len());
        }
        max_seen
    });
    for h in handles {
        h.join().unwrap();
    }
    let _ = reader.join().unwrap();

    assert_eq!(db.document_count().unwrap(), THREADS * PER_THREAD);
    assert_eq!(view.len(), THREADS * PER_THREAD, "view saw every write");
    assert_eq!(
        ft.search("payload").unwrap().len(),
        THREADS * PER_THREAD,
        "full-text saw every write"
    );
    // Rows are distinct and sorted.
    let rows = view.rows();
    let mut subjects: Vec<String> = rows.iter().map(|e| e.values[0].to_text()).collect();
    let sorted = subjects.clone();
    subjects.sort();
    assert_eq!(subjects, sorted);
}

#[test]
fn optimistic_conflict_under_racing_editors() {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("Race", ReplicaId(1), ReplicaId(9)),
            LogicalClock::new(),
        )
        .unwrap(),
    );
    let mut base = Note::document("Memo");
    base.set("Counter", Value::Number(0.0));
    db.save(&mut base).unwrap();
    let id = base.id;

    // N threads increment with retry-on-conflict; total must equal N*K.
    const THREADS: usize = 4;
    const INCREMENTS: usize = 25;
    let mut handles = Vec::new();
    for _ in 0..THREADS {
        let db = db.clone();
        handles.push(thread::spawn(move || {
            for _ in 0..INCREMENTS {
                loop {
                    let mut n = db.open_note(id).unwrap();
                    let c = n.get("Counter").unwrap().as_number().unwrap();
                    n.set("Counter", Value::Number(c + 1.0));
                    match db.save(&mut n) {
                        Ok(()) => break,
                        Err(e) if e.kind() == "update_conflict" => continue,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let n = db.open_note(id).unwrap();
    assert_eq!(
        n.get("Counter"),
        Some(&Value::Number((THREADS * INCREMENTS) as f64)),
        "optimistic concurrency lost an increment"
    );
}

/// 8-thread hammer on the snapshot/lock-table concurrency layer: four
/// writers bump per-note counters under per-note exclusive locks (all
/// note sets disjoint, so no writer ever waits on another) while four
/// readers pin snapshots in a tight loop. Readers check that snapshot
/// sequences are monotone and that every snapshot is internally
/// consistent; afterwards the final snapshot must equal the engine's
/// current state note-for-note.
#[test]
fn snapshot_readers_against_writer_storm() {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("Hammer", ReplicaId(1), ReplicaId(9)).with_lock_table(true),
            LogicalClock::new(),
        )
        .unwrap(),
    );

    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const NOTES_PER_WRITER: usize = 2;
    const ROUNDS: usize = 40;

    // Seed each writer's private notes.
    let mut owned: Vec<Vec<_>> = Vec::new();
    for w in 0..WRITERS {
        let mut ids = Vec::new();
        for k in 0..NOTES_PER_WRITER {
            let mut n = Note::document("Memo");
            n.set("Subject", Value::text(format!("w{w}-n{k}")));
            n.set("Counter", Value::Number(0.0));
            db.save(&mut n).unwrap();
            ids.push(n.id);
        }
        owned.push(ids);
    }

    let barrier = Arc::new(std::sync::Barrier::new(WRITERS + READERS));
    let mut handles = Vec::new();
    for ids in owned {
        let db = db.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            for i in 0..ROUNDS {
                let id = ids[i % ids.len()];
                let mut n = db.open_note(id).unwrap();
                let c = n.get("Counter").unwrap().as_number().unwrap();
                n.set("Counter", Value::Number(c + 1.0));
                // Disjoint note sets: no other writer holds this lock and
                // no optimistic conflict is possible.
                db.save(&mut n).unwrap();
            }
        }));
    }
    for _ in 0..READERS {
        let db = db.clone();
        let barrier = barrier.clone();
        handles.push(thread::spawn(move || {
            barrier.wait();
            let mut last_seq = 0u64;
            for _ in 0..100 {
                let snap = db.snapshot();
                assert!(snap.seq() >= last_seq, "snapshot sequence went backwards");
                last_seq = snap.seq();
                // Internal consistency: every document listed is readable
                // from the same snapshot, bit-for-bit.
                for doc in snap.documents() {
                    let again = snap.open_arc(doc.id).unwrap();
                    assert_eq!(*doc, *again, "snapshot tore mid-read");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    // Convergence: the final snapshot equals the engine's current state.
    let snap = db.snapshot();
    assert_eq!(snap.seq(), db.change_seq());
    let mut total = 0.0;
    for doc in snap.documents() {
        let live = db.open_note(doc.id).unwrap();
        assert_eq!(*doc, live, "snapshot diverged from engine state");
        total += doc.get("Counter").unwrap().as_number().unwrap();
    }
    assert_eq!(total as usize, WRITERS * ROUNDS, "a write was lost");
    // Disjoint writers on a per-note lock table never time out.
    assert_eq!(db.lock_stats().timeouts, 0);
}
