//! Crash-point tests: kill the I/O stack after a budgeted number of
//! operations (via `FaultLogStore` / `FaultDisk`) and verify restart
//! recovery restores a *prefix-consistent* store — no torn commits, pages
//! matching their page LSNs, a counter that agrees exactly with the set of
//! transactions whose commit records became durable.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use domino::storage::{CommitMode, Engine, EngineConfig, FaultDisk, MemDisk, PageType};
use domino::wal::{FaultLogStore, FaultPlan, LogManager, LogRecord, Lsn, MemLogStore, TxId};

const COUNTER_OFF: u16 = 200;
const PATTERN_OFF: u16 = 256;
const PATTERN_LEN: usize = 32;

fn engine_over(
    disk: Box<dyn domino::storage::Disk>,
    log: Box<dyn domino::wal::LogStore>,
    mode: CommitMode,
) -> Engine {
    Engine::open(
        disk,
        Some(log),
        EngineConfig {
            buffer_capacity: 16,
            commit_mode: mode,
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

/// Transaction `i` (1-based) allocates one page, stamps it with `[i; 32]`,
/// and bumps a counter cell on the first allocated page — so the counter
/// read after recovery names exactly the committed prefix. Page ids are
/// deterministic: counter = 1, tx `i`'s page = 1 + i.
fn run_workload(e: &mut Engine, txs: u32, counter_page: u32) -> u32 {
    let mut committed = 0;
    for i in 1..=txs {
        let result: domino::types::Result<()> = (|| {
            let mut tx = e.begin()?;
            let p = e.alloc_page(&mut tx, PageType::Heap)?;
            assert_eq!(p, counter_page + i, "deterministic page allocation");
            e.write(&mut tx, p, PATTERN_OFF, &[i as u8; PATTERN_LEN])?;
            e.write(&mut tx, counter_page, COUNTER_OFF, &i.to_le_bytes())?;
            e.commit(tx)?;
            Ok(())
        })();
        match result {
            Ok(()) => committed = i,
            Err(_) => break, // injected fault: the "machine" dies here
        }
    }
    committed
}

/// Reopen after the crash and check prefix consistency.
fn assert_prefix_consistent(disk: MemDisk, log: MemLogStore, committed: u32, attempted: u32) {
    let mut e = engine_over(Box::new(disk), Box::new(log), CommitMode::Force);
    let counter_page = 1u32;
    let c = e.fetch(counter_page).unwrap().get_u32(COUNTER_OFF as usize);
    // Every transaction that returned from commit() is durable; every one
    // that died mid-flight was rolled back. The counter is the proof.
    assert_eq!(
        c, committed,
        "recovered counter must equal the committed prefix"
    );
    for i in 1..=attempted {
        let page = counter_page + i;
        let buf = e.fetch(page).unwrap();
        let got = buf.bytes(PATTERN_OFF as usize, PATTERN_LEN);
        if i <= c {
            assert_eq!(got, &[i as u8; PATTERN_LEN][..], "committed tx {i} lost");
        } else {
            assert_eq!(got, &[0u8; PATTERN_LEN][..], "torn tx {i} leaked");
        }
    }
}

fn crash_at_log_op(budget: u64, txs: u32, mode: CommitMode) {
    let disk = MemDisk::new();
    let log = MemLogStore::new();
    let plan = FaultPlan::new();
    let mut e = engine_over(
        Box::new(disk.clone()),
        Box::new(FaultLogStore::new(log.clone(), plan.clone())),
        mode,
    );
    // Baseline: counter page committed before faults arm.
    let mut tx = e.begin().unwrap();
    let counter_page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
    assert_eq!(counter_page, 1);
    e.write(&mut tx, counter_page, COUNTER_OFF, &0u32.to_le_bytes())
        .unwrap();
    e.commit(tx).unwrap();

    plan.arm(budget);
    let committed = run_workload(&mut e, txs, counter_page);
    // Power cut: frames and the unsynced log tail vanish.
    e.crash();
    log.crash();
    plan.disarm();
    assert_prefix_consistent(disk, log, committed, txs);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, .. ProptestConfig::default() })]

    /// Force-at-commit: crash after any number of log-store operations.
    #[test]
    fn recovery_is_prefix_consistent_force(budget in 0u64..40, txs in 1u32..12) {
        crash_at_log_op(budget, txs, CommitMode::Force);
    }

    /// Group commit: the leader's append+sync is the crash site; a fault
    /// mid-group-commit must not tear the group.
    #[test]
    fn recovery_is_prefix_consistent_group_commit(budget in 0u64..40, txs in 1u32..12) {
        crash_at_log_op(
            budget,
            txs,
            CommitMode::GroupCommit { max_wait: Duration::ZERO, max_batch: 8 },
        );
    }

    /// Crash in the *disk* (page writeback) mid-checkpoint: committed data
    /// must still recover from the log, since the checkpoint only
    /// truncates after its record is durable.
    #[test]
    fn checkpoint_writeback_crash_loses_nothing(budget in 0u64..12, txs in 1u32..10) {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let plan = FaultPlan::new();
        let mut e = engine_over(
            Box::new(FaultDisk::new(disk.clone(), plan.clone())),
            Box::new(log.clone()),
            CommitMode::Force,
        );
        let mut tx = e.begin().unwrap();
        let counter_page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, counter_page, COUNTER_OFF, &0u32.to_le_bytes()).unwrap();
        e.commit(tx).unwrap();
        let committed = run_workload(&mut e, txs, counter_page);
        prop_assert_eq!(committed, txs, "no faults armed during the workload");

        // Arm the disk fault, then checkpoint incrementally; writeback dies
        // somewhere in the middle (or survives, if the budget allows).
        plan.arm(budget);
        let _ = e.begin_checkpoint().and_then(|_| {
            while e.checkpoint_step(1)? {}
            e.complete_checkpoint()
        });
        e.crash();
        log.crash();
        plan.disarm();
        assert_prefix_consistent(disk, log, committed, txs);
    }
}

/// Eight concurrent group committers racing a log-store fault: every
/// commit_group() that returned Ok must be durable across the crash.
#[test]
fn concurrent_group_commit_crash_durability() {
    for budget in [1u64, 3, 7, 15, 40] {
        let store = MemLogStore::new();
        let plan = FaultPlan::new();
        let mgr =
            Arc::new(LogManager::open(FaultLogStore::new(store.clone(), plan.clone())).unwrap());
        plan.arm(budget);
        let threads = 8;
        let per_thread = 20;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mgr = Arc::clone(&mgr);
                std::thread::spawn(move || {
                    let mut ok = 0u64;
                    for i in 0..per_thread {
                        let tx = TxId((t * 1000 + i) as u64);
                        let Ok(lsn) = mgr.append(&LogRecord::Commit { tx }) else {
                            break;
                        };
                        match mgr.commit_group(lsn, Duration::from_micros(100), 8) {
                            Ok(()) => ok += 1,
                            Err(_) => break,
                        }
                    }
                    ok
                })
            })
            .collect();
        let acked: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        store.crash();
        plan.disarm();
        let mgr2 = LogManager::open(store).unwrap();
        let durable = mgr2.scan(Lsn::NIL).unwrap().len() as u64;
        assert!(
            durable >= acked,
            "crash lost acknowledged group commits: {acked} acked, {durable} durable (budget {budget})"
        );
    }
}
