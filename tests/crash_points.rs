//! Crash-point tests: kill the I/O stack after a budgeted number of
//! operations (via `FaultLogStore` / `FaultDisk`) and verify restart
//! recovery restores a *prefix-consistent* store — no torn commits, pages
//! matching their page LSNs, a counter that agrees exactly with the set of
//! transactions whose commit records became durable.
//!
//! The second half runs the same workload against *actual files* —
//! `NsfFile` under a `CrashDisk` OS-cache model plus a `FileLogStore` —
//! and crashes with dropped, reordered, or torn unsynced page writes.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use domino::storage::{
    CommitMode, CrashDisk, CrashMode, Engine, EngineConfig, FaultDisk, MemDisk, NsfFile, PageType,
};
use domino::types::DominoError;
use domino::wal::{
    FaultLogStore, FaultPlan, FileLogStore, LogManager, LogRecord, Lsn, MemLogStore, TxId,
};

const COUNTER_OFF: u16 = 200;
const PATTERN_OFF: u16 = 256;
const PATTERN_LEN: usize = 32;

fn engine_over(
    disk: Box<dyn domino::storage::Disk>,
    log: Box<dyn domino::wal::LogStore>,
    mode: CommitMode,
) -> Engine {
    Engine::open(
        disk,
        Some(log),
        EngineConfig {
            buffer_capacity: 16,
            commit_mode: mode,
            ..EngineConfig::default()
        },
    )
    .unwrap()
}

/// First page a workload transaction can allocate: page 0 is the engine
/// catalog, page 1 the free-map root.
const COUNTER_PAGE: u32 = 2;

/// Transaction `i` (1-based) allocates one page, stamps it with `[i; 32]`,
/// and bumps a counter cell on the first allocated page — so the counter
/// read after recovery names exactly the committed prefix. Page ids are
/// deterministic: counter = 2, tx `i`'s page = 2 + i. With `ckpt_every`
/// nonzero, every `ckpt_every`-th transaction is followed by a full
/// checkpoint (writeback + log truncation) — the crash then lands with a
/// truncated log, exercising the sync-before-truncate discipline.
fn run_workload(e: &mut Engine, txs: u32, counter_page: u32, ckpt_every: u32) -> u32 {
    let mut committed = 0;
    for i in 1..=txs {
        let result: domino::types::Result<()> = (|| {
            let mut tx = e.begin()?;
            let p = e.alloc_page(&mut tx, PageType::Heap)?;
            assert_eq!(p, counter_page + i, "deterministic page allocation");
            e.write(&mut tx, p, PATTERN_OFF, &[i as u8; PATTERN_LEN])?;
            e.write(&mut tx, counter_page, COUNTER_OFF, &i.to_le_bytes())?;
            e.commit(tx)?;
            Ok(())
        })();
        match result {
            Ok(()) => committed = i,
            Err(_) => break, // injected fault: the "machine" dies here
        }
        if ckpt_every != 0 && i % ckpt_every == 0 && e.checkpoint().is_err() {
            break; // fault mid-checkpoint: the "machine" dies here
        }
    }
    committed
}

/// Reopen after the crash and check prefix consistency; errors (a detected
/// torn page) propagate to the caller to judge.
fn check_prefix_consistent(
    disk: Box<dyn domino::storage::Disk>,
    log: Box<dyn domino::wal::LogStore>,
    committed: u32,
    attempted: u32,
) -> domino::types::Result<()> {
    let mut e = Engine::open(
        disk,
        Some(log),
        EngineConfig {
            buffer_capacity: 16,
            ..EngineConfig::default()
        },
    )?;
    let c = e.fetch(COUNTER_PAGE)?.get_u32(COUNTER_OFF as usize);
    // Every transaction that returned from commit() is durable; every one
    // that died mid-flight was rolled back. The counter is the proof.
    assert_eq!(
        c, committed,
        "recovered counter must equal the committed prefix"
    );
    for i in 1..=attempted {
        let page = COUNTER_PAGE + i;
        let buf = e.fetch(page)?;
        let got = buf.bytes(PATTERN_OFF as usize, PATTERN_LEN);
        if i <= c {
            assert_eq!(got, &[i as u8; PATTERN_LEN][..], "committed tx {i} lost");
        } else {
            assert_eq!(got, &[0u8; PATTERN_LEN][..], "torn tx {i} leaked");
        }
    }
    Ok(())
}

fn assert_prefix_consistent(disk: MemDisk, log: MemLogStore, committed: u32, attempted: u32) {
    check_prefix_consistent(Box::new(disk), Box::new(log), committed, attempted).unwrap();
}

fn crash_at_log_op(budget: u64, txs: u32, mode: CommitMode) {
    let disk = MemDisk::new();
    let log = MemLogStore::new();
    let plan = FaultPlan::new();
    let mut e = engine_over(
        Box::new(disk.clone()),
        Box::new(FaultLogStore::new(log.clone(), plan.clone())),
        mode,
    );
    // Baseline: counter page committed before faults arm.
    let mut tx = e.begin().unwrap();
    let counter_page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
    assert_eq!(counter_page, COUNTER_PAGE);
    e.write(&mut tx, counter_page, COUNTER_OFF, &0u32.to_le_bytes())
        .unwrap();
    e.commit(tx).unwrap();

    plan.arm(budget);
    let committed = run_workload(&mut e, txs, counter_page, 0);
    // Power cut: frames and the unsynced log tail vanish.
    e.crash();
    log.crash();
    plan.disarm();
    assert_prefix_consistent(disk, log, committed, txs);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, .. ProptestConfig::default() })]

    /// Force-at-commit: crash after any number of log-store operations.
    #[test]
    fn recovery_is_prefix_consistent_force(budget in 0u64..40, txs in 1u32..12) {
        crash_at_log_op(budget, txs, CommitMode::Force);
    }

    /// Group commit: the leader's append+sync is the crash site; a fault
    /// mid-group-commit must not tear the group.
    #[test]
    fn recovery_is_prefix_consistent_group_commit(budget in 0u64..40, txs in 1u32..12) {
        crash_at_log_op(
            budget,
            txs,
            CommitMode::GroupCommit { max_wait: Duration::ZERO, max_batch: 8 },
        );
    }

    /// Crash in the *disk* (page writeback) mid-checkpoint: committed data
    /// must still recover from the log, since the checkpoint only
    /// truncates after its record is durable.
    #[test]
    fn checkpoint_writeback_crash_loses_nothing(budget in 0u64..12, txs in 1u32..10) {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let plan = FaultPlan::new();
        let mut e = engine_over(
            Box::new(FaultDisk::new(disk.clone(), plan.clone())),
            Box::new(log.clone()),
            CommitMode::Force,
        );
        let mut tx = e.begin().unwrap();
        let counter_page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
        e.write(&mut tx, counter_page, COUNTER_OFF, &0u32.to_le_bytes()).unwrap();
        e.commit(tx).unwrap();
        let committed = run_workload(&mut e, txs, counter_page, 0);
        prop_assert_eq!(committed, txs, "no faults armed during the workload");

        // Arm the disk fault, then checkpoint incrementally; writeback dies
        // somewhere in the middle (or survives, if the budget allows).
        plan.arm(budget);
        let _ = e.begin_checkpoint().and_then(|_| {
            while e.checkpoint_step(1)? {}
            e.complete_checkpoint()
        });
        e.crash();
        log.crash();
        plan.disarm();
        assert_prefix_consistent(disk, log, committed, txs);
    }
}

// ---------------------------------------------------------------------------
// File-backed crash points: the engine over an `NsfFile` behind a
// `CrashDisk` OS-cache model plus a real `FileLogStore`. The crash drops,
// reorders, or tears the unsynced data-page writes; recovery then runs
// against the actual post-crash file bytes.
// ---------------------------------------------------------------------------

static NEXT_CRASH_DIR: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

fn crash_dir() -> std::path::PathBuf {
    let n = NEXT_CRASH_DIR.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("domino-crash-points-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Prefix consistency over real files. The file log persists appended
/// records even when the *ack* was lost to the injected fault, so recovery
/// may legitimately include a few durable-but-unacked transactions past the
/// acked prefix: `committed <= c <= attempted`.
fn check_file_prefix_consistent(
    data: &std::path::Path,
    txn: &std::path::Path,
    committed: u32,
    attempted: u32,
) -> domino::types::Result<()> {
    let mut e = Engine::open(
        Box::new(NsfFile::open(data)?),
        Some(Box::new(FileLogStore::open(txn)?)),
        EngineConfig {
            buffer_capacity: 16,
            ..EngineConfig::default()
        },
    )?;
    let c = e.fetch(COUNTER_PAGE)?.get_u32(COUNTER_OFF as usize);
    assert!(
        (committed..=attempted).contains(&c),
        "recovered counter {c} outside [{committed}, {attempted}]"
    );
    for i in 1..=attempted {
        let buf = e.fetch(COUNTER_PAGE + i)?;
        let got = buf.bytes(PATTERN_OFF as usize, PATTERN_LEN);
        if i <= c {
            assert_eq!(got, &[i as u8; PATTERN_LEN][..], "committed tx {i} lost");
        } else {
            assert_eq!(got, &[0u8; PATTERN_LEN][..], "torn tx {i} leaked");
        }
    }
    Ok(())
}

/// One full round: format the file, run a faulted workload with interleaved
/// checkpoints, crash the OS cache in `mode`, reopen from the raw files and
/// return the consistency verdict.
fn file_crash_round(
    budget: u64,
    txs: u32,
    ckpt_every: u32,
    mode: CrashMode,
) -> domino::types::Result<()> {
    let dir = crash_dir();
    let data = dir.join("data.nsf");
    let txn = dir.join("data.txn");
    let cache = Arc::new(CrashDisk::new(NsfFile::open(&data).unwrap()));
    let plan = FaultPlan::new();
    let mut e = engine_over(
        Box::new(Arc::clone(&cache)),
        Box::new(FaultLogStore::new(
            FileLogStore::open(&txn).unwrap(),
            plan.clone(),
        )),
        CommitMode::Force,
    );
    // Baseline: counter page committed before faults arm.
    let mut tx = e.begin().unwrap();
    let counter_page = e.alloc_page(&mut tx, PageType::Heap).unwrap();
    assert_eq!(counter_page, COUNTER_PAGE);
    e.write(&mut tx, counter_page, COUNTER_OFF, &0u32.to_le_bytes())
        .unwrap();
    e.commit(tx).unwrap();

    plan.arm(budget);
    let committed = run_workload(&mut e, txs, counter_page, ckpt_every);
    // Power cut: frames vanish, then the OS cache loses/reorders/tears
    // whatever was never fsynced.
    e.crash();
    plan.disarm();
    cache.crash(mode).unwrap();
    drop(cache);

    let verdict = check_file_prefix_consistent(&data, &txn, committed, txs);
    let _ = std::fs::remove_dir_all(&dir);
    verdict
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Dropping every unsynced data-page write must always recover: the
    /// log retains everything past the last sync barrier.
    #[test]
    fn file_crash_drop_unsynced_recovers(budget in 0u64..60, txs in 1u32..10, ckpt in 0u32..4) {
        file_crash_round(budget, txs, ckpt, CrashMode::DropUnsynced)
            .expect("drop-unsynced crash must recover cleanly");
    }

    /// fsync reorder — an arbitrary subset of unsynced page writes lands,
    /// the rest vanish. Must always recover: log truncation only ever
    /// follows a data-file sync barrier.
    #[test]
    fn file_crash_reorder_recovers(
        budget in 0u64..60, txs in 1u32..10, ckpt in 0u32..4, seed in any::<u64>()
    ) {
        file_crash_round(budget, txs, ckpt, CrashMode::Reorder { seed })
            .expect("reordered-sync crash must recover cleanly");
    }

    /// A torn page (partial sector write) is allowed to fail recovery —
    /// but only with a *detected* corruption error ("restore from a
    /// replica"), never a silently wrong image.
    #[test]
    fn file_crash_torn_recovers_or_detects(
        budget in 0u64..60, txs in 1u32..10, ckpt in 0u32..4, seed in any::<u64>()
    ) {
        match file_crash_round(budget, txs, ckpt, CrashMode::Torn { seed }) {
            Ok(()) | Err(DominoError::Corrupt(_)) => {}
            Err(e) => panic!("torn crash surfaced a non-corruption error: {e}"),
        }
    }
}

/// Eight concurrent group committers racing a log-store fault: every
/// commit_group() that returned Ok must be durable across the crash.
#[test]
fn concurrent_group_commit_crash_durability() {
    for budget in [1u64, 3, 7, 15, 40] {
        let store = MemLogStore::new();
        let plan = FaultPlan::new();
        let mgr =
            Arc::new(LogManager::open(FaultLogStore::new(store.clone(), plan.clone())).unwrap());
        plan.arm(budget);
        let threads = 8;
        let per_thread = 20;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let mgr = Arc::clone(&mgr);
                std::thread::spawn(move || {
                    let mut ok = 0u64;
                    for i in 0..per_thread {
                        let tx = TxId((t * 1000 + i) as u64);
                        let Ok(lsn) = mgr.append(&LogRecord::Commit { tx }) else {
                            break;
                        };
                        match mgr.commit_group(lsn, Duration::from_micros(100), 8) {
                            Ok(()) => ok += 1,
                            Err(_) => break,
                        }
                    }
                    ok
                })
            })
            .collect();
        let acked: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        store.crash();
        plan.disarm();
        let mgr2 = LogManager::open(store).unwrap();
        let durable = mgr2.scan(Lsn::NIL).unwrap().len() as u64;
        assert!(
            durable >= acked,
            "crash lost acknowledged group commits: {acked} acked, {durable} durable (budget {budget})"
        );
    }
}
