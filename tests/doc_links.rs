//! Documentation link checker: every relative markdown link in the
//! repo's `*.md` files must point at a file that exists. Dead links fail
//! here (and in CI) instead of rotting silently.

use std::path::{Path, PathBuf};

/// Collect every `.md` file under `root`, skipping build output and VCS
/// internals.
fn markdown_files(root: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(root).unwrap() {
        let entry = entry.unwrap();
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type().unwrap().is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            markdown_files(&path, out);
        } else if name.ends_with(".md") {
            // SNIPPETS.md / PAPERS.md quote external material verbatim;
            // links inside those quotes aren't ours to keep alive.
            if name == "SNIPPETS.md" || name == "PAPERS.md" {
                continue;
            }
            out.push(path);
        }
    }
}

/// Extract `](target)` link targets from markdown text, with enough
/// context to report line numbers.
fn links(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let mut rest = line;
        let mut consumed = 0;
        while let Some(i) = rest.find("](") {
            let after = &rest[i + 2..];
            let Some(end) = after.find(')') else { break };
            out.push((lineno + 1, after[..end].to_string()));
            consumed += i + 2 + end + 1;
            rest = &line[consumed..];
        }
    }
    out
}

#[test]
fn no_dead_relative_links_in_markdown() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files = Vec::new();
    markdown_files(root, &mut files);
    assert!(
        files.iter().any(|f| f.ends_with("FORMAT.md")),
        "expected to find FORMAT.md among {} markdown files",
        files.len()
    );

    let mut dead = Vec::new();
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap();
        for (line, target) in links(&text) {
            // External schemes and in-page anchors are out of scope.
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            let path_part = target.split('#').next().unwrap();
            let resolved = file.parent().unwrap().join(path_part);
            if !resolved.exists() {
                dead.push(format!(
                    "{}:{line}: dead link `{target}`",
                    file.strip_prefix(root).unwrap().display()
                ));
            }
        }
    }
    assert!(
        dead.is_empty(),
        "dead relative links:\n  {}",
        dead.join("\n  ")
    );
}
