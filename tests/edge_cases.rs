//! Edge-case integration tests: behaviours at the seams between crates.

use std::sync::Arc;

use domino::core::{Database, DbConfig, Note, Session};
use domino::formula::Formula;
use domino::replica::{ReplicationOptions, Replicator};
use domino::security::{AccessLevel, Acl, AclEntry, Directory};
use domino::types::{LogicalClock, NoteClass, ReplicaId, Timestamp, Value};

fn new_db(lineage: u64, instance: u64) -> Arc<Database> {
    Arc::new(
        Database::open_in_memory(
            DbConfig::new("edge", ReplicaId(lineage), ReplicaId(instance)),
            LogicalClock::starting_at(Timestamp(instance * 100)),
        )
        .unwrap(),
    )
}

/// Deletions replicate even when the document would have been excluded by
/// a selective-replication formula (Domino ships deletions regardless —
/// the filter applies to content, not to tombstones).
#[test]
fn selective_filter_does_not_block_deletions() {
    let a = new_db(1, 1);
    let b = new_db(1, 2);
    // First, replicate the doc over WITHOUT a filter.
    let mut full = Replicator::new(ReplicationOptions::default());
    let mut n = Note::document("Task");
    n.set("Region", Value::text("east"));
    a.save(&mut n).unwrap();
    full.sync(&a, &b).unwrap();
    assert_eq!(b.document_count().unwrap(), 1);

    // Now delete on a; replicate with a filter that matches nothing.
    a.delete(a.id_of_unid(n.unid()).unwrap().unwrap()).unwrap();
    let mut filtered = Replicator::new(ReplicationOptions {
        selective: Some(Formula::compile(r#"SELECT Region = "west""#).unwrap()),
        ..ReplicationOptions::default()
    });
    filtered.sync(&a, &b).unwrap();
    assert_eq!(
        b.document_count().unwrap(),
        0,
        "deletion crossed the filter"
    );
}

/// Purged stubs disappear from changed_since, so they stop being
/// replication candidates entirely.
#[test]
fn purge_removes_stubs_from_change_feed() {
    let clock = LogicalClock::new();
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("p", ReplicaId(1), ReplicaId(1)).with_purge_interval(100),
            clock.clone(),
        )
        .unwrap(),
    );
    let mut n = Note::document("M");
    db.save(&mut n).unwrap();
    db.delete(n.id).unwrap();
    assert_eq!(db.changed_since(Timestamp::ZERO).unwrap().len(), 1);
    clock.advance(10_000);
    assert_eq!(db.purge_stubs().unwrap(), 1);
    assert_eq!(db.changed_since(Timestamp::ZERO).unwrap().len(), 0);
    assert!(db.stubs().unwrap().is_empty());
    // The UNID is fully forgotten: re-creating is a fresh document.
    assert_eq!(db.id_of_unid(n.unid()).unwrap(), None);
}

/// A Depositor can put documents in but read nothing back — the drop-box
/// pattern.
#[test]
fn depositor_drop_box() {
    let db = new_db(2, 1);
    let mut acl = Acl::new(AccessLevel::NoAccess);
    acl.set("dropper", AclEntry::new(AccessLevel::Depositor));
    acl.set("owner", AclEntry::new(AccessLevel::Manager));
    db.set_acl(&acl).unwrap();
    let dropper = Session::new(db.clone(), "dropper", Directory::new());
    let owner = Session::new(db.clone(), "owner", Directory::new());

    let mut ballot = Note::document("Ballot");
    ballot.set("Vote", Value::text("yes"));
    dropper.save(&mut ballot).unwrap();
    // The depositor cannot read anything back — not even their own note.
    assert_eq!(
        dropper.open_note(ballot.id).unwrap_err().kind(),
        "access_denied"
    );
    let f = Formula::compile("SELECT @All").unwrap();
    assert_eq!(dropper.search(&f).unwrap_err().kind(), "access_denied");
    // The owner sees it.
    assert_eq!(owner.search(&f).unwrap().len(), 1);
}

/// Unread marks: deleting a document removes it from everyone's unread
/// sets implicitly (it no longer exists).
#[test]
fn unread_marks_follow_deletions() {
    let db = new_db(3, 1);
    let mut a = Note::document("M");
    db.save(&mut a).unwrap();
    let mut b = Note::document("M");
    db.save(&mut b).unwrap();
    assert_eq!(db.unread_unids("u").unwrap().len(), 2);
    db.mark_read("u", a.unid());
    db.delete(b.id).unwrap();
    assert!(db.unread_unids("u").unwrap().is_empty());
}

/// Formula corner cases crossing several features at once.
#[test]
fn formula_cross_feature_corners() {
    let db = new_db(4, 1);
    let mut n = Note::document("Doc");
    n.set("Tags", Value::text_list(["alpha", "beta"]));
    n.set("Scores", Value::NumberList(vec![1.0, 2.0, 3.0]));
    db.save(&mut n).unwrap();

    let env = Default::default();
    let cases: Vec<(&str, Value)> = vec![
        // list comparisons against computed lists
        (r#"Tags = @Subset(Tags; 1)"#, Value::from(true)),
        // arithmetic over list items inside @If
        (r#"@If(@Sum(Scores) = 6; "six"; "no")"#, Value::text("six")),
        // nested @functions with field refs
        (
            r#"@Implode(@Sort(Tags; "descending"); "+")"#,
            Value::text("beta+alpha"),
        ),
        // permuted comparison between two fields
        (r#"Tags *= "BETA""#, Value::from(true)),
        // @Elements of a missing field ("") is 1 (a scalar empty text)
        (r#"@Elements(Missing)"#, Value::Number(1.0)),
    ];
    let doc = db.open_by_unid(n.unid()).unwrap();
    for (src, want) in cases {
        let f = Formula::compile(src).unwrap();
        assert_eq!(f.eval(&doc, &env).unwrap(), want, "formula: {src}");
    }
}

/// Replicating design notes (views, forms, agents, folders) carries the
/// application with the data — "the database is the application".
#[test]
fn whole_application_replicates() {
    use domino::core::{save_agent, save_form, AgentDesign, FieldSpec, FormDesign};
    use domino::views::{ColumnSpec, Folder, SortDir, View, ViewDesign};

    let a = new_db(5, 1);
    let b = new_db(5, 2);

    // Build an "application" on replica a.
    save_form(
        &a,
        &FormDesign::new("Task").field(
            FieldSpec::editable("Status")
                .with_default(r#""new""#)
                .unwrap(),
        ),
    )
    .unwrap();
    save_agent(
        &a,
        &AgentDesign::new(
            "close",
            r#"SELECT Status = "done"; FIELD Archived := "yes""#,
        )
        .unwrap(),
    )
    .unwrap();
    let view = View::attach(
        &a,
        ViewDesign::new("All", r#"SELECT Form = "Task""#)
            .unwrap()
            .column(
                ColumnSpec::new("Status", "Status")
                    .unwrap()
                    .sorted(SortDir::Ascending),
            ),
    )
    .unwrap();
    view.save_design().unwrap();
    let folder = Folder::create(&a, "Hot").unwrap();
    let mut t = Note::document("Task");
    t.set("Status", Value::text("done"));
    a.save(&mut t).unwrap();
    folder.add(t.unid()).unwrap();

    // Replicate everything.
    let mut r = Replicator::new(ReplicationOptions::default());
    r.sync(&a, &b).unwrap();

    // The whole application arrived: form, agent, view design, folder.
    assert_eq!(domino::core::stored_forms(&b).unwrap().len(), 1);
    let agents = domino::core::stored_agents(&b).unwrap();
    assert_eq!(agents.len(), 1);
    assert_eq!(domino::views::stored_designs(&b).unwrap().len(), 1);
    assert_eq!(
        Folder::open(&b, "Hot").unwrap().members().unwrap(),
        vec![t.unid()]
    );
    // And it runs: the agent archives the done task on replica b.
    agents[0].run(&b, "server-b").unwrap();
    assert_eq!(
        b.open_by_unid(t.unid())
            .unwrap()
            .get_text("Archived")
            .unwrap(),
        "yes"
    );
    // note_ids by class sees all four design notes on b.
    assert_eq!(b.note_ids(Some(NoteClass::Form)).unwrap().len(), 1);
    assert_eq!(b.note_ids(Some(NoteClass::Agent)).unwrap().len(), 1);
    assert_eq!(b.note_ids(Some(NoteClass::View)).unwrap().len(), 2); // view + folder
}
