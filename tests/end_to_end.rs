//! Full-stack integration: storage + WAL + core + views + full-text +
//! security + replication + simulator working together.

use std::sync::Arc;

use domino::core::{Database, DbConfig, Note, Session};
use domino::formula::Formula;
use domino::ftindex::FtIndex;
use domino::net::{LinkSpec, Network, Topology};
use domino::replica::{Cluster, ReplicationOptions, Replicator};
use domino::security::{AccessLevel, Acl, AclEntry, Directory};
use domino::storage::MemDisk;
use domino::types::{ItemFlags, LogicalClock, NoteClass, ReplicaId, Value};
use domino::wal::MemLogStore;

fn new_db(title: &str, lineage: u64, instance: u64) -> Arc<Database> {
    Arc::new(
        Database::open_in_memory(
            DbConfig::new(title, ReplicaId(lineage), ReplicaId(instance)),
            LogicalClock::new(),
        )
        .unwrap(),
    )
}

/// A view and a full-text index both stay current through replication:
/// documents arriving from another replica update them via change events.
#[test]
fn views_and_ftindex_update_through_replication() {
    let a = new_db("disc", 1, 10);
    let b = new_db("disc", 1, 20);
    let view = domino::views::View::attach(
        &b,
        domino::views::ViewDesign::new("all", r#"SELECT Form = "Memo""#)
            .unwrap()
            .column(
                domino::views::ColumnSpec::new("Subject", "Subject")
                    .unwrap()
                    .sorted(domino::views::SortDir::Ascending),
            ),
    )
    .unwrap();
    let ft = FtIndex::attach(&b).unwrap();

    for i in 0..5 {
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text(format!("memo number {i}")));
        a.save(&mut n).unwrap();
    }
    let mut r = Replicator::new(ReplicationOptions::default());
    r.sync(&a, &b).unwrap();

    assert_eq!(view.len(), 5, "view picked up replicated documents");
    assert_eq!(ft.search("memo").unwrap().len(), 5);

    // A deletion replicates and disappears from both.
    let id = a.note_ids(Some(NoteClass::Document)).unwrap()[0];
    a.delete(id).unwrap();
    r.sync(&a, &b).unwrap();
    assert_eq!(view.len(), 4);
    assert_eq!(ft.search("memo").unwrap().len(), 4);
}

/// Reader fields written on one replica are enforced on another after
/// replication (security travels with the documents and the ACL note).
#[test]
fn security_replicates_with_documents() {
    let a = new_db("vault", 7, 1);
    let b = new_db("vault", 7, 2);

    let mut acl = Acl::new(AccessLevel::NoAccess);
    acl.set("spy", AclEntry::new(AccessLevel::Reader));
    acl.set(
        "chief",
        AclEntry::new(AccessLevel::Manager).with_role("Clearance"),
    );
    a.set_acl(&acl).unwrap();

    let mut secret = Note::document("Dossier");
    secret.set("Subject", Value::text("classified"));
    secret.set_with_flags(
        "$Readers",
        Value::text_list(["[Clearance]"]),
        ItemFlags::SUMMARY | ItemFlags::READERS,
    );
    a.save(&mut secret).unwrap();

    let mut r = Replicator::new(ReplicationOptions::default());
    r.sync(&a, &b).unwrap();

    // The ACL note replicated; enforcement works on replica b. Note: b has
    // its own stored ACL pointer, so load it from the replicated note set.
    let dir = Directory::new();
    let spy = Session::new(b.clone(), "spy", dir.clone());
    let chief = Session::new(b.clone(), "chief", dir);
    // b's ACL slot isn't set (slot state is local); set it from replica a's.
    b.set_acl(&a.acl().unwrap()).unwrap();
    let doc_id = b.id_of_unid(secret.unid()).unwrap().unwrap();
    assert_eq!(spy.open_note(doc_id).unwrap_err().kind(), "access_denied");
    assert!(chief.open_note(doc_id).is_ok());
}

/// A clustered pair plus a WAL crash on one member: the survivor carries
/// reads; the crashed member recovers and catches up by replication.
#[test]
fn cluster_failover_with_crash_recovery() {
    let clock = LogicalClock::new();
    let disk = MemDisk::new();
    let log = MemLogStore::new();
    let primary = Arc::new(
        Database::open(
            Box::new(disk.clone()),
            Some(Box::new(log.clone())),
            DbConfig::new("app", ReplicaId(3), ReplicaId(100)),
            clock.clone(),
        )
        .unwrap(),
    );
    let mate = new_db("app", 3, 200);
    let _cluster = Cluster::join(&[primary.clone(), mate.clone()]).unwrap();

    let mut order = Note::document("Order");
    order.set("Total", Value::Number(99.0));
    primary.save(&mut order).unwrap();

    // Failover: the mate already has the order (event-driven push).
    let on_mate = mate.open_by_unid(order.unid()).unwrap();
    assert_eq!(on_mate.get("Total"), Some(&Value::Number(99.0)));

    // Primary crashes; clients keep working against the mate.
    log.crash();
    drop(primary);
    let mut update = mate.open_by_unid(order.unid()).unwrap();
    update.set("Total", Value::Number(120.0));
    mate.save(&mut update).unwrap();

    // Primary restarts (recovery) and catches up via replication.
    let revived = Arc::new(
        Database::open(
            Box::new(disk),
            Some(Box::new(log)),
            DbConfig::new("app", ReplicaId(3), ReplicaId(100)),
            clock,
        )
        .unwrap(),
    );
    assert!(
        revived.open_by_unid(order.unid()).is_ok(),
        "recovered its own copy"
    );
    let mut r = Replicator::new(ReplicationOptions::default());
    r.sync(&revived, &mate).unwrap();
    assert_eq!(
        revived.open_by_unid(order.unid()).unwrap().get("Total"),
        Some(&Value::Number(120.0)),
        "caught up with edits made during the outage"
    );
}

/// Formula agents (FIELD writes) drive workflow transitions that then
/// replicate — the Notes "workflow on top of replication" pattern.
#[test]
fn formula_agent_workflow_replicates() {
    let a = new_db("wf", 9, 1);
    let b = new_db("wf", 9, 2);

    let mut req = Note::document("Request");
    req.set("Status", Value::text("submitted"));
    req.set("Amount", Value::Number(800.0));
    a.save(&mut req).unwrap();

    // Approval agent: big requests escalate, small ones auto-approve.
    let agent = Formula::compile(
        r#"SELECT Status = "submitted"; FIELD Status := @If(Amount > 1000; "needs-approval"; "approved")"#,
    )
    .unwrap();
    for id in a.note_ids(Some(NoteClass::Document)).unwrap() {
        let note = a.open_note(id).unwrap();
        let out = agent.eval_full(&note, &Default::default()).unwrap();
        if out.selected {
            let mut doc = note;
            for (field, value) in out.field_writes {
                doc.set(&field, value);
            }
            a.save(&mut doc).unwrap();
        }
    }
    assert_eq!(
        a.open_by_unid(req.unid())
            .unwrap()
            .get_text("Status")
            .unwrap(),
        "approved"
    );
    let mut r = Replicator::new(ReplicationOptions::default());
    r.sync(&a, &b).unwrap();
    assert_eq!(
        b.open_by_unid(req.unid())
            .unwrap()
            .get_text("Status")
            .unwrap(),
        "approved"
    );
}

/// Network-level: documents created on every server of a ring all reach
/// every other server, including through a temporary partition.
#[test]
fn ring_network_with_partition_heals() {
    let mut net = Network::new(4, Topology::Ring, LinkSpec::default(), LogicalClock::new());
    net.create_replica_set("d").unwrap();
    for i in 0..4 {
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text(format!("from {i}")));
        net.db(i, "d").unwrap().save(&mut n).unwrap();
    }
    net.partition(0, 1);
    net.partition(0, 3); // server 0 fully isolated
                         // The rest still converge among themselves.
    for _ in 0..4 {
        net.replicate_all_links("d").unwrap();
    }
    assert_eq!(net.db(1, "d").unwrap().document_count().unwrap(), 3);
    assert_eq!(net.db(0, "d").unwrap().document_count().unwrap(), 1);
    net.heal(0, 1);
    net.heal(0, 3);
    let rounds = net.run_until_converged("d", 10).unwrap();
    assert!(rounds <= 3);
    for i in 0..4 {
        assert_eq!(net.db(i, "d").unwrap().document_count().unwrap(), 4);
    }
}
