//! Durability on real files: a database opened with `Database::open_path`
//! lives in one NSF file (plus a `.txn` log sibling) and survives
//! process-style close/reopen and crash/reopen cycles. Also the file
//! lifecycle: byte-identical reads across reopen, header-corruption
//! rejection, and tempfile cleanup on drop.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use domino::core::{Database, DbConfig, Note};
use domino::storage::{Disk, NsfFile, PageBuf};
use domino::types::{LogicalClock, ReplicaId, Value};
use domino::wal::FileLogStore;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("domino-file-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_file_db(dir: &Path, clock: LogicalClock) -> Arc<Database> {
    Arc::new(
        Database::open_path(
            &dir.join("data.nsf"),
            DbConfig::new("FileDb", ReplicaId(1), ReplicaId(9)),
            clock,
        )
        .unwrap(),
    )
}

#[test]
fn clean_shutdown_and_reopen() {
    let dir = temp_dir("clean");
    let clock = LogicalClock::new();
    let unid = {
        let db = open_file_db(&dir, clock.clone());
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text("on disk"));
        n.set_body("Body", Value::RichText(vec![7u8; 9000]));
        db.save(&mut n).unwrap();
        db.shutdown().unwrap();
        n.unid()
    };
    let db = open_file_db(&dir, clock);
    assert!(db.recovery_stats().is_none(), "clean shutdown: no recovery");
    let n = db.open_by_unid(unid).unwrap();
    assert_eq!(n.get_text("Subject").unwrap(), "on disk");
    assert_eq!(n.get("Body"), Some(&Value::RichText(vec![7u8; 9000])));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dirty_close_recovers_from_file_log() {
    let dir = temp_dir("dirty");
    let clock = LogicalClock::new();
    let unids: Vec<_> = {
        let db = open_file_db(&dir, clock.clone());
        let mut unids = Vec::new();
        for i in 0..50 {
            let mut n = Note::document("Memo");
            n.set("I", Value::Number(i as f64));
            db.save(&mut n).unwrap();
            unids.push(n.unid());
        }
        // NO shutdown: committed work lives only in the durable log (the
        // buffer pool never flushed).
        unids
    };
    let db = open_file_db(&dir, clock);
    let stats = db.recovery_stats().expect("recovery ran from the file log");
    assert!(stats.redone > 0);
    assert_eq!(db.document_count().unwrap(), 50);
    for (i, unid) in unids.iter().enumerate() {
        assert_eq!(
            db.open_by_unid(*unid).unwrap().get("I"),
            Some(&Value::Number(i as f64))
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn file_compact_shrinks_store() {
    let dir = temp_dir("compact");
    let clock = LogicalClock::new();
    let db = open_file_db(&dir, clock.clone());
    for i in 0..80 {
        let mut n = Note::document("Doc");
        n.set_body("Body", Value::RichText(vec![i as u8; 8000]));
        db.save(&mut n).unwrap();
        if i % 4 != 0 {
            db.delete(n.id).unwrap();
        }
    }
    let dir2 = temp_dir("compact-out");
    let disk2 = NsfFile::open(&dir2.join("data.nsf")).unwrap();
    let log2 = FileLogStore::open(&dir2.join("data.txn")).unwrap();
    let (fresh, stats) = db
        .compact_into(Box::new(disk2), Some(Box::new(log2)))
        .unwrap();
    assert_eq!(stats.notes_copied, 20);
    println!(
        "compact: {} -> {} bytes",
        stats.bytes_before, stats.bytes_after
    );
    // Interleaved deletes let the source reuse freed pages, so the win
    // here is moderate; the churn-heavy core test shows the >2x case.
    assert!(
        stats.bytes_after * 4 < stats.bytes_before * 3,
        "{} -> {}",
        stats.bytes_before,
        stats.bytes_after
    );
    assert_eq!(fresh.document_count().unwrap(), 20);
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&dir2);
}

#[test]
fn reopen_round_trip_reads_identical_bytes() {
    // write → close → open → byte-identical reads, at the device level:
    // every page the first handle wrote reads back identically through a
    // second handle (checksums verified on the way).
    let dir = temp_dir("roundtrip");
    let path = dir.join("pages.nsf");
    let mut images = Vec::new();
    {
        let disk = NsfFile::open(&path).unwrap();
        for id in 0..16u32 {
            let mut p = PageBuf::zeroed(id);
            p.put_bytes(0, &(id as u64 + 1).to_le_bytes()); // fake LSN
            p.put_bytes(64, format!("page {id} payload").as_bytes());
            p.put_bytes(2048, &[id as u8; 512]);
            disk.write_page(id, &p).unwrap();
        }
        disk.sync().unwrap();
        for id in 0..16u32 {
            let mut r = PageBuf::zeroed(0);
            disk.read_page(id, &mut r).unwrap();
            images.push(r);
        }
    }
    let disk = NsfFile::open(&path).unwrap();
    for (id, want) in images.iter().enumerate() {
        let mut got = PageBuf::zeroed(0);
        disk.read_page(id as u32, &mut got).unwrap();
        assert_eq!(&got.data[..], &want.data[..], "page {id} byte-identical");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_header_rejected_at_open() {
    let dir = temp_dir("badheader");
    let path = dir.join("data.nsf");
    let clock = LogicalClock::new();
    {
        let db = open_file_db(&dir, clock.clone());
        let mut n = Note::document("Memo");
        db.save(&mut n).unwrap();
        db.shutdown().unwrap();
    }
    // Scribble over the superblock magic.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();
    let err = Database::open_path(
        &path,
        DbConfig::new("FileDb", ReplicaId(1), ReplicaId(9)),
        clock,
    );
    assert!(err.is_err(), "corrupt header must not open");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn temp_store_cleaned_up_on_drop() {
    let dir = temp_dir("cleanup");
    let path = dir.join("scratch.nsf");
    {
        let disk = NsfFile::open(&path).unwrap();
        disk.set_delete_on_drop(true);
        let mut p = PageBuf::zeroed(0);
        p.put_bytes(32, b"scratch");
        disk.write_page(0, &p).unwrap();
        disk.sync().unwrap();
        assert!(path.exists());
    }
    assert!(
        !path.exists(),
        "scratch NSF removed when the handle dropped"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
