//! Lazy snapshot/Merkle seeding: `Database::open` in `SeedMode::Lazy`
//! reads only summary segments — body pages stay untouched until a reader
//! actually needs them — yet every observable surface (Merkle digests,
//! snapshot reads, pinned-snapshot isolation across overwrites) matches
//! the eager-seeded database exactly.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use domino::core::{Database, DbConfig, Note, SeedMode};
use domino::types::{LogicalClock, ReplicaId, Value};

const DOCS: usize = 40;
const BODY_BYTES: usize = 8000;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("domino-lazy-seed-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn config(mode: SeedMode) -> DbConfig {
    DbConfig::new("LazySeed", ReplicaId(1), ReplicaId(9)).with_seed_mode(mode)
}

/// Build a body-heavy database on disk and return the file path plus the
/// saved UNIDs (in save order).
fn build(dir: &Path, clock: &LogicalClock) -> (PathBuf, Vec<domino::types::Unid>) {
    let path = dir.join("data.nsf");
    let db = Database::open_path(&path, config(SeedMode::Eager), clock.clone()).unwrap();
    let mut unids = Vec::new();
    for i in 0..DOCS {
        let mut n = Note::document("Memo");
        n.set("I", Value::Number(i as f64));
        n.set_body("Body", Value::RichText(vec![i as u8; BODY_BYTES]));
        db.save(&mut n).unwrap();
        unids.push(n.unid());
    }
    db.shutdown().unwrap();
    (path, unids)
}

fn reopen(path: &Path, clock: &LogicalClock, mode: SeedMode) -> Arc<Database> {
    Arc::new(Database::open_path(path, config(mode), clock.clone()).unwrap())
}

#[test]
fn lazy_open_reads_fewer_pages_but_matches_eager_merkle() {
    let dir = temp_dir("merkle");
    let clock = LogicalClock::new();
    let (path, _) = build(&dir, &clock);

    let eager = reopen(&path, &clock, SeedMode::Eager);
    let eager_reads = eager.engine_stats().reads;
    let eager_root = eager.merkle_root();
    let eager_len = eager.merkle_len();
    drop(eager);

    let lazy = reopen(&path, &clock, SeedMode::Lazy);
    let lazy_reads = lazy.engine_stats().reads;
    // Identical digests: Merkle heads derive from summary items only.
    assert_eq!(lazy.merkle_root(), eager_root);
    assert_eq!(lazy.merkle_len(), eager_len);
    // And the lazy open never touched the bodies: each note's ~8 KB body
    // spans at least 2 heap pages, all skipped.
    assert!(
        lazy_reads + 2 * DOCS as u64 <= eager_reads,
        "lazy open must skip every body page: lazy {lazy_reads}, eager {eager_reads}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lazy_seeded_snapshot_hydrates_full_bodies_on_read() {
    let dir = temp_dir("hydrate");
    let clock = LogicalClock::new();
    let (path, unids) = build(&dir, &clock);
    let db = reopen(&path, &clock, SeedMode::Lazy);

    // Point read by UNID: the body must hydrate transparently.
    let snap = db.snapshot();
    let n = snap.open_by_unid(unids[3]).unwrap();
    assert_eq!(n.get("Body"), Some(&Value::RichText(vec![3u8; BODY_BYTES])));

    // Full-document scan (the full-text indexer's path): every body
    // present and correct.
    for (i, doc) in snap.documents().iter().enumerate() {
        assert_eq!(
            doc.get("Body"),
            Some(&Value::RichText(vec![i as u8; BODY_BYTES])),
            "document {i} body after hydration"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pinned_snapshot_survives_overwrite_of_elided_note() {
    let dir = temp_dir("backfill");
    let clock = LogicalClock::new();
    let (path, unids) = build(&dir, &clock);
    let db = reopen(&path, &clock, SeedMode::Lazy);

    // Pin BEFORE touching note 7, then overwrite its body. The writer
    // must backfill the elided seed version, so the pinned snapshot
    // still reads the original body afterwards.
    let pinned = db.snapshot();
    let mut n = db.open_by_unid(unids[7]).unwrap();
    n.set_body("Body", Value::RichText(vec![0xEE; 100]));
    db.save(&mut n).unwrap();

    let old = pinned.open_by_unid(unids[7]).unwrap();
    assert_eq!(
        old.get("Body"),
        Some(&Value::RichText(vec![7u8; BODY_BYTES])),
        "pinned snapshot must see the pre-overwrite body"
    );
    let new = db.snapshot().open_by_unid(unids[7]).unwrap();
    assert_eq!(new.get("Body"), Some(&Value::RichText(vec![0xEE; 100])));

    // Deletion of an elided note backfills too.
    let pinned2 = db.snapshot();
    let id = db.id_of_unid(unids[11]).unwrap().unwrap();
    db.delete(id).unwrap();
    let old = pinned2.open_by_unid(unids[11]).unwrap();
    assert_eq!(
        old.get("Body"),
        Some(&Value::RichText(vec![11u8; BODY_BYTES]))
    );
    assert!(db.snapshot().open_by_unid(unids[11]).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
