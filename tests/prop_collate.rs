//! Property: collation-key byte order is exactly `Value::collate` order —
//! the law that makes view indexes correct.

use proptest::prelude::*;

use domino::types::{DateTime, Value};
use domino::views::collate::{encode_field, SortDir};

fn arb_scalar() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i32>().prop_map(|n| Value::Number(n as f64)),
        (-1.0e9f64..1.0e9).prop_map(Value::Number),
        any::<i32>().prop_map(|t| Value::DateTime(DateTime(t as i64))),
        "[ -~]{0,16}".prop_map(Value::Text), // printable ASCII incl. space
    ]
}

fn key(v: &Value, dir: SortDir) -> Vec<u8> {
    let mut out = Vec::new();
    encode_field(v, dir, &mut out);
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    /// Ascending byte order == collate order, for arbitrary scalar pairs.
    #[test]
    fn byte_order_matches_collate(a in arb_scalar(), b in arb_scalar()) {
        let ka = key(&a, SortDir::Ascending);
        let kb = key(&b, SortDir::Ascending);
        let byte_ord = ka.cmp(&kb);
        let coll_ord = a.collate(&b);
        prop_assert_eq!(byte_ord, coll_ord, "{:?} vs {:?}", a, b);
    }

    /// Descending is the exact reverse for non-equal values.
    #[test]
    fn descending_reverses(a in arb_scalar(), b in arb_scalar()) {
        let asc = key(&a, SortDir::Ascending).cmp(&key(&b, SortDir::Ascending));
        let desc = key(&a, SortDir::Descending).cmp(&key(&b, SortDir::Descending));
        prop_assert_eq!(asc, desc.reverse());
    }

    /// Equal keys only for collate-equal values (injective up to collation
    /// equivalence).
    #[test]
    fn key_equality_is_collate_equality(a in arb_scalar(), b in arb_scalar()) {
        let same_key = key(&a, SortDir::Ascending) == key(&b, SortDir::Ascending);
        let same_coll = a.collate(&b) == std::cmp::Ordering::Equal;
        prop_assert_eq!(same_key, same_coll);
    }

    /// Multi-field keys respect lexicographic field significance: if the
    /// first fields differ, the second never flips the order.
    #[test]
    fn field_concatenation_is_lexicographic(
        a1 in arb_scalar(), a2 in arb_scalar(),
        b1 in arb_scalar(), b2 in arb_scalar(),
    ) {
        let mut ka = key(&a1, SortDir::Ascending);
        ka.extend(key(&a2, SortDir::Ascending));
        let mut kb = key(&b1, SortDir::Ascending);
        kb.extend(key(&b2, SortDir::Ascending));
        let first = a1.collate(&b1);
        if first != std::cmp::Ordering::Equal {
            prop_assert_eq!(ka.cmp(&kb), first);
        }
    }
}
