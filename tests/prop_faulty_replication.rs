//! Property tests for replication over an unreliable transport: a pull
//! interrupted at any batch boundary and then resumed must produce a
//! database byte-identical to an uninterrupted pull (whether the pass is
//! digest-negotiated or a full enumeration), revision hashes must be
//! deterministic across replicas that apply the same edit schedule, and
//! retry-with-backoff must converge through a lossy link that defeats
//! the zero-retry policy within the same budget.
//!
//! The interrupt/resume properties run through ONE shared harness
//! ([`check_interrupted_resume`]) against two transports: the simulated
//! [`ScriptedTransport`] and the real-socket
//! [`SocketTransport`](domino::netio::SocketTransport) speaking the NRPC
//! stand-in wire protocol to a [`ReplicaListener`] on loopback. The
//! fault plans line up one-to-one (both count global 0-based delivery
//! indices), so the byte-identity guarantee is proven transport-
//! equivalent, not merely simulated.

use std::sync::Arc;

use proptest::prelude::*;

use domino::core::{Database, DbConfig, Note};
use domino::net::{LinkSpec, Network, Topology};
use domino::netio::{ReplicaListener, SocketTransport};
use domino::replica::{
    CleanTransport, ReplicationOptions, Replicator, RetryPolicy, ScriptedTransport, Transport,
};
use domino::types::{ContentHash, LogicalClock, NoteClass, NoteId, ReplicaId, Timestamp, Value};

fn make_db(instance: u64, skew: u64) -> Arc<Database> {
    Arc::new(
        Database::open_in_memory(
            DbConfig::new("p", ReplicaId(7), ReplicaId(instance)),
            LogicalClock::starting_at(Timestamp(skew)),
        )
        .unwrap(),
    )
}

/// Full byte-level canonical dump of a replica: every live note's UNID
/// with every item name/value pair (sorted), plus every deletion stub.
fn dump(db: &Database) -> Vec<String> {
    let mut out = Vec::new();
    for id in db.note_ids(Some(NoteClass::Document)).unwrap() {
        let n = db.open_note(id).unwrap();
        let mut items: Vec<String> = n
            .items_raw()
            .iter()
            .map(|it| {
                format!(
                    "{}={:?} flags {} rev {}",
                    it.name, it.value, it.flags.0, it.revised.0
                )
            })
            .collect();
        items.sort();
        out.push(format!("doc {:032x} [{}]", n.unid().0, items.join(", ")));
    }
    for s in db.stubs().unwrap() {
        out.push(format!("stub {:032x} seq {}", s.oid.unid.0, s.oid.seq));
    }
    out.sort();
    out
}

/// Populate `src` with `docs` documents (some multi-edit) and `deletes`
/// deletions so the candidate stream mixes adds, updates, and stubs.
fn populate(src: &Database, docs: usize, deletes: usize) {
    let mut ids: Vec<NoteId> = Vec::new();
    for i in 0..docs {
        let mut n = Note::document("Memo");
        n.set("Subject", Value::text(format!("memo {i}")));
        n.set("Body", Value::text("text ".repeat(i % 7 + 1)));
        src.save(&mut n).unwrap();
        ids.push(n.id);
        if i % 3 == 0 {
            let mut again = src.open_note(n.id).unwrap();
            again.set("Body", Value::text(format!("edited {i}")));
            src.save(&mut again).unwrap();
        }
    }
    for id in ids.iter().take(deletes) {
        src.delete(*id).unwrap();
    }
}

/// The shared interrupt/resume harness, transport-agnostic.
///
/// Pulls `src` into a fresh destination over `faulty` (any transport
/// that fails deliveries with transient `Unavailable` errors), resuming
/// the parked cursor until the pass completes, then compares the result
/// byte-for-byte against an uninterrupted [`CleanTransport`] pull (whose
/// pass negotiates iff `clean_negotiate`). Panics on any divergence, so
/// proptest shrinks the failing case whichever transport produced it.
fn check_interrupted_resume(
    docs: usize,
    deletes: usize,
    batch: usize,
    negotiate: bool,
    clean_negotiate: bool,
    faulty_transport: &mut dyn Transport,
) {
    let src = make_db(1, 0);
    populate(&src, docs, deletes.min(docs));

    let faulty_dst = make_db(2, 100);
    let mut faulty = Replicator::new(ReplicationOptions {
        batch,
        negotiate,
        ..ReplicationOptions::default()
    });
    let mut guard = 0;
    while faulty
        .pull_via(&faulty_dst, &src, faulty_transport)
        .is_err()
    {
        guard += 1;
        assert!(guard <= 64, "pull never completed");
    }
    assert!(!faulty.has_pending(), "cursor must clear on completion");

    let clean_dst = make_db(3, 200);
    let mut clean = Replicator::new(ReplicationOptions {
        batch,
        negotiate: clean_negotiate,
        ..ReplicationOptions::default()
    });
    clean
        .pull_via(&clean_dst, &src, &mut CleanTransport)
        .unwrap();

    assert_eq!(dump(&faulty_dst), dump(&clean_dst));
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Interrupt a pull at arbitrary message indices (i.e. any batch
    /// boundary), resume until it completes, and the destination is
    /// byte-identical to one filled by an uninterrupted pull.
    #[test]
    fn interrupted_resume_is_byte_identical(
        docs in 1..40usize,
        deletes in 0..5usize,
        batch in 1..9usize,
        fail_at in prop::collection::vec(0..30u64, 0..8),
    ) {
        let mut transport = ScriptedTransport::failing_at(fail_at);
        check_interrupted_resume(docs, deletes, batch, false, false, &mut transport);
    }

    /// A digest-negotiated pull interrupted at arbitrary message indices
    /// (negotiation rounds included) and resumed until complete lands the
    /// same bytes as an uninterrupted full-enumeration pull — the Merkle
    /// diff may *skip* converged notes but must never change what ships.
    #[test]
    fn negotiated_interrupted_matches_full_enumeration(
        docs in 1..40usize,
        deletes in 0..5usize,
        batch in 1..9usize,
        fail_at in prop::collection::vec(0..40u64, 0..8),
    ) {
        let mut transport = ScriptedTransport::failing_at(fail_at);
        check_interrupted_resume(docs, deletes, batch, true, false, &mut transport);
    }

    /// Two replicas with the same instance identity that apply an
    /// identical edit schedule derive identical revision hashes — and so
    /// identical Merkle roots. This is what lets negotiation compare
    /// digests computed independently on each side.
    #[test]
    fn revision_hashes_are_deterministic_across_replicas(
        docs in 1..20usize,
        edits in prop::collection::vec((0..20usize, 0..50u32), 0..30),
    ) {
        let run = || {
            let db = make_db(9, 0);
            let mut ids: Vec<NoteId> = Vec::new();
            for i in 0..docs {
                let mut n = Note::document("Memo");
                n.set("Subject", Value::text(format!("memo {i}")));
                db.save(&mut n).unwrap();
                ids.push(n.id);
            }
            for (idx, payload) in &edits {
                let id = ids[idx % ids.len()];
                let mut n = db.open_note(id).unwrap();
                n.set("Body", Value::text(format!("edit {payload}")));
                db.save(&mut n).unwrap();
            }
            db
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a.merkle_root(), b.merkle_root());
        prop_assert_ne!(a.merkle_root(), ContentHash::NONE, "root must summarize content");
        prop_assert_eq!(a.merkle_len(), docs);
    }

}

// The same interrupt/resume properties over a REAL socket: each case
// boots a loopback `ReplicaListener` armed with the identical scripted
// fault plan (it nacks the same global delivery indices the
// `ScriptedTransport` would fail) and drives the shared harness through
// a `SocketTransport`, reconnects and all. Fewer cases — each spins up
// a listener thread — but the property and harness are the same.
proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    #[test]
    fn interrupted_resume_is_byte_identical_over_sockets(
        docs in 1..40usize,
        deletes in 0..5usize,
        batch in 1..9usize,
        fail_at in prop::collection::vec(0..30u64, 0..8),
    ) {
        let listener = ReplicaListener::bind("127.0.0.1:0").unwrap();
        listener.fail_deliveries(fail_at);
        let mut transport = SocketTransport::connect(&listener.addr());
        check_interrupted_resume(docs, deletes, batch, false, false, &mut transport);
    }

    #[test]
    fn negotiated_interrupted_matches_full_enumeration_over_sockets(
        docs in 1..40usize,
        deletes in 0..5usize,
        batch in 1..9usize,
        fail_at in prop::collection::vec(0..40u64, 0..8),
    ) {
        let listener = ReplicaListener::bind("127.0.0.1:0").unwrap();
        listener.fail_deliveries(fail_at);
        let mut transport = SocketTransport::connect(&listener.addr());
        check_interrupted_resume(docs, deletes, batch, true, false, &mut transport);
    }
}

/// Retrying with backoff converges across a 20%-drop link within a round
/// budget that the zero-retry policy cannot meet. Both runs see identical
/// fault streams (same seed), so the comparison is exact, not statistical.
#[test]
fn retry_beats_zero_retry_through_a_lossy_link() {
    let seed = 0xFA17;
    let budget = 2;
    let run = |policy: RetryPolicy| {
        let mut net = Network::new(
            2,
            Topology::Mesh,
            LinkSpec::default().with_drop_rate(0.20),
            LogicalClock::new(),
        );
        net.set_fault_seed(seed);
        net.set_retry_policy(policy);
        net.create_replica_set("d").unwrap();
        for i in 0..320 {
            let mut n = Note::document("Memo");
            n.set("Subject", Value::text(format!("memo {i}")));
            net.db(0, "d").unwrap().save(&mut n).unwrap();
        }
        for _ in 0..budget {
            net.replicate_all_links("d").unwrap();
        }
        net.converged("d").unwrap()
    };
    // 320 docs = 20 messages per pass at the default batch of 16: a
    // zero-retry pass aborts at the first drop (expected after ~5 messages
    // at 20% loss), so two rounds cannot cover the stream, while 8 backoff
    // attempts per pull ride it out.
    assert!(run(RetryPolicy::standard()), "retry failed to converge");
    assert!(!run(RetryPolicy::none()), "zero-retry converged in budget");
}
