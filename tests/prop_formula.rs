//! Property tests for the formula language: algebraic identities of the
//! list operators and @-functions, and parser/printer robustness.

use proptest::prelude::*;

use domino::formula::{EvalEnv, Formula, MapDoc};
use domino::types::Value;

fn eval_with(doc: &MapDoc, src: &str) -> Value {
    Formula::compile(src)
        .unwrap()
        .eval(doc, &EvalEnv::default())
        .unwrap()
}

/// Text safe to embed in a formula string literal and compare as a single
/// list element (no quotes/backslashes/semicolons).
fn safe_text() -> impl Strategy<Value = String> {
    "[a-z0-9 _.-]{0,12}"
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    /// @Elements(a : b) = @Elements(a) + @Elements(b) for list values.
    #[test]
    fn concat_adds_element_counts(
        a in prop::collection::vec(any::<i16>(), 1..6),
        b in prop::collection::vec(any::<i16>(), 1..6),
    ) {
        let doc = MapDoc::new()
            .with("A", Value::NumberList(a.iter().map(|x| *x as f64).collect()))
            .with("B", Value::NumberList(b.iter().map(|x| *x as f64).collect()));
        let n = eval_with(&doc, "@Elements(A : B)");
        prop_assert_eq!(n, Value::Number((a.len() + b.len()) as f64));
    }

    /// @Sort is idempotent and permutation-invariant.
    #[test]
    fn sort_idempotent_and_order_free(xs in prop::collection::vec(-1000i32..1000, 1..12)) {
        let fwd = MapDoc::new()
            .with("X", Value::NumberList(xs.iter().map(|x| *x as f64).collect()));
        let mut rev_xs = xs.clone();
        rev_xs.reverse();
        let rev = MapDoc::new()
            .with("X", Value::NumberList(rev_xs.iter().map(|x| *x as f64).collect()));
        let s1 = eval_with(&fwd, "@Sort(X)");
        let s2 = eval_with(&rev, "@Sort(X)");
        prop_assert_eq!(&s1, &s2);
        let doc2 = MapDoc::new().with("X", s1.clone());
        prop_assert_eq!(eval_with(&doc2, "@Sort(X)"), s1);
    }

    /// @Implode then @Explode with a separator not present in the parts is
    /// the identity on non-empty clean text lists.
    #[test]
    fn implode_explode_roundtrip(parts in prop::collection::vec("[a-z0-9]{1,8}", 1..6)) {
        let doc = MapDoc::new().with("X", Value::text_list(parts.clone()));
        let joined = eval_with(&doc, r#"@Implode(X; "|")"#);
        let doc2 = MapDoc::new().with("J", joined);
        let back = eval_with(&doc2, r#"@Explode(J; "|")"#);
        prop_assert_eq!(back, Value::TextList(parts));
    }

    /// Uppercase/lowercase are inverses on ASCII and length-preserving.
    #[test]
    fn case_functions(s in "[a-zA-Z0-9 ]{0,20}") {
        let doc = MapDoc::new().with("S", Value::text(s.clone()));
        let up = eval_with(&doc, "@Uppercase(S)");
        prop_assert_eq!(up, Value::Text(s.to_uppercase()));
        let low = eval_with(&doc, "@Lowercase(@Uppercase(S))");
        prop_assert_eq!(low, Value::Text(s.to_lowercase()));
        let n = eval_with(&doc, "@Length(S)");
        prop_assert_eq!(n, Value::Number(s.chars().count() as f64));
    }

    /// @Left(s; n) + @Right(s; len - n) reassembles s.
    #[test]
    fn left_right_partition(s in "[a-z]{0,16}", cut in 0..20usize) {
        let n = cut.min(s.len());
        let doc = MapDoc::new()
            .with("S", Value::text(s.clone()))
            .with("N", Value::Number(n as f64));
        let got = eval_with(&doc, "@Left(S; N) + @Right(S; @Length(S) - N)");
        prop_assert_eq!(got, Value::Text(s));
    }

    /// Pairwise '+' on equal-length lists is element-wise addition.
    #[test]
    fn pairwise_add(xs in prop::collection::vec(-100i32..100, 1..8)) {
        let nums: Vec<f64> = xs.iter().map(|x| *x as f64).collect();
        let doc = MapDoc::new()
            .with("A", Value::NumberList(nums.clone()))
            .with("B", Value::NumberList(nums.clone()));
        let got = eval_with(&doc, "A + B");
        let want: Vec<f64> = nums.iter().map(|x| x * 2.0).collect();
        let want = if want.len() == 1 { Value::Number(want[0]) } else { Value::NumberList(want) };
        prop_assert_eq!(got, want);
    }

    /// @Sum over a list equals the model sum; broadcasting scalar * list
    /// distributes.
    #[test]
    fn sum_and_broadcast(xs in prop::collection::vec(-50i32..50, 1..10), k in -5i32..5) {
        let doc = MapDoc::new()
            .with("X", Value::NumberList(xs.iter().map(|x| *x as f64).collect()))
            .with("K", Value::Number(k as f64));
        let total: i64 = xs.iter().map(|x| *x as i64).sum();
        prop_assert_eq!(eval_with(&doc, "@Sum(X)"), Value::Number(total as f64));
        let scaled = eval_with(&doc, "@Sum(X * K)");
        prop_assert_eq!(scaled, Value::Number((total * k as i64) as f64));
    }

    /// Membership: every element of a list IS a member; a fresh marker is
    /// not.
    #[test]
    fn membership(parts in prop::collection::vec("[a-z]{1,6}", 1..6), pick in any::<prop::sample::Index>()) {
        let doc = MapDoc::new().with("X", Value::text_list(parts.clone()));
        let chosen = &parts[pick.index(parts.len())];
        let f = format!(r#"@IsMember("{chosen}"; X)"#);
        prop_assert_eq!(eval_with(&doc, &f), Value::from(true));
        prop_assert_eq!(
            eval_with(&doc, r#"@IsMember("zzz-not-there"; X)"#),
            Value::from(false)
        );
        // @Member returns a valid 1-based index pointing at an equal element.
        let idx = eval_with(&doc, &format!(r#"@Member("{chosen}"; X)"#)).as_number().unwrap();
        prop_assert!(idx >= 1.0);
        prop_assert_eq!(&parts[idx as usize - 1], chosen);
    }

    /// Comparison operators form a total order consistent with f64.
    #[test]
    fn comparisons_match_f64(a in -1000i32..1000, b in -1000i32..1000) {
        let doc = MapDoc::new()
            .with("A", Value::Number(a as f64))
            .with("B", Value::Number(b as f64));
        prop_assert_eq!(eval_with(&doc, "A < B"), Value::from(a < b));
        prop_assert_eq!(eval_with(&doc, "A <= B"), Value::from(a <= b));
        prop_assert_eq!(eval_with(&doc, "A = B"), Value::from(a == b));
        prop_assert_eq!(eval_with(&doc, "A >= B"), Value::from(a >= b));
        prop_assert_eq!(eval_with(&doc, "A > B"), Value::from(a > b));
        prop_assert_eq!(eval_with(&doc, "A <> B"), Value::from(a != b));
    }

    /// Any safe text round-trips through a quoted literal.
    #[test]
    fn text_literals_roundtrip(s in safe_text()) {
        let doc = MapDoc::new();
        let got = eval_with(&doc, &format!("\"{s}\""));
        prop_assert_eq!(got, Value::Text(s));
    }

    /// @Subset(x; n) : @Subset(x; n - len) == x (split/recombine).
    #[test]
    fn subset_splits(parts in prop::collection::vec("[a-z]{1,4}", 2..8), cut in 1..7usize) {
        let n = cut.min(parts.len() - 1);
        let doc = MapDoc::new()
            .with("X", Value::text_list(parts.clone()))
            .with("N", Value::Number(n as f64));
        let got = eval_with(&doc, "@Subset(X; N) : @Subset(X; N - @Elements(X))");
        prop_assert_eq!(got, Value::text_list(parts));
    }
}
