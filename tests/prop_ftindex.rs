//! Property: the inverted index answers exactly like a naive scan over the
//! document texts, through arbitrary index/update/remove schedules.

use proptest::prelude::*;

use domino::core::Note;
use domino::ftindex::{parse_query, tokenize, InvertedIndex};
use domino::types::{NoteClass, Unid, Value};

fn words() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "alpha", "beta", "gamma", "delta", "storage", "notes", "view", "index",
    ])
    .prop_map(|s| s.to_string())
}

fn text() -> impl Strategy<Value = String> {
    prop::collection::vec(words(), 0..12).prop_map(|ws| ws.join(" "))
}

fn note(unid: u128, text: &str) -> Note {
    let mut n = Note::new(NoteClass::Document);
    n.oid.unid = Unid(unid);
    n.set("Body", Value::text(text));
    n
}

/// Naive evaluation of a single-word query: docs whose token stream
/// contains the word.
fn naive_contains(docs: &[(u128, String)], word: &str) -> Vec<u128> {
    let mut v: Vec<u128> = docs
        .iter()
        .filter(|(_, t)| tokenize(t).iter().any(|(w, _)| w == word))
        .map(|(u, _)| *u)
        .collect();
    v.sort_unstable();
    v
}

fn index_hits(ix: &InvertedIndex, q: &str) -> Vec<u128> {
    let mut v: Vec<u128> = ix
        .execute(&parse_query(q).unwrap())
        .into_iter()
        .map(|h| h.unid.0)
        .collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Word queries match a naive scan after arbitrary updates/removals.
    #[test]
    fn word_queries_match_naive_scan(
        initial in prop::collection::vec(text(), 1..10),
        updates in prop::collection::vec((0..10usize, text()), 0..6),
        removals in prop::collection::vec(0..10usize, 0..4),
        probe in words(),
    ) {
        let mut ix = InvertedIndex::new();
        let mut docs: Vec<(u128, String)> = initial
            .into_iter()
            .enumerate()
            .map(|(i, t)| (i as u128 + 1, t))
            .collect();
        for (u, t) in &docs {
            ix.index_note(&note(*u, t));
        }
        for (slot, t) in updates {
            if docs.is_empty() { break; }
            let i = slot % docs.len();
            docs[i].1 = t.clone();
            ix.index_note(&note(docs[i].0, &t));
        }
        for slot in removals {
            if docs.is_empty() { break; }
            let i = slot % docs.len();
            let (u, _) = docs.remove(i);
            ix.remove(Unid(u));
        }
        prop_assert_eq!(index_hits(&ix, &probe), naive_contains(&docs, &probe));
    }

    /// Boolean algebra: AND is intersection, OR is union, NOT is
    /// difference — verified against set operations on word results.
    #[test]
    fn boolean_operators_are_set_operations(
        texts in prop::collection::vec(text(), 1..12),
        w1 in words(),
        w2 in words(),
    ) {
        let docs: Vec<(u128, String)> = texts
            .into_iter()
            .enumerate()
            .map(|(i, t)| (i as u128 + 1, t))
            .collect();
        let mut ix = InvertedIndex::new();
        for (u, t) in &docs {
            ix.index_note(&note(*u, t));
        }
        let a = naive_contains(&docs, &w1);
        let b = naive_contains(&docs, &w2);
        let inter: Vec<u128> = a.iter().filter(|x| b.contains(x)).copied().collect();
        let mut union: Vec<u128> = a.iter().chain(b.iter()).copied().collect();
        union.sort_unstable();
        union.dedup();
        let diff: Vec<u128> = a.iter().filter(|x| !b.contains(x)).copied().collect();

        prop_assert_eq!(index_hits(&ix, &format!("{w1} AND {w2}")), inter);
        prop_assert_eq!(index_hits(&ix, &format!("{w1} OR {w2}")), union);
        prop_assert_eq!(index_hits(&ix, &format!("{w1} NOT {w2}")), diff);
    }

    /// Phrase queries match exactly the docs whose token stream contains
    /// the two words adjacently.
    #[test]
    fn phrases_match_adjacency(texts in prop::collection::vec(text(), 1..12), w1 in words(), w2 in words()) {
        let docs: Vec<(u128, String)> = texts
            .into_iter()
            .enumerate()
            .map(|(i, t)| (i as u128 + 1, t))
            .collect();
        let mut ix = InvertedIndex::new();
        for (u, t) in &docs {
            ix.index_note(&note(*u, t));
        }
        let naive: Vec<u128> = {
            let mut v: Vec<u128> = docs
                .iter()
                .filter(|(_, t)| {
                    let toks: Vec<String> =
                        tokenize(t).into_iter().map(|(w, _)| w).collect();
                    toks.windows(2).any(|w| w[0] == w1 && w[1] == w2)
                })
                .map(|(u, _)| *u)
                .collect();
            v.sort_unstable();
            v
        };
        prop_assert_eq!(index_hits(&ix, &format!("\"{w1} {w2}\"")), naive);
    }
}
