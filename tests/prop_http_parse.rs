//! Property tests for the incremental HTTP/1.1 request parser: whatever
//! a socket delivers — valid requests split at arbitrary byte
//! boundaries, pipelined bursts, or outright garbage — the parser must
//! either produce requests or fail with a `400`/`413`, must never panic,
//! and must keep its buffer bounded by the configured caps.

use domino::netio::{base64_encode, HttpParser, ParsedRequest, ParserLimits};
use domino::server::{Credentials, Method};
use proptest::prelude::*;

/// Drive `bytes` through a parser in chunks cut at `cuts`, collecting
/// everything it produces until the stream is exhausted or it errors.
fn feed_in_chunks(
    limits: ParserLimits,
    bytes: &[u8],
    cuts: &[usize],
) -> Result<Vec<ParsedRequest>, (u16, usize)> {
    let mut parser = HttpParser::new(limits);
    let mut got = Vec::new();
    let mut consume = |parser: &mut HttpParser, chunk: &[u8]| -> Result<(), u16> {
        let mut chunk = chunk;
        loop {
            match parser.feed(chunk) {
                Ok(Some(req)) => {
                    got.push(req);
                    chunk = &[];
                }
                Ok(None) => return Ok(()),
                Err(e) => return Err(e.status_code()),
            }
        }
    };
    let mut start = 0;
    let mut cuts: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    cuts.sort_unstable();
    for cut in cuts {
        if cut > start {
            consume(&mut parser, &bytes[start..cut]).map_err(|code| (code, parser.buffered()))?;
            start = cut;
        }
    }
    consume(&mut parser, &bytes[start..]).map_err(|code| (code, parser.buffered()))?;
    Ok(got)
}

/// A syntactically valid request built from generated parts.
fn render_request(
    method: &str,
    db: &str,
    user: Option<(&str, &str)>,
    body: &str,
    keep_alive: bool,
) -> String {
    let mut head = format!("{method} /{db}.nsf/topics?OpenView HTTP/1.1\r\n");
    if let Some((u, p)) = user {
        head.push_str(&format!(
            "Authorization: Basic {}\r\n",
            base64_encode(format!("{u}:{p}").as_bytes())
        ));
    }
    if !body.is_empty() {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    if !keep_alive {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    head.push_str(body);
    head
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// A pipeline of valid requests parses to the same sequence however
    /// the byte stream is cut — split points inside the request line,
    /// headers, or body must be invisible.
    #[test]
    fn valid_pipelines_parse_identically_at_any_split(
        requests in prop::collection::vec(
            ("[a-z]{1,8}", "[a-zA-Z0-9 =&+]{0,40}", any::<bool>(), any::<bool>()),
            1..5,
        ),
        cuts in prop::collection::vec(0..4096usize, 0..12),
    ) {
        let mut wire = String::new();
        let mut expected = Vec::new();
        for (db, body, authed, keep_alive) in &requests {
            let method = if body.is_empty() { "GET" } else { "POST" };
            let user = authed.then_some(("alice", "pw-a"));
            wire.push_str(&render_request(method, db, user, body, *keep_alive));
            expected.push((
                if body.is_empty() { Method::Get } else { Method::Post },
                format!("/{db}.nsf/topics?OpenView"),
                body.clone(),
                *keep_alive,
            ));
        }
        let whole = feed_in_chunks(ParserLimits::default(), wire.as_bytes(), &[])
            .expect("valid requests must parse");
        let split = feed_in_chunks(ParserLimits::default(), wire.as_bytes(), &cuts)
            .expect("split points must be invisible");
        prop_assert_eq!(&whole, &split);
        prop_assert_eq!(whole.len(), expected.len());
        for (got, (method, target, body, keep_alive)) in whole.iter().zip(&expected) {
            prop_assert_eq!(got.request.method, *method);
            prop_assert_eq!(&got.request.target, target);
            prop_assert_eq!(&got.request.body, body);
            prop_assert_eq!(got.keep_alive, *keep_alive);
            if matches!(got.request.credentials, Credentials::Basic { .. }) {
                prop_assert_eq!(
                    &got.request.credentials,
                    &Credentials::Basic { user: "alice".into(), password: "pw-a".into() }
                );
            }
        }
    }

    /// Arbitrary bytes never panic the parser, any failure maps to 400
    /// or 413, and the buffer stays bounded by the head/body caps
    /// whatever arrives and however it is cut.
    #[test]
    fn garbage_never_panics_and_memory_stays_bounded(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
        cuts in prop::collection::vec(0..2048usize, 0..8),
    ) {
        let limits = ParserLimits { max_head_bytes: 256, max_body_bytes: 128 };
        match feed_in_chunks(limits, &bytes, &cuts) {
            Ok(reqs) => {
                for r in reqs {
                    prop_assert!(r.request.body.len() <= 128);
                }
            }
            Err((code, buffered)) => {
                prop_assert!(code == 400 || code == 413, "unexpected status {code}");
                // One read chunk may overshoot the cap before the check
                // runs; the bound is cap + the largest chunk we fed.
                prop_assert!(
                    buffered <= 256 + 128 + 2048,
                    "buffer grew unboundedly: {buffered}"
                );
            }
        }
    }

    /// Oversized heads are rejected with 413 even when the terminator
    /// never arrives, and a Content-Length over the body cap is refused
    /// before a single body byte is read.
    #[test]
    fn oversized_inputs_are_413(filler in "[A-Za-z0-9]{1,64}", declared in 129u64..u64::MAX / 2) {
        let limits = ParserLimits { max_head_bytes: 256, max_body_bytes: 128 };

        // An endless header line must trip the head cap, not grow forever.
        let mut parser = HttpParser::new(limits);
        let mut tripped = None;
        for _ in 0..200 {
            match parser.feed(format!("X-F: {filler}\r\n").as_bytes()) {
                Ok(None) => {}
                Ok(Some(r)) => prop_assert!(false, "unterminated head parsed: {r:?}"),
                Err(e) => { tripped = Some(e); break; }
            }
        }
        let e = tripped.expect("head cap never tripped");
        prop_assert_eq!(e.status_code(), 413);
        prop_assert!(parser.buffered() <= 256 + 70, "buffer kept growing");

        // Declared body over the cap: refused at the header, 413.
        let mut parser = HttpParser::new(limits);
        let head = format!("POST /a.nsf?CreateDocument HTTP/1.1\r\nContent-Length: {declared}\r\n\r\n");
        match parser.feed(head.as_bytes()) {
            Err(e) => prop_assert_eq!(e.status_code(), 413),
            other => prop_assert!(false, "oversized declaration accepted: {other:?}"),
        }
    }

    /// Bad Content-Length values (non-numeric, negative, overflowing)
    /// are a 400, never a panic or a bogus body length.
    #[test]
    fn bad_content_length_is_400(value in "[a-z-]{1,12}") {
        // The generated non-numeric value, plus a u64-overflowing one.
        for value in [value.as_str(), "18446744073709551616"] {
            let raw =
                format!("POST /a.nsf?CreateDocument HTTP/1.1\r\nContent-Length: {value}\r\n\r\n");
            let mut parser = HttpParser::new(ParserLimits::default());
            match parser.feed(raw.as_bytes()) {
                Err(e) => prop_assert_eq!(e.status_code(), 400),
                other => prop_assert!(false, "bad Content-Length accepted: {other:?}"),
            }
        }
    }
}
