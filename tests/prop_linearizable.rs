//! Property: concurrent snapshot reads are linearizable — every snapshot
//! equals some serial prefix of the commit order.
//!
//! Commits publish to the version store while still holding the engine
//! lock, so commit order equals change-sequence order, and a snapshot
//! pinned at sequence `S` must show exactly the first `S` commits. The
//! properties below exercise that with real threads:
//!
//! * **Prefix sum** — every commit after the seeded baseline bumps exactly
//!   one note's `Ver` field by one, so the sum of `Ver` across a
//!   snapshot's documents must equal `snap.seq() - base_seq`. A snapshot
//!   that showed a later commit without an earlier one (or dropped a
//!   committed write) breaks the equality.
//! * **Per-note monotonicity** — across snapshots with nondecreasing
//!   sequences, each note's `Ver` never decreases.
//! * **Byte identity** — two snapshots pinned at the same sequence carry
//!   identical documents (the "byte-identical pages" clause: rendering
//!   from equal-seq snapshots can never differ).

use std::collections::HashMap;
use std::sync::{Arc, Barrier};
use std::thread;

use proptest::prelude::*;

use domino::core::{Database, DbConfig, Note};
use domino::types::{LogicalClock, NoteId, ReplicaId, Value};

fn ver_of(n: &Note) -> u64 {
    n.get("Ver").unwrap().as_number().unwrap() as u64
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..Default::default() })]

    #[test]
    fn snapshot_reads_equal_a_serial_prefix_of_commits(
        writers in 1usize..=3,
        notes_per_writer in 1usize..=2,
        ops_per_writer in 1usize..=24,
        use_lock_table in any::<bool>(),
    ) {
        let db = Arc::new(
            Database::open_in_memory(
                DbConfig::new("Lin", ReplicaId(1), ReplicaId(9))
                    .with_lock_table(use_lock_table),
                LogicalClock::new(),
            )
            .unwrap(),
        );

        // Seed every note with Ver = 0, then fix the baseline sequence:
        // everything after this point is "the commits".
        let mut owned: Vec<Vec<NoteId>> = Vec::new();
        for w in 0..writers {
            let mut ids = Vec::new();
            for k in 0..notes_per_writer {
                let mut n = Note::document("Memo");
                n.set("Subject", Value::text(format!("w{w}-n{k}")));
                n.set("Ver", Value::Number(0.0));
                db.save(&mut n).unwrap();
                ids.push(n.id);
            }
            owned.push(ids);
        }
        let base_seq = db.change_seq();

        let barrier = Arc::new(Barrier::new(writers + 1));
        let mut handles = Vec::new();
        for ids in owned {
            let db = db.clone();
            let barrier = barrier.clone();
            handles.push(thread::spawn(move || {
                barrier.wait();
                for i in 0..ops_per_writer {
                    let id = ids[i % ids.len()];
                    let mut n = db.open_note(id).unwrap();
                    n.set("Ver", Value::Number((ver_of(&n) + 1) as f64));
                    // Writers own disjoint note sets: no conflicts, no
                    // lock contention between them.
                    db.save(&mut n).unwrap();
                }
            }));
        }

        let reader_db = db.clone();
        let reader_barrier = barrier.clone();
        let reader = thread::spawn(move || {
            reader_barrier.wait();
            let mut last_seq = 0u64;
            let mut last_vers: HashMap<NoteId, u64> = HashMap::new();
            for _ in 0..80 {
                let a = reader_db.snapshot();
                let b = reader_db.snapshot();
                assert!(a.seq() >= last_seq, "snapshot sequence went backwards");
                last_seq = a.seq();

                // Prefix sum: visible increments == commits at or before
                // this sequence.
                let docs = a.documents();
                let sum: u64 = docs.iter().map(|n| ver_of(n)).sum();
                assert_eq!(
                    sum,
                    a.seq() - base_seq,
                    "snapshot at seq {} is not a serial prefix of the commit order",
                    a.seq()
                );

                // Per-note monotonicity across nondecreasing sequences.
                for n in &docs {
                    if let Some(&prev) = last_vers.get(&n.id) {
                        assert!(ver_of(n) >= prev, "a note's version rolled back");
                    }
                    last_vers.insert(n.id, ver_of(n));
                }

                // Byte identity: equal sequences, equal contents.
                if a.seq() == b.seq() {
                    let other = b.documents();
                    assert_eq!(docs.len(), other.len());
                    for (x, y) in docs.iter().zip(other.iter()) {
                        assert_eq!(**x, **y, "equal-seq snapshots differ");
                    }
                }
            }
        });

        for h in handles {
            h.join().unwrap();
        }
        reader.join().unwrap();

        // Quiescent check: the final snapshot is the full serial history.
        let total_ops = (writers * ops_per_writer) as u64;
        let snap = db.snapshot();
        prop_assert_eq!(snap.seq() - base_seq, total_ops);
        let sum: u64 = snap.documents().iter().map(|n| ver_of(n)).sum();
        prop_assert_eq!(sum, total_ops);
    }
}
