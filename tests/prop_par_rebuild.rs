//! Property: the parallel rebuild pipeline produces an index
//! byte-identical to the sequential reference — same entries, same
//! encoded collation keys, same maintenance counters — over arbitrary
//! note sets including response hierarchies and orphans.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use domino::core::{Database, DbConfig, Note};
use domino::formula::EvalEnv;
use domino::types::{LogicalClock, NoteClass, ReplicaId, Unid, Value};
use domino::views::index::NoSource;
use domino::views::{ColumnSpec, NoteSource, SortDir, ViewDesign, ViewIndex};

/// One generated document: selected or not, categorized, valued, and
/// optionally a response to an *earlier* document (by index). Parents may
/// themselves be unselected ("Memo"), producing orphaned responses.
#[derive(Debug, Clone)]
struct Spec {
    task: bool,
    cat: u8,
    val: u8,
    parent: Option<usize>,
}

fn specs() -> impl Strategy<Value = Vec<Spec>> {
    prop::collection::vec(
        (
            any::<bool>(),
            0..4u8,
            any::<u8>(),
            prop::option::of(0..24usize),
        )
            .prop_map(|(task, cat, val, parent)| Spec {
                task,
                cat,
                val,
                parent,
            }),
        1..48,
    )
}

/// Realize specs as saved notes (the database assigns UNIDs and stamps).
fn build_notes(specs: &[Spec]) -> Vec<Note> {
    let db = Database::open_in_memory(
        DbConfig::new("prop", ReplicaId(1), ReplicaId(3)),
        LogicalClock::new(),
    )
    .unwrap();
    let mut notes: Vec<Note> = Vec::with_capacity(specs.len());
    for spec in specs {
        let mut n = Note::document(if spec.task { "Task" } else { "Memo" });
        n.set("Cat", Value::text(format!("c{}", spec.cat)));
        n.set("Val", Value::Number(spec.val as f64));
        if let Some(p) = spec.parent {
            if !notes.is_empty() {
                n.set_parent(notes[p % notes.len()].unid());
            }
        }
        db.save(&mut n).unwrap();
        notes.push(n);
    }
    notes
}

struct MapSource(HashMap<Unid, Note>);

impl NoteSource for MapSource {
    fn note_by_unid(&self, unid: Unid) -> Option<Note> {
        self.0.get(&unid).cloned()
    }
}

fn design(responses: bool) -> ViewDesign {
    let selection = if responses {
        r#"SELECT Form = "Task" | @AllDescendants"#
    } else {
        r#"SELECT Form = "Task""#
    };
    ViewDesign::new("V", selection)
        .unwrap()
        .column(ColumnSpec::new("Cat", "Cat").unwrap().categorized())
        .column(
            ColumnSpec::new("Val", "Val")
                .unwrap()
                .sorted(SortDir::Descending),
        )
        .alternate(vec![(1, SortDir::Ascending), (0, SortDir::Ascending)])
}

fn assert_equivalent(notes: &[Note], design: ViewDesign, src: &dyn NoteSource) {
    let n_collations = design.collations().len();
    let mut par = ViewIndex::new(design.clone(), EvalEnv::default()).unwrap();
    let mut seq = ViewIndex::new(design, EvalEnv::default()).unwrap();
    par.rebuild(notes.iter(), src).unwrap();
    seq.rebuild_sequential(notes.iter(), src).unwrap();

    assert_eq!(par.len(), seq.len());
    for ci in 0..n_collations {
        assert_eq!(
            par.order_keys(ci),
            seq.order_keys(ci),
            "collation {ci} keys"
        );
        let pe: Vec<_> = par.entries(ci).into_iter().cloned().collect();
        let se: Vec<_> = seq.entries(ci).into_iter().cloned().collect();
        assert_eq!(pe, se, "collation {ci} entries");
    }
    let (ps, ss) = (par.stats(), seq.stats());
    assert_eq!(ps.evaluated, ss.evaluated);
    assert_eq!(ps.placed, ss.placed);
    assert_eq!(ps.removed, ss.removed);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    #[test]
    fn parallel_rebuild_matches_sequential_flat(specs in specs()) {
        let notes = build_notes(&specs);
        assert_equivalent(&notes, design(false), &NoSource);
    }

    #[test]
    fn parallel_rebuild_matches_sequential_with_responses(specs in specs()) {
        let notes = build_notes(&specs);
        let src = MapSource(notes.iter().map(|n| (n.unid(), n.clone())).collect());
        assert_equivalent(&notes, design(true), &src);
    }

    /// Orphan stress: every response's parent is a "Memo" excluded from
    /// the selection, so inclusion depends purely on each response's own
    /// merit — the orphan pass of `place_responses` does all the work.
    #[test]
    fn parallel_rebuild_matches_sequential_all_orphans(
        vals in prop::collection::vec((any::<bool>(), any::<u8>()), 1..32)
    ) {
        let db = Database::open_in_memory(
            DbConfig::new("orph", ReplicaId(1), ReplicaId(4)),
            LogicalClock::new(),
        ).unwrap();
        let mut memo = Note::document("Memo");
        db.save(&mut memo).unwrap();
        let mut notes = vec![memo.clone()];
        // Chains of responses hanging off the excluded memo.
        let mut parent = memo.unid();
        for (task, val) in &vals {
            let mut n = Note::document(if *task { "Task" } else { "Memo" });
            n.set("Cat", Value::text("c0"));
            n.set("Val", Value::Number(*val as f64));
            n.set_parent(parent);
            db.save(&mut n).unwrap();
            if *task {
                parent = n.unid();
            }
            notes.push(n);
        }
        prop_assert!(notes.iter().all(|n| n.class == NoteClass::Document));
        let src = MapSource(notes.iter().map(|n| (n.unid(), n.clone())).collect());
        assert_equivalent(&notes, design(true), &src);
    }
}

/// Non-property check: the two paths also agree when driven through the
/// high-level `View` API (shared database, larger doc count so the
/// parallel path actually splits across workers).
#[test]
fn parallel_rebuild_matches_sequential_at_scale() {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("scale", ReplicaId(1), ReplicaId(5)),
            LogicalClock::new(),
        )
        .unwrap(),
    );
    for i in 0..600 {
        let mut n = Note::document(if i % 3 == 0 { "Memo" } else { "Task" });
        n.set("Cat", Value::text(format!("c{}", i % 7)));
        n.set("Val", Value::Number((i % 251) as f64));
        db.save(&mut n).unwrap();
    }
    let ids = db.note_ids(Some(NoteClass::Document)).unwrap();
    let notes: Vec<Note> = ids.iter().map(|id| db.open_note(*id).unwrap()).collect();
    assert_equivalent(&notes, design(false), &NoSource);
}
