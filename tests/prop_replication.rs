//! Property tests for replication: arbitrary edit/delete/sync schedules
//! must always converge, and no update may ever be silently lost.

use std::sync::Arc;

use proptest::prelude::*;

use domino::core::{Database, DbConfig, Note};
use domino::replica::{ReplicationOptions, Replicator};
use domino::types::{LogicalClock, NoteClass, ReplicaId, Timestamp, Value};

/// One step of a random schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Create a document on replica r with payload p.
    Create { r: usize, p: u8 },
    /// Edit document #d (mod existing) on replica r to payload p.
    Edit { r: usize, d: usize, p: u8 },
    /// Edit a *different field* of document #d.
    EditOther { r: usize, d: usize, p: u8 },
    /// Delete document #d on replica r.
    Delete { r: usize, d: usize },
    /// Replicate the pair (a, b).
    Sync { a: usize, b: usize },
}

fn op_strategy(replicas: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..replicas, any::<u8>()).prop_map(|(r, p)| Op::Create { r, p }),
        (0..replicas, 0..64usize, any::<u8>()).prop_map(|(r, d, p)| Op::Edit { r, d, p }),
        (0..replicas, 0..64usize, any::<u8>()).prop_map(|(r, d, p)| Op::EditOther { r, d, p }),
        (0..replicas, 0..64usize).prop_map(|(r, d)| Op::Delete { r, d }),
        (0..replicas, 0..replicas).prop_map(|(a, b)| Op::Sync { a, b }),
    ]
}

fn make_replicas(n: usize) -> Vec<Arc<Database>> {
    (0..n)
        .map(|i| {
            Arc::new(
                Database::open_in_memory(
                    DbConfig::new("p", ReplicaId(42), ReplicaId(1000 + i as u64)),
                    LogicalClock::starting_at(Timestamp(i as u64 * 13)),
                )
                .unwrap(),
            )
        })
        .collect()
}

/// Canonical live-document view of a replica: unid -> (payload items).
fn contents(db: &Database) -> Vec<(u128, String, String)> {
    let mut v: Vec<(u128, String, String)> = db
        .note_ids(Some(NoteClass::Document))
        .unwrap()
        .into_iter()
        .map(|id| {
            let n = db.open_note(id).unwrap();
            (
                n.unid().0,
                n.get_text("Payload").unwrap_or_default(),
                n.get_text("Other").unwrap_or_default(),
            )
        })
        .collect();
    v.sort();
    v
}

fn run_schedule(ops: &[Op], replicas: usize, merge: bool) -> Vec<Arc<Database>> {
    let dbs = make_replicas(replicas);
    let mut repl = Replicator::new(ReplicationOptions {
        merge_conflicts: merge,
        ..ReplicationOptions::default()
    });
    for op in ops {
        match op {
            Op::Create { r, p } => {
                let mut n = Note::document("Doc");
                n.set("Payload", Value::text(format!("p{p}")));
                dbs[*r].save(&mut n).unwrap();
            }
            Op::Edit { r, d, p } => {
                let ids = dbs[*r].note_ids(Some(NoteClass::Document)).unwrap();
                if ids.is_empty() {
                    continue;
                }
                let id = ids[d % ids.len()];
                let mut n = dbs[*r].open_note(id).unwrap();
                n.set("Payload", Value::text(format!("e{p}")));
                dbs[*r].save(&mut n).unwrap();
            }
            Op::EditOther { r, d, p } => {
                let ids = dbs[*r].note_ids(Some(NoteClass::Document)).unwrap();
                if ids.is_empty() {
                    continue;
                }
                let id = ids[d % ids.len()];
                let mut n = dbs[*r].open_note(id).unwrap();
                n.set("Other", Value::text(format!("o{p}")));
                dbs[*r].save(&mut n).unwrap();
            }
            Op::Delete { r, d } => {
                let ids = dbs[*r].note_ids(Some(NoteClass::Document)).unwrap();
                if ids.is_empty() {
                    continue;
                }
                dbs[*r].delete(ids[d % ids.len()]).unwrap();
            }
            Op::Sync { a, b } => {
                if a != b {
                    repl.sync(&dbs[*a], &dbs[*b]).unwrap();
                }
            }
        }
    }
    // Final full mesh until quiescent (every pair, until no pull changes
    // anything — bounded by a generous round count).
    for _ in 0..2 * replicas * replicas + 4 {
        let mut changed = false;
        for a in 0..replicas {
            for b in a + 1..replicas {
                let (x, y) = repl.sync(&dbs[a], &dbs[b]).unwrap();
                changed |= x.changed_anything() || y.changed_anything();
            }
        }
        if !changed {
            break;
        }
    }
    dbs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// After any schedule plus a finishing mesh sync, all replicas hold
    /// identical documents.
    #[test]
    fn replicas_always_converge(
        ops in prop::collection::vec(op_strategy(3), 1..40),
        merge in any::<bool>(),
    ) {
        let dbs = run_schedule(&ops, 3, merge);
        let want = contents(&dbs[0]);
        for db in &dbs[1..] {
            prop_assert_eq!(contents(db), want.clone());
        }
        // Stub sets converge too.
        let stubs0: Vec<u128> = {
            let mut s: Vec<u128> =
                dbs[0].stubs().unwrap().iter().map(|x| x.oid.unid.0).collect();
            s.sort_unstable();
            s
        };
        for db in &dbs[1..] {
            let mut s: Vec<u128> =
                db.stubs().unwrap().iter().map(|x| x.oid.unid.0).collect();
            s.sort_unstable();
            prop_assert_eq!(s, stubs0.clone());
        }
    }

    /// No update is silently lost: every payload string written by the
    /// final edit of some divergent branch survives somewhere — in the
    /// winning document, a merge, or a $Conflict document — unless its
    /// document was deleted.
    #[test]
    fn concurrent_edits_never_silently_lost(
        pa in any::<u8>(), pb in any::<u8>(),
    ) {
        let dbs = make_replicas(2);
        let mut repl = Replicator::new(ReplicationOptions::default());
        let mut n = Note::document("Doc");
        n.set("Payload", Value::text("base"));
        dbs[0].save(&mut n).unwrap();
        repl.sync(&dbs[0], &dbs[1]).unwrap();

        // Divergent edits.
        let mut na = dbs[0].open_by_unid(n.unid()).unwrap();
        na.set("Payload", Value::text(format!("a{pa}")));
        dbs[0].save(&mut na).unwrap();
        let mut nb = dbs[1].open_by_unid(n.unid()).unwrap();
        nb.set("Payload", Value::text(format!("b{pb}")));
        dbs[1].save(&mut nb).unwrap();

        repl.sync(&dbs[0], &dbs[1]).unwrap();
        repl.sync(&dbs[0], &dbs[1]).unwrap();

        for db in &dbs {
            let all: Vec<String> = db
                .note_ids(Some(NoteClass::Document))
                .unwrap()
                .into_iter()
                .map(|id| db.open_note(id).unwrap().get_text("Payload").unwrap())
                .collect();
            prop_assert!(all.contains(&format!("a{pa}")), "a-edit lost: {all:?}");
            prop_assert!(all.contains(&format!("b{pb}")), "b-edit lost: {all:?}");
        }
    }

    /// Disjoint-field concurrent edits with merging on: both fields
    /// survive in ONE document, with no conflict documents.
    #[test]
    fn merge_keeps_both_disjoint_fields(pa in any::<u8>(), pb in any::<u8>()) {
        let dbs = make_replicas(2);
        let mut repl = Replicator::new(ReplicationOptions {
            merge_conflicts: true,
            ..ReplicationOptions::default()
        });
        let mut n = Note::document("Doc");
        n.set("Payload", Value::text("base"));
        n.set("Other", Value::text("base"));
        dbs[0].save(&mut n).unwrap();
        repl.sync(&dbs[0], &dbs[1]).unwrap();

        let mut na = dbs[0].open_by_unid(n.unid()).unwrap();
        na.set("Payload", Value::text(format!("a{pa}")));
        dbs[0].save(&mut na).unwrap();
        let mut nb = dbs[1].open_by_unid(n.unid()).unwrap();
        nb.set("Other", Value::text(format!("b{pb}")));
        dbs[1].save(&mut nb).unwrap();

        repl.sync(&dbs[0], &dbs[1]).unwrap();
        repl.sync(&dbs[0], &dbs[1]).unwrap();

        for db in &dbs {
            prop_assert_eq!(db.document_count().unwrap(), 1, "no conflict docs");
            let doc = db.open_by_unid(n.unid()).unwrap();
            prop_assert_eq!(doc.get_text("Payload").unwrap(), format!("a{pa}"));
            prop_assert_eq!(doc.get_text("Other").unwrap(), format!("b{pb}"));
        }
    }
}
