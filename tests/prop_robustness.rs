//! Robustness properties: decoders and parsers must never panic on
//! arbitrary input, and encodings must round-trip arbitrary values.

use proptest::prelude::*;

use domino::core::Note;
use domino::formula::Formula;
use domino::types::{DateTime, Item, ItemFlags, NoteClass, NoteId, Timestamp, Value};
use domino::wal::LogRecord;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<f64>()
            .prop_filter("finite", |f| f.is_finite())
            .prop_map(Value::Number),
        prop::collection::vec(any::<i32>().prop_map(|i| i as f64), 0..6)
            .prop_map(Value::NumberList),
        ".{0,40}".prop_map(Value::Text),
        prop::collection::vec(".{0,12}", 0..5).prop_map(Value::TextList),
        any::<i64>().prop_map(|t| Value::DateTime(DateTime(t))),
        prop::collection::vec(any::<i64>().prop_map(DateTime), 0..5).prop_map(Value::DateTimeList),
        prop::collection::vec(any::<u8>(), 0..200).prop_map(Value::RichText),
    ]
}

fn arb_item() -> impl Strategy<Value = Item> {
    (
        "[A-Za-z$][A-Za-z0-9_]{0,12}",
        arb_value(),
        0u8..32,
        any::<u64>(),
    )
        .prop_map(|(name, value, flags, revised)| {
            let mut it = Item::new(name, value);
            it.flags = ItemFlags(flags);
            it.revised = Timestamp(revised);
            it
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, .. ProptestConfig::default() })]

    /// Arbitrary values survive the canonical binary encoding.
    #[test]
    fn value_encoding_roundtrips(v in arb_value()) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut pos = 0;
        let back = Value::decode(&buf, &mut pos).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(pos, buf.len());
    }

    /// Value decoding never panics on arbitrary bytes (errors are fine).
    #[test]
    fn value_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let mut pos = 0;
        let _ = Value::decode(&bytes, &mut pos);
    }

    /// Notes with arbitrary items round-trip through the summary/body
    /// segment encoding.
    #[test]
    fn note_encoding_roundtrips(items in prop::collection::vec(arb_item(), 0..8)) {
        let mut n = Note::new(NoteClass::Document);
        for it in items {
            n.set_item(it);
        }
        n.created = Timestamp(3);
        n.modified = Timestamp(9);
        let summary = n.encode_summary();
        let body = n.encode_body();
        let back = Note::decode(NoteId(1), &summary, body.as_deref()).unwrap();
        // Compare item multisets by name (order across segments may vary).
        let mut a: Vec<_> = n.items_raw().to_vec();
        let mut b: Vec<_> = back.items_raw().to_vec();
        let key = |i: &Item| (i.name.clone(), i.revised);
        a.sort_by_key(key);
        b.sort_by_key(key);
        prop_assert_eq!(a, b);
        prop_assert_eq!(back.oid, n.oid);
    }

    /// Note decoding never panics on arbitrary bytes.
    #[test]
    fn note_decode_never_panics(
        summary in prop::collection::vec(any::<u8>(), 0..200),
        body in prop::option::of(prop::collection::vec(any::<u8>(), 0..100)),
    ) {
        let _ = Note::decode(NoteId(1), &summary, body.as_deref());
    }

    /// Log-record decoding never panics on arbitrary bytes and always
    /// terminates.
    #[test]
    fn log_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let mut pos = 0;
        let mut guard = 0;
        while let Ok(Some(_)) = LogRecord::decode(&bytes, &mut pos) {
            guard += 1;
            if guard > 1000 { break; }
        }
    }

    /// The formula compiler never panics on arbitrary input; it either
    /// compiles or reports a parse error.
    #[test]
    fn formula_compile_never_panics(src in ".{0,80}") {
        let _ = Formula::compile(&src);
    }

    /// Formula evaluation never panics on programs built from a grammar of
    /// plausible fragments.
    #[test]
    fn formula_eval_never_panics(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "1", "x", "\"t\"", "@Sum(1;2)", "@Left(\"ab\"; 1)", "(1 + 2)",
                "@If(1; 2; 3)", "x := 4", "@Elements(1 : 2)", "-3", "!0",
            ]),
            1..5,
        ),
        op in prop::sample::select(vec![" + ", " : ", " = ", " & ", "; "]),
    ) {
        let src = parts.join(op);
        if let Ok(f) = Formula::compile(&src) {
            let _ = f.eval(&domino::formula::MapDoc::new(), &Default::default());
        }
    }
}
