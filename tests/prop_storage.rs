//! Property tests for the storage engine: B-tree vs a model, heap
//! round-trips, and crash recovery restoring exactly the committed state.

use std::collections::BTreeMap;

use proptest::prelude::*;

use domino::storage::{BTree, Engine, EngineConfig, Heap, MemDisk, PAGE_SIZE};
use domino::wal::MemLogStore;

fn engine_with(cap: usize) -> (Engine, MemDisk, MemLogStore) {
    let disk = MemDisk::new();
    let log = MemLogStore::new();
    let e = Engine::open(
        Box::new(disk.clone()),
        Some(Box::new(log.clone())),
        EngineConfig {
            buffer_capacity: cap,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    (e, disk, log)
}

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u64),
    Delete(u16),
    Get(u16),
}

fn tree_ops() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        any::<u16>().prop_map(TreeOp::Delete),
        any::<u16>().prop_map(TreeOp::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// The disk B-tree behaves exactly like std's BTreeMap, including
    /// through a tiny buffer pool (constant eviction).
    #[test]
    fn btree_matches_model(ops in prop::collection::vec(tree_ops(), 1..300)) {
        let (mut e, _, _) = engine_with(8);
        let mut tx = e.begin().unwrap();
        let t = BTree::open(&mut e, &mut tx, 0).unwrap();
        let mut model: BTreeMap<u128, u64> = BTreeMap::new();
        for op in &ops {
            match op {
                TreeOp::Insert(k, v) => {
                    let old = t.insert(&mut e, &mut tx, *k as u128, *v).unwrap();
                    prop_assert_eq!(old, model.insert(*k as u128, *v));
                }
                TreeOp::Delete(k) => {
                    let old = t.delete(&mut e, &mut tx, *k as u128).unwrap();
                    prop_assert_eq!(old, model.remove(&(*k as u128)));
                }
                TreeOp::Get(k) => {
                    let got = t.get(&mut e, *k as u128).unwrap();
                    prop_assert_eq!(got, model.get(&(*k as u128)).copied());
                }
            }
        }
        // Full scan equals the model.
        let mut scanned = Vec::new();
        t.scan(&mut e, 0, u128::MAX, |k, v| { scanned.push((k, v)); true }).unwrap();
        let want: Vec<(u128, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, want);
        e.commit(tx).unwrap();
    }

    /// Heap records of arbitrary sizes (spanning several pages) round-trip
    /// through interleaved inserts/deletes/updates.
    #[test]
    fn heap_roundtrips(specs in prop::collection::vec((any::<u8>(), 0..12_000usize), 1..30)) {
        let (mut e, _, _) = engine_with(64);
        let h = Heap;
        let mut tx = e.begin().unwrap();
        let mut live: Vec<(Vec<u8>, domino::storage::RecordPtr)> = Vec::new();
        for (i, (seed, len)) in specs.iter().enumerate() {
            let data: Vec<u8> = (0..*len).map(|j| (*seed as usize).wrapping_add(j) as u8).collect();
            let ptr = h.insert(&mut e, &mut tx, &data).unwrap();
            live.push((data, ptr));
            // Periodically delete or update an earlier record.
            if i % 3 == 2 && !live.is_empty() {
                let victim = i % live.len();
                let (_, ptr) = live.remove(victim);
                h.delete(&mut e, &mut tx, ptr).unwrap();
            } else if i % 5 == 4 && !live.is_empty() {
                let victim = i % live.len();
                let new_data: Vec<u8> = vec![*seed; (len / 2).max(1)];
                let new_ptr = h.update(&mut e, &mut tx, live[victim].1, &new_data).unwrap();
                live[victim] = (new_data, new_ptr);
            }
        }
        e.commit(tx).unwrap();
        for (data, ptr) in &live {
            prop_assert_eq!(&h.read(&mut e, *ptr).unwrap(), data);
        }
    }

    /// Crash anywhere: after restart, committed transactions are fully
    /// present and the in-flight one has fully vanished.
    #[test]
    fn crash_recovers_exactly_committed_state(
        committed_batches in prop::collection::vec(
            prop::collection::vec((any::<u16>(), any::<u64>()), 1..20), 0..6),
        in_flight in prop::collection::vec((any::<u16>(), any::<u64>()), 0..20),
        checkpoint_after in prop::option::of(0..6usize),
    ) {
        let disk = MemDisk::new();
        let log = MemLogStore::new();
        let mut model: BTreeMap<u128, u64> = BTreeMap::new();
        {
            let mut e = Engine::open(
                Box::new(disk.clone()),
                Some(Box::new(log.clone())),
                EngineConfig { buffer_capacity: 16, ..EngineConfig::default() },
            ).unwrap();
            let mut tx0 = e.begin().unwrap();
            let t = BTree::open(&mut e, &mut tx0, 0).unwrap();
            e.commit(tx0).unwrap();
            for (bi, batch) in committed_batches.iter().enumerate() {
                let mut tx = e.begin().unwrap();
                for (k, v) in batch {
                    t.insert(&mut e, &mut tx, *k as u128, *v).unwrap();
                    model.insert(*k as u128, *v);
                }
                e.commit(tx).unwrap();
                if checkpoint_after == Some(bi) {
                    e.checkpoint().unwrap();
                }
            }
            // An uncommitted transaction that crashed mid-flight, with its
            // updates partially forced to the log.
            if !in_flight.is_empty() {
                let mut tx = e.begin().unwrap();
                for (k, v) in &in_flight {
                    t.insert(&mut e, &mut tx, *k as u128, *v).unwrap();
                }
                e.wal().unwrap().flush_all().unwrap();
                // crash without commit
            }
            e.crash();
            log.crash();
        }
        let mut e = Engine::open(
            Box::new(disk),
            Some(Box::new(log)),
            EngineConfig::default(),
        ).unwrap();
        let t = BTree::open_existing(&mut e, 0).unwrap();
        let mut scanned = Vec::new();
        t.scan(&mut e, 0, u128::MAX, |k, v| { scanned.push((k, v)); true }).unwrap();
        let want: Vec<(u128, u64)> = model.into_iter().collect();
        prop_assert_eq!(scanned, want);
    }

    /// Abort is a perfect undo, byte for byte.
    #[test]
    fn abort_restores_pages(writes in prop::collection::vec(
        (1..40u32, 0..(PAGE_SIZE as u16 - 64), prop::collection::vec(any::<u8>(), 1..64)),
        1..40,
    )) {
        let (mut e, _, _) = engine_with(16);
        // Set up some pages with committed content.
        let mut tx = e.begin().unwrap();
        let mut pages = Vec::new();
        for _ in 0..40 {
            pages.push(e.alloc_page(&mut tx, domino::storage::PageType::Heap).unwrap());
        }
        e.commit(tx).unwrap();
        e.flush_all_pages().unwrap();
        let before: Vec<Vec<u8>> = pages
            .iter()
            .map(|p| e.fetch(*p).unwrap().bytes(16, PAGE_SIZE - 16).to_vec())
            .collect();

        let mut tx = e.begin().unwrap();
        for (pi, off, data) in &writes {
            let page = pages[(*pi as usize) % pages.len()];
            let off = (*off).max(16);
            let end = (off as usize + data.len()).min(PAGE_SIZE);
            e.write(&mut tx, page, off, &data[..end - off as usize]).unwrap();
        }
        e.abort(tx).unwrap();
        for (p, want) in pages.iter().zip(before.iter()) {
            let got = e.fetch(*p).unwrap().bytes(16, PAGE_SIZE - 16).to_vec();
            prop_assert_eq!(&got, want);
        }
    }
}
