//! Property: a view maintained incrementally through any sequence of
//! saves/edits/deletes is identical to one rebuilt from scratch.

use std::sync::Arc;

use proptest::prelude::*;

use domino::core::{Database, DbConfig, Note};
use domino::types::{LogicalClock, NoteClass, ReplicaId, Value};
use domino::views::{ColumnSpec, SortDir, View, ViewDesign};

#[derive(Debug, Clone)]
enum Op {
    Create {
        form: bool,
        cat: u8,
        val: u8,
        parent: Option<usize>,
    },
    Edit {
        d: usize,
        cat: u8,
        val: u8,
    },
    Retag {
        d: usize,
    },
    Delete {
        d: usize,
    },
}

fn ops() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            any::<bool>(),
            0..4u8,
            any::<u8>(),
            prop::option::of(0..32usize)
        )
            .prop_map(|(form, cat, val, parent)| Op::Create {
                form,
                cat,
                val,
                parent
            }),
        (0..32usize, 0..4u8, any::<u8>()).prop_map(|(d, cat, val)| Op::Edit { d, cat, val }),
        (0..32usize).prop_map(|d| Op::Retag { d }),
        (0..32usize).prop_map(|d| Op::Delete { d }),
    ]
}

fn design() -> ViewDesign {
    ViewDesign::new("V", r#"SELECT Form = "Task" | @AllDescendants"#)
        .unwrap()
        .column(ColumnSpec::new("Cat", "Cat").unwrap().categorized())
        .column(
            ColumnSpec::new("Val", "Val")
                .unwrap()
                .sorted(SortDir::Descending),
        )
        .column(ColumnSpec::new("Total", "Val * 2").unwrap().totaled())
}

fn rows_of(v: &View) -> Vec<(String, String, u32)> {
    v.rows()
        .iter()
        .map(|e| {
            (
                e.values[0].to_text(),
                e.values[1].to_text(),
                e.response_level,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn incremental_view_equals_rebuild(schedule in prop::collection::vec(ops(), 1..60)) {
        let db = Arc::new(
            Database::open_in_memory(
                DbConfig::new("p", ReplicaId(1), ReplicaId(2)),
                LogicalClock::new(),
            )
            .unwrap(),
        );
        let live = View::attach(&db, design()).unwrap();

        for op in &schedule {
            let ids = db.note_ids(Some(NoteClass::Document)).unwrap();
            match op {
                Op::Create { form, cat, val, parent } => {
                    let mut n = Note::document(if *form { "Task" } else { "Memo" });
                    n.set("Cat", Value::text(format!("c{cat}")));
                    n.set("Val", Value::Number(*val as f64));
                    if let Some(p) = parent {
                        if !ids.is_empty() {
                            let pid = ids[p % ids.len()];
                            let parent_unid = db.open_note(pid).unwrap().unid();
                            n.set_parent(parent_unid);
                        }
                    }
                    db.save(&mut n).unwrap();
                }
                Op::Edit { d, cat, val } => {
                    if ids.is_empty() { continue; }
                    let id = ids[d % ids.len()];
                    let mut n = db.open_note(id).unwrap();
                    n.set("Cat", Value::text(format!("c{cat}")));
                    n.set("Val", Value::Number(*val as f64));
                    db.save(&mut n).unwrap();
                }
                Op::Retag { d } => {
                    if ids.is_empty() { continue; }
                    let id = ids[d % ids.len()];
                    let mut n = db.open_note(id).unwrap();
                    // Flip the form so the doc enters/leaves the view.
                    let form = n.get_text("Form").unwrap_or_default();
                    n.set("Form", Value::text(if form == "Task" { "Memo" } else { "Task" }));
                    db.save(&mut n).unwrap();
                }
                Op::Delete { d } => {
                    if ids.is_empty() { continue; }
                    db.delete(ids[d % ids.len()]).unwrap();
                }
            }
        }

        let fresh = View::detached(&db, design()).unwrap();
        fresh.rebuild().unwrap();
        prop_assert_eq!(rows_of(&live), rows_of(&fresh));
        // Category rollups agree too.
        prop_assert_eq!(live.categories(), fresh.categories());
        // And totals.
        let lt = live.column_total(2);
        let ft = fresh.column_total(2);
        prop_assert!((lt - ft).abs() < 1e-9, "{lt} vs {ft}");
    }

    /// Collation keys give a total order consistent with Value::collate on
    /// the sorted column.
    #[test]
    fn view_rows_sorted_by_collation(vals in prop::collection::vec(any::<u8>(), 1..40)) {
        let db = Arc::new(
            Database::open_in_memory(
                DbConfig::new("p", ReplicaId(1), ReplicaId(2)),
                LogicalClock::new(),
            )
            .unwrap(),
        );
        let design = ViewDesign::new("V", "SELECT @All")
            .unwrap()
            .column(ColumnSpec::new("Val", "Val").unwrap().sorted(SortDir::Ascending));
        let view = View::attach(&db, design).unwrap();
        for v in &vals {
            let mut n = Note::document("Doc");
            n.set("Val", Value::Number(*v as f64));
            db.save(&mut n).unwrap();
        }
        let seen: Vec<f64> = view
            .rows()
            .iter()
            .map(|e| e.values[0].as_number().unwrap())
            .collect();
        let mut sorted = seen.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(seen, sorted);
    }
}
