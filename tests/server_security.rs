//! Security integration tests for the Domino HTTP task: ACL and
//! `$Readers` denials must surface as the right status codes (401 for
//! anonymous callers, 403 for named ones), restricted documents must
//! vanish from rendered views and search results, and — the property at
//! the bottom — the command cache must never serve one user's page to a
//! user with different access.

use std::sync::Arc;

use proptest::prelude::*;

use domino::core::{Database, DbConfig, Note};
use domino::security::{AccessLevel, Acl, AclEntry};
use domino::server::{DominoServer, Request, ServerConfig};
use domino::types::{ItemFlags, LogicalClock, ReplicaId, Unid, Value};
use domino::views::{ColumnSpec, SortDir, ViewDesign};

/// A discussion db where Anonymous may read, alice edits with the
/// [Board] role, bob authors, rita only reads — plus one public topic
/// and one `$Readers`-restricted topic visible only to [Board].
fn board_site() -> (DominoServer, Arc<Database>, Unid, Unid) {
    let db = Arc::new(
        Database::open_in_memory(
            DbConfig::new("Board", ReplicaId(0xB0A2), ReplicaId(0x5EC)),
            LogicalClock::new(),
        )
        .unwrap(),
    );
    let mut acl = Acl::new(AccessLevel::Reader);
    acl.set(
        "alice",
        AclEntry::new(AccessLevel::Editor).with_role("Board"),
    );
    acl.set("bob", AclEntry::new(AccessLevel::Author));
    acl.set("rita", AclEntry::new(AccessLevel::Reader));
    db.set_acl(&acl).unwrap();

    let mut public = Note::document("Topic");
    public.set("Subject", Value::text("minutes (public)"));
    public.set("Body", Value::text("nothing to hide here"));
    db.save(&mut public).unwrap();

    let mut secret = Note::document("Topic");
    secret.set("Subject", Value::text("acquisition plan"));
    secret.set("Body", Value::text("the secret acquisition details"));
    secret.set_with_flags(
        "DocReaders",
        Value::text("[Board]"),
        ItemFlags::SUMMARY | ItemFlags::READERS,
    );
    db.save(&mut secret).unwrap();

    let server = DominoServer::new(ServerConfig {
        workers: 2,
        queue_bound: 16,
        cache_capacity: 64,
    });
    server.register_database("board", &db).unwrap();
    let mut design = ViewDesign::new("all", r#"SELECT Form = "Topic""#).unwrap();
    design.columns = vec![ColumnSpec::new("Subject", "Subject")
        .unwrap()
        .sorted(SortDir::Ascending)];
    server.add_view("board", design).unwrap();
    server.register_user("alice", "pw-a");
    server.register_user("bob", "pw-b");
    server.register_user("rita", "pw-r");
    (server, db, public.unid(), secret.unid())
}

#[test]
fn readers_note_is_401_anonymous_403_named_200_member() {
    let (server, _db, _public, secret) = board_site();
    let target = format!("/board.nsf/{secret}?OpenDocument");

    // Anonymous: the browser should be asked to authenticate.
    let anon = server.handle(&Request::get(&target));
    assert_eq!(anon.status.code(), 401);

    // A named user off the reader list is refused outright...
    let bob = server.handle(&Request::get(&target).as_user("bob", "pw-b"));
    assert_eq!(bob.status.code(), 403);
    assert!(!bob.body.contains("acquisition"));

    // ...and a [Board] role holder reads it.
    let alice = server.handle(&Request::get(&target).as_user("alice", "pw-a"));
    assert_eq!(alice.status.code(), 200);
    assert!(alice.body.contains("acquisition plan"));
}

#[test]
fn save_at_reader_acl_is_403_anonymous_401() {
    let (server, _db, public, _secret) = board_site();
    let target = format!("/board.nsf/{public}?SaveDocument");

    let anon = server.handle(&Request::post(&target, "Subject=defaced"));
    assert_eq!(anon.status.code(), 401);

    let rita = server.handle(&Request::post(&target, "Subject=defaced").as_user("rita", "pw-r"));
    assert_eq!(rita.status.code(), 403);

    // Reader-level deletes are refused the same way.
    let del = server.handle(
        &Request::get(&format!("/board.nsf/{public}?DeleteDocument")).as_user("rita", "pw-r"),
    );
    assert_eq!(del.status.code(), 403);

    // The document is untouched and an Editor still can write it.
    let alice = server.handle(&Request::post(&target, "Subject=amended").as_user("alice", "pw-a"));
    assert_eq!(alice.status.code(), 200);
    let shown = server.handle(&Request::get(&format!("/board.nsf/{public}?OpenDocument")));
    assert!(shown.body.contains("amended"));
    assert!(!shown.body.contains("defaced"));
}

#[test]
fn restricted_rows_vanish_from_views_and_search_for_outsiders() {
    let (server, _db, _public, _secret) = board_site();

    let bob_view = server.handle(&Request::get("/board.nsf/all?OpenView").as_user("bob", "pw-b"));
    assert_eq!(bob_view.status.code(), 200);
    assert!(bob_view.body.contains("minutes (public)"));
    assert!(!bob_view.body.contains("acquisition"));

    let alice_view =
        server.handle(&Request::get("/board.nsf/all?OpenView").as_user("alice", "pw-a"));
    assert!(alice_view.body.contains("acquisition plan"));

    // Full-text search is reader-filtered the same way.
    let bob_search = server.handle(
        &Request::get("/board.nsf/all?SearchView&Query=acquisition").as_user("bob", "pw-b"),
    );
    assert_eq!(bob_search.status.code(), 200);
    assert!(!bob_search.body.contains("acquisition plan"));
    let alice_search = server.handle(
        &Request::get("/board.nsf/all?SearchView&Query=acquisition").as_user("alice", "pw-a"),
    );
    assert!(alice_search.body.contains("acquisition plan"));
}

/// Who may read a generated document, by reader-list code:
/// 0 = public, 1 = alice only, 2 = bob only, 3 = alice and bob.
fn may_read(user: usize, readers_code: usize) -> bool {
    match readers_code {
        0 => true,
        1 => user == 0,
        2 => user == 1,
        _ => user < 2,
    }
}

const USERS: [&str; 3] = ["alice", "bob", ""]; // "" = anonymous
const PASSWORDS: [&str; 2] = ["pw-a", "pw-b"];

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// The command cache partitions pages by access class: however the
    /// requests interleave — every page requested twice, so the second
    /// round is served from cache — a view page handed to user U never
    /// contains the subject of a document U may not read, and always
    /// contains every in-window document U may read.
    #[test]
    fn cached_pages_never_leak_across_users(
        docs in prop::collection::vec(0..4usize, 4..12),
        reqs in prop::collection::vec((0..3usize, 0..3usize), 10..30),
    ) {
        let db = Arc::new(Database::open_in_memory(
            DbConfig::new("Leak", ReplicaId(7), ReplicaId(8)),
            LogicalClock::new(),
        ).unwrap());
        let mut acl = Acl::new(AccessLevel::Reader); // Anonymous reads public docs
        acl.set("alice", AclEntry::new(AccessLevel::Editor));
        acl.set("bob", AclEntry::new(AccessLevel::Reader));
        db.set_acl(&acl).unwrap();
        for (i, code) in docs.iter().enumerate() {
            let mut n = Note::document("Doc");
            n.set("Subject", Value::text(format!("doc-{i:02}-code{code}")));
            let readers = match code {
                0 => "",
                1 => "alice",
                2 => "bob",
                _ => "alice;bob",
            };
            if !readers.is_empty() {
                n.set_with_flags(
                    "DocReaders",
                    Value::TextList(readers.split(';').map(String::from).collect()),
                    ItemFlags::SUMMARY | ItemFlags::READERS,
                );
            }
            db.save(&mut n).unwrap();
        }

        let server = DominoServer::new(ServerConfig {
            workers: 1,
            queue_bound: 8,
            cache_capacity: 64,
        });
        server.register_database("leak", &db).unwrap();
        let mut design = ViewDesign::new("all", r#"SELECT Form = "Doc""#).unwrap();
        design.columns = vec![ColumnSpec::new("Subject", "Subject")
            .unwrap()
            .sorted(SortDir::Ascending)];
        server.add_view("leak", design).unwrap();
        server.register_user("alice", "pw-a");
        server.register_user("bob", "pw-b");

        // Every request twice: the first render populates the cache, the
        // second must come back from it for the *same* user only.
        for &(user, page) in &reqs {
            let start = 1 + page * 4;
            let target = format!("/leak.nsf/all?OpenView&Start={start}&Count=4");
            let req = if user < 2 {
                Request::get(&target).as_user(USERS[user], PASSWORDS[user])
            } else {
                Request::get(&target)
            };
            for round in 0..2 {
                let resp = server.handle(&req);
                prop_assert_eq!(resp.status.code(), 200);
                for (i, code) in docs.iter().enumerate() {
                    let subject = format!("doc-{i:02}-code{code}");
                    let in_window = i + 1 >= start && i + 1 < start + 4;
                    let readable = may_read(user, *code);
                    if resp.body.contains(&subject) {
                        prop_assert!(
                            readable,
                            "round {}: {:?} leaked to user {} ({})",
                            round, subject, user, USERS[user],
                        );
                    } else {
                        prop_assert!(
                            !(in_window && readable),
                            "round {}: {:?} missing for user {} ({})",
                            round, subject, user, USERS[user],
                        );
                    }
                }
            }
        }
    }
}
