//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros) over a simple warmup + timed-samples harness. No statistics
//! engine, no plots — it prints mean/min/max per benchmark, which is
//! enough for before/after comparisons in EXPERIMENTS.md.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; the shim runs one setup per
/// routine call regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Bencher {
        Bencher {
            samples: Vec::with_capacity(target_samples),
            target_samples,
        }
    }

    /// Time `routine` repeatedly (one warmup call, then the samples).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine());
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Time `routine` over fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        for _ in 0..self.target_samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    pub fn finish(&mut self) {}
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("nonempty");
    let max = *samples.iter().max().expect("nonempty");
    println!(
        "{id:<48} mean {:>10}   min {:>10}   max {:>10}   ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max),
        samples.len()
    );
}

/// True when the bench binary was invoked with `--test` (the cargo-bench
/// smoke convention, `cargo bench -- --test`): run each benchmark once to
/// prove it executes, skipping the timed samples' cost.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Entry point mirroring criterion's: groups hang off one `Criterion`.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Criterion {
        Criterion {
            default_sample_size: if quick_mode() { 1 } else { 20 },
        }
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.to_string(),
            sample_size,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.default_sample_size);
        f(&mut b);
        report(id, &b.samples);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 1 + 1);
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0;
        let mut b = Bencher::new(3);
        b.iter_batched(
            || {
                setups += 1;
            },
            |_| {},
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 4); // warmup + 3 samples
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
