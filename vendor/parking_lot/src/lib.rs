//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of external dependencies are vendored as API-compatible subsets.
//! This one wraps `std::sync` primitives with parking_lot's non-poisoning
//! interface: `lock()` returns the guard directly, and a poisoned lock
//! (panicking thread while holding the guard) is transparently recovered
//! rather than surfaced as an error, matching parking_lot semantics.

use std::sync::{self, LockResult};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

fn recover<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
