//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use, over a deterministic seeded RNG (seed derived from
//! the test name, overridable with `PROPTEST_SEED`). No shrinking: a
//! failing case prints its generated inputs and case number, which —
//! together with determinism — is enough to reproduce and debug.
//!
//! Supported surface: `Strategy` (`prop_map`, `prop_filter`), `any::<T>()`,
//! tuples of strategies (arity 2–6), integer/float range strategies,
//! `&str` regex-subset strategies (`[class]{n,m}`, `.`, literals),
//! `prop::collection::vec`, `prop::option::of`, `prop::sample::{select,
//! Index}`, `Just`, and the `proptest!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!` macros.

pub mod strategy;
pub mod string;
pub mod test_runner;

/// The `prop::` namespace tests reach through the prelude.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
    pub mod option {
        pub use crate::strategy::option_of as of;
    }
    pub mod sample {
        pub use crate::strategy::{select, Index};
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// One generated-and-run test case body outcome, used by `proptest!`.
pub fn run_case<F: FnOnce() + std::panic::UnwindSafe>(
    name: &str,
    case: u32,
    inputs: String,
    body: F,
) {
    let result = std::panic::catch_unwind(body);
    if let Err(payload) = result {
        eprintln!("proptest '{name}' failed at case {case} with inputs:\n  {inputs}");
        std::panic::resume_unwind(payload);
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Choose uniformly between heterogeneous strategies with one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( Box::new($strat) as Box<dyn $crate::strategy::DynStrategy<Value = _>> ),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner =
                    $crate::test_runner::TestRunner::new(&config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut rng,
                        );
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  "),+),
                        $(&$arg),+
                    );
                    $crate::run_case(
                        stringify!($name),
                        case,
                        inputs,
                        std::panic::AssertUnwindSafe(move || $body),
                    );
                }
            }
        )*
    };
}
