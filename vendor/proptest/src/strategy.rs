//! Strategy trait and combinators: how test inputs are generated.

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// How many times `prop_filter` retries before giving up on a case.
const MAX_FILTER_RETRIES: usize = 1000;

/// A recipe for generating values of one type from an RNG.
///
/// Unlike upstream proptest there is no value tree / shrinking — a
/// strategy generates a finished value directly.
pub trait Strategy {
    type Value: Debug;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        MapStrategy { base: self, f }
    }

    fn prop_filter<R, F>(self, reason: R, pred: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        R: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy {
            base: self,
            reason: reason.into(),
            pred,
        }
    }
}

pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, F, O> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: Debug,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

pub struct FilterStrategy<S, F> {
    base: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for FilterStrategy<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..MAX_FILTER_RETRIES {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected {MAX_FILTER_RETRIES} candidates",
            self.reason
        );
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------- any()

/// Types with a canonical "arbitrary value" strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_via_random {
    ($($t:ty),*) => {
        $(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
        )*
    };
}

arbitrary_via_random!(bool, u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, usize, isize);

impl Arbitrary for f64 {
    /// Mostly raw bit patterns (covering the full exponent range, NaN and
    /// infinities), with the interesting boundary values overrepresented.
    fn arbitrary(rng: &mut StdRng) -> f64 {
        match rng.random_range(0..10u32) {
            0 => 0.0,
            1 => -0.0,
            2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => rng.random::<f64>() * 2.0 - 1.0,
            _ => f64::from_bits(rng.random::<u64>()),
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> char {
        if rng.random_bool(0.9) {
            // Printable ASCII.
            rng.random_range(0x20u32..0x7F) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32(rng.random_range(0u32..=0x10FFFF)) {
                    return c;
                }
            }
        }
    }
}

// --------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($($s:ident / $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(S0 / 0);
tuple_strategy!(S0 / 0, S1 / 1);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4);
tuple_strategy!(S0 / 0, S1 / 1, S2 / 2, S3 / 3, S4 / 4, S5 / 5);

// --------------------------------------------------------------- ranges

macro_rules! range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*
    };
}

range_strategy!(u8, u16, u32, u64, i8, i16, i32, i64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.random_range(self.clone())
    }
}

// ----------------------------------------------------- string patterns

/// A `&'static str` is a regex-subset pattern strategy (see
/// [`crate::string`] for the supported grammar).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        crate::string::generate(self, rng)
    }
}

// ------------------------------------------------- collection / option

/// Accepted length specifications for [`vec()`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty size range {r:?}");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `prop::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..=self.size.hi_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

pub struct OptionStrategy<S> {
    inner: S,
}

/// `prop::option::of(strategy)`: `None` half the time.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        if rng.random_bool(0.5) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

// --------------------------------------------------------------- sample

pub struct Select<T> {
    options: Vec<T>,
}

/// `prop::sample::select(options)`: one of the given values, uniformly.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.options[rng.random_range(0..self.options.len())].clone()
    }
}

/// An index into a collection whose length is not known at generation
/// time: `idx.index(len)` maps it into `0..len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        (self.0 % len as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut StdRng) -> Index {
        Index(rng.random())
    }
}

// -------------------------------------------------------- prop_oneof!

/// Object-safe strategy facade so `prop_oneof!` can mix strategy types
/// that share a value type.
pub trait DynStrategy {
    type Value;

    fn generate_dyn(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;

    fn generate_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice over boxed strategies; built by `prop_oneof!`.
pub struct Union<V> {
    options: Vec<Box<dyn DynStrategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn DynStrategy<Value = V>>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        self.options[rng.random_range(0..self.options.len())].generate_dyn(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (10..20i32).generate(&mut r);
            assert!((10..20).contains(&v));
            let u = (0..4u8).generate(&mut r);
            assert!(u < 4);
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let mut r = rng();
        let s = (0..100i32)
            .prop_map(|x| x * 2)
            .prop_filter("nonzero", |x| *x != 0);
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v != 0);
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut r = rng();
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..100 {
            let len = s.generate(&mut r).len();
            assert!((2..5).contains(&len));
        }
    }

    #[test]
    fn option_produces_both_variants() {
        let mut r = rng();
        let s = option_of(0..10u8);
        let vals: Vec<Option<u8>> = (0..100).map(|_| s.generate(&mut r)).collect();
        assert!(vals.iter().any(Option::is_some));
        assert!(vals.iter().any(Option::is_none));
    }

    #[test]
    fn select_and_index() {
        let mut r = rng();
        let s = select(vec!["a", "b", "c"]);
        for _ in 0..20 {
            assert!(["a", "b", "c"].contains(&s.generate(&mut r)));
        }
        let idx = Index::arbitrary(&mut r);
        assert!(idx.index(7) < 7);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let u = Union::new(vec![
            Box::new(0..1i32) as Box<dyn DynStrategy<Value = i32>>,
            Box::new(10..11i32),
            Box::new(20..21i32),
        ]);
        let vals: Vec<i32> = (0..100).map(|_| u.generate(&mut r)).collect();
        assert!(vals.contains(&0) && vals.contains(&10) && vals.contains(&20));
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut r = rng();
        let (a, b, c, d) =
            (0..5u8, 10..15i32, any::<bool>(), option_of(0..3usize)).generate(&mut r);
        assert!(a < 5);
        assert!((10..15).contains(&b));
        let _ = (c, d);
    }
}
