//! Generator for the regex subset used as string strategies.
//!
//! Grammar: a pattern is a sequence of atoms, each optionally followed by
//! a quantifier. Atoms are `.` (printable char, occasionally non-ASCII),
//! `[class]` (literal chars and `a-z` ranges), `\x` escapes, or literal
//! characters. Quantifiers are `{n}`, `{n,m}`, `*` (0..=8), `+` (1..=8),
//! and `?`. Anchors `^`/`$` at the ends are ignored.

use rand::rngs::StdRng;
use rand::Rng;

/// A set of characters an atom can produce.
enum CharSet {
    /// `.`: printable ASCII plus a pinch of multi-byte chars.
    Any,
    /// Inclusive char ranges (single chars are degenerate ranges).
    Ranges(Vec<(char, char)>),
}

impl CharSet {
    fn sample(&self, rng: &mut StdRng) -> char {
        match self {
            CharSet::Any => {
                if rng.random_bool(0.05) {
                    const EXOTIC: [char; 6] = ['é', 'ß', 'λ', '中', '€', '☃'];
                    EXOTIC[rng.random_range(0..EXOTIC.len())]
                } else {
                    rng.random_range(0x20u32..0x7F) as u8 as char
                }
            }
            CharSet::Ranges(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = rng.random_range(0..total);
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick).expect("range char");
                    }
                    pick -= span;
                }
                unreachable!("sample index within total span")
            }
        }
    }
}

struct Atom {
    set: CharSet,
    min: u32,
    max: u32,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        // Anchors carry no generation semantics.
        if (c == '^' && i == 0) || (c == '$' && i == chars.len() - 1) {
            i += 1;
            continue;
        }
        let set = match c {
            '.' => {
                i += 1;
                CharSet::Any
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = if chars[i] == '\\' && i + 1 < chars.len() {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // `a-z` range (a trailing `-` is a literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated [class] in pattern {pattern:?}"
                );
                i += 1; // consume ']'
                CharSet::Ranges(ranges)
            }
            '\\' => {
                i += 1;
                let esc = chars.get(i).copied().expect("dangling escape");
                i += 1;
                match esc {
                    'd' => CharSet::Ranges(vec![('0', '9')]),
                    'w' => CharSet::Ranges(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => CharSet::Ranges(vec![(' ', ' '), ('\t', '\t')]),
                    other => CharSet::Ranges(vec![(other, other)]),
                }
            }
            literal => {
                i += 1;
                CharSet::Ranges(vec![(literal, literal)])
            }
        };
        // Optional quantifier.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated quantifier in {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("quantifier lower bound"),
                        hi.trim().parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n: u32 = body.trim().parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut StdRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = rng.random_range(atom.min..=atom.max);
        for _ in 0..count {
            out.push(atom.set.sample(rng));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z]{1,6}", &mut r);
            assert!((1..=6).contains(&s.chars().count()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn mixed_class_and_literals() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[A-Za-z$][A-Za-z0-9_]{0,12}", &mut r);
            let first = s.chars().next().expect("first atom is {1}");
            assert!(first.is_ascii_alphabetic() || first == '$');
            assert!(s.chars().count() <= 13);
        }
    }

    #[test]
    fn dot_and_space_range() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[ -~]{0,16}", &mut r);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
            let t = generate(".{0,40}", &mut r);
            assert!(t.chars().count() <= 40);
        }
    }

    #[test]
    fn punctuation_class_with_dash_literal() {
        let mut r = rng();
        for _ in 0..100 {
            let s = generate("[a-z0-9 _.-]{0,12}", &mut r);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || " _.-".contains(c)));
        }
    }
}
