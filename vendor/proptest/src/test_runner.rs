//! Test configuration and the deterministic per-test runner.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mirrors the upstream config struct; only `cases` is consulted, the
/// rest exist so `.. ProptestConfig::default()` updates compile.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    pub max_shrink_iters: u32,
    pub max_global_rejects: u32,
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
            max_local_rejects: 65_536,
        }
    }
}

/// Drives the generated cases for one `proptest!` test function.
///
/// Seeding is deterministic from the test name so failures reproduce;
/// `PROPTEST_SEED` overrides the base seed and `PROPTEST_CASES` the case
/// count for ad-hoc deeper runs.
pub struct TestRunner {
    cases: u32,
    base_seed: u64,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

impl TestRunner {
    pub fn new(config: &ProptestConfig, test_name: &str) -> TestRunner {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases);
        let base_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
        TestRunner { cases, base_seed }
    }

    pub fn cases(&mut self) -> u32 {
        self.cases
    }

    pub fn rng_for_case(&mut self, case: u32) -> StdRng {
        // Golden-ratio stride decorrelates neighboring cases.
        StdRng::seed_from_u64(
            self.base_seed ^ (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn seeding_is_deterministic_per_name_and_case() {
        let cfg = ProptestConfig::default();
        let mut a = TestRunner::new(&cfg, "some_test");
        let mut b = TestRunner::new(&cfg, "some_test");
        assert_eq!(a.rng_for_case(3).next_u64(), b.rng_for_case(3).next_u64());
        let mut c = TestRunner::new(&cfg, "other_test");
        assert_ne!(a.rng_for_case(3).next_u64(), c.rng_for_case(3).next_u64());
    }

    #[test]
    fn default_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
    }
}
