//! Offline stand-in for the `rand` crate (0.9-style API subset).
//!
//! Implements exactly what this workspace uses: a seedable deterministic
//! generator ([`rngs::StdRng`], xoshiro256** under the hood), the [`Rng`]
//! extension methods `random`, `random_bool`, `random_range`, and the
//! [`SeedableRng`] constructor `seed_from_u64`. Distributions are the
//! simple ones (Lemire-free modulo reduction is fine for workload
//! generation; this is not a statistics library).

/// Core generator trait: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value type `random()` can produce.
pub trait RandomValue: Sized {
    fn random_from(rng: &mut dyn RngCore) -> Self;
}

impl RandomValue for f64 {
    fn random_from(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for f32 {
    fn random_from(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl RandomValue for bool {
    fn random_from(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl RandomValue for $t {
            fn random_from(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandomValue for u128 {
    fn random_from(rng: &mut dyn RngCore) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl RandomValue for i128 {
    fn random_from(rng: &mut dyn RngCore) -> i128 {
        u128::random_from(rng) as i128
    }
}

/// A range `random_range()` can sample uniformly.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span) as i128;
                (lo as i128 + r) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::random_from(rng) * (self.end - self.start)
    }
}

/// Extension methods every generator gets.
pub trait Rng: RngCore {
    fn random<T: RandomValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::random_from(self) < p
    }

    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator: xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // splitmix64 stream to fill the state (the canonical seeding).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..4).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = r.random_range(1..=5i32);
            assert!((1..=5).contains(&w));
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
            let g = r.random_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.random_bool(0.8)).count();
        assert!((7500..8500).contains(&hits), "{hits}");
    }
}
