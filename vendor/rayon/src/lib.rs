//! Offline stand-in for `rayon`, implementing the subset this workspace
//! uses with `std::thread::scope` fork-join parallelism.
//!
//! Shape of the implementation:
//!
//! * Work is split into one contiguous chunk per worker (no stealing); a
//!   chunk's results are produced into its own `Vec` and concatenated in
//!   order, so `map(...).collect()` preserves input order exactly.
//! * Inputs below [`MIN_PARALLEL_LEN`] run inline on the calling thread —
//!   scoped-thread spawns cost ~10µs each, which would swamp small inputs.
//! * Worker count comes from `std::thread::available_parallelism`.
//!
//! Supported surface: `slice.par_iter()`, `vec.into_par_iter()`,
//! `(0..n).into_par_iter()` with `.map(f)` / `.for_each(f)` /
//! `.collect::<Vec<_>>()`, plus [`join`] and [`current_num_threads`].

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice};
}

/// Inputs shorter than this run sequentially — below it, thread spawn
/// overhead exceeds the work saved for the workloads in this repo.
pub const MIN_PARALLEL_LEN: usize = 128;

/// Number of worker threads fork-join calls will split across.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Map `f` over `0..len`, splitting index ranges across workers; chunk
/// results concatenate in index order. `min_len` is the inline threshold
/// ([`MIN_PARALLEL_LEN`] unless overridden with `with_min_len`).
fn par_map_indices<R, F>(len: usize, threads: usize, min_len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if len < min_len.max(2) || threads <= 1 {
        return (0..len).map(f).collect();
    }
    let workers = threads.min(len);
    let chunk = len.div_ceil(workers);
    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(len);
            let f = &f;
            handles.push(s.spawn(move || (lo..hi).map(f).collect::<Vec<R>>()));
        }
        for h in handles {
            out.push(h.join().expect("rayon worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// A lazy parallel computation producing an ordered stream of `T`.
///
/// Internally everything is "indexed access + length": adapters compose
/// the access function, and `collect`/`for_each` drive the split.
pub trait ParallelIterator: Sized {
    type Item: Send;

    fn len_hint(&self) -> usize;

    /// Produce the item at `idx` (0-based, stable across calls).
    fn get(&self, idx: usize) -> Self::Item;

    /// Inline threshold for this iterator (see `with_min_len`).
    fn min_len(&self) -> usize {
        MIN_PARALLEL_LEN
    }

    fn map<R: Send, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Override the inline threshold: inputs of at least `min` items are
    /// split across workers. `with_min_len(1)` forces parallelism even
    /// for tiny inputs — worth it only when each item is expensive (e.g.
    /// one batch application per attached view).
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
        Self: Sync,
    {
        par_map_indices(
            self.len_hint(),
            current_num_threads(),
            self.min_len(),
            |i| f(self.get(i)),
        );
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C
    where
        Self: Sync,
    {
        C::from_par_iter(self)
    }
}

/// Collection types `ParallelIterator::collect` can build.
pub trait FromParallelIterator<T: Send>: Sized {
    fn from_par_iter<P: ParallelIterator<Item = T> + Sync>(par: P) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_iter<P: ParallelIterator<Item = T> + Sync>(par: P) -> Vec<T> {
        par_map_indices(par.len_hint(), current_num_threads(), par.min_len(), |i| {
            par.get(i)
        })
    }
}

/// `collect::<Result<Vec<T>, E>>()` — first error wins (by index order).
impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter<P: ParallelIterator<Item = Result<T, E>> + Sync>(par: P) -> Result<Vec<T>, E> {
        par_map_indices(par.len_hint(), current_num_threads(), par.min_len(), |i| {
            par.get(i)
        })
        .into_iter()
        .collect()
    }
}

pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, F, R> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    F: Fn(B::Item) -> R + Sync,
    R: Send,
{
    type Item = R;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn get(&self, idx: usize) -> R {
        (self.f)(self.base.get(idx))
    }

    fn min_len(&self) -> usize {
        self.base.min_len()
    }
}

pub struct MinLen<B> {
    base: B,
    min: usize,
}

impl<B: ParallelIterator> ParallelIterator for MinLen<B> {
    type Item = B::Item;

    fn len_hint(&self) -> usize {
        self.base.len_hint()
    }

    fn get(&self, idx: usize) -> B::Item {
        self.base.get(idx)
    }

    fn min_len(&self) -> usize {
        self.min
    }
}

/// `&[T] -> parallel iterator of &T`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn len_hint(&self) -> usize {
        self.slice.len()
    }

    fn get(&self, idx: usize) -> &'a T {
        &self.slice[idx]
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SliceIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

impl<T: Sync> ParallelSlice<T> for Vec<T> {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { slice: self }
    }
}

/// Owned values: items are handed out by cloning from the source (the
/// consuming split would need unsafe moves; clone keeps this shim safe,
/// and every `into_par_iter` use in this repo clones cheap values).
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send + Sync + Clone> ParallelIterator for VecIter<T> {
    type Item = T;

    fn len_hint(&self) -> usize {
        self.items.len()
    }

    fn get(&self, idx: usize) -> T {
        self.items[idx].clone()
    }
}

pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn len_hint(&self) -> usize {
        self.end - self.start
    }

    fn get(&self, idx: usize) -> usize {
        self.start + idx
    }
}

pub trait IntoParallelIterator {
    type Iter: ParallelIterator<Item = Self::Item>;
    type Item: Send;

    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send + Sync + Clone> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end,
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn small_inputs_run_inline() {
        let xs = vec![1, 2, 3];
        let ys: Vec<i32> = xs.par_iter().map(|x| x + 1).collect();
        assert_eq!(ys, vec![2, 3, 4]);
    }

    #[test]
    fn result_collect_propagates_error() {
        let xs: Vec<usize> = (0..5000).collect();
        let ok: Result<Vec<usize>, String> = xs.par_iter().map(|x| Ok::<_, String>(*x)).collect();
        assert_eq!(ok.unwrap().len(), 5000);
        let err: Result<Vec<usize>, String> = xs
            .par_iter()
            .map(|x| {
                if *x == 4321 {
                    Err("boom".to_string())
                } else {
                    Ok(*x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = AtomicUsize::new(0);
        let xs: Vec<usize> = (0..5000).collect();
        xs.par_iter().for_each(|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 5000);
    }

    #[test]
    fn with_min_len_parallelizes_small_inputs() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let xs: Vec<usize> = (0..4).collect();
        xs.par_iter().with_min_len(1).for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        if current_num_threads() > 1 {
            assert!(seen.lock().unwrap().len() > 1);
        }
    }

    #[test]
    fn parallelism_actually_used_for_large_inputs() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen: Mutex<HashSet<std::thread::ThreadId>> = Mutex::new(HashSet::new());
        let xs: Vec<usize> = (0..100_000).collect();
        xs.par_iter().for_each(|_| {
            seen.lock().unwrap().insert(std::thread::current().id());
        });
        let n = seen.lock().unwrap().len();
        if current_num_threads() > 1 {
            assert!(n > 1, "expected multiple worker threads, saw {n}");
        }
    }
}
